//! Cluster GPU sharing (paper Fig. 1): many GPU-less nodes concurrently
//! using the few GPU-equipped ones — the configuration whose savings
//! motivate the whole paper — plus a first-order look at the contention
//! question the paper defers to future work.
//!
//! ```sh
//! cargo run --release --example cluster_share [clients]
//! ```

use rcuda::api::run_matmul_bytes;
use rcuda::core::time::wall_clock;
use rcuda::core::CaseStudy;
use rcuda::gpu::GpuDevice;
use rcuda::kernels::workload::matrix_pair;
use rcuda::model::render::TextTable;
use rcuda::netsim::{NetworkId, SharedLink};
use rcuda::proto::wire::f32s_to_bytes;
use rcuda::server::RcudaDaemon;
use rcuda::session;
use rcuda::session::Endpoint;
use std::sync::Arc;
use std::thread;

fn main() {
    let clients: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    concurrent_sharing(clients);
    contention_model(clients as u32);
}

/// Real concurrent sharing over loopback TCP: every client gets correct,
/// isolated results from the single daemon.
fn concurrent_sharing(clients: usize) {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();
    println!("one GPU server at {addr}, {clients} concurrent clients\n");

    let m = 32u32;
    let handles: Vec<_> = (0..clients as u64)
        .map(|seed| {
            thread::spawn(move || {
                let clock = wall_clock();
                let (a, b) = matrix_pair(m as usize, seed);
                let mut rt = session::Session::builder()
                    .connect(Endpoint::Tcp(addr))
                    .unwrap();
                let report = run_matmul_bytes(
                    &mut *rt,
                    &*clock,
                    m,
                    &f32s_to_bytes(a.as_slice()),
                    &f32s_to_bytes(b.as_slice()),
                )
                .unwrap();
                // Checksum so the main thread can spot cross-talk.
                let sum: f64 = report
                    .output
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap()) as f64)
                    .sum();
                (seed, sum)
            })
        })
        .collect();

    for h in handles {
        let (seed, sum) = h.join().unwrap();
        // Recompute locally to verify isolation under concurrency.
        let clock = wall_clock();
        let (a, b) = matrix_pair(m as usize, seed);
        let mut local = session::local_functional();
        let expect: f64 = run_matmul_bytes(
            &mut local,
            &*clock,
            m,
            &f32s_to_bytes(a.as_slice()),
            &f32s_to_bytes(b.as_slice()),
        )
        .unwrap()
        .output
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()) as f64)
        .sum();
        assert_eq!(sum, expect, "client {seed} saw another session's data!");
        println!("  client {seed}: checksum {sum:.3} ✓ (matches local run)");
    }

    daemon.shutdown();
    println!(
        "\nall {} sessions served in isolation, {} leaks\n",
        daemon.sessions_served(),
        daemon
            .session_reports()
            .iter()
            .map(|r| r.leaked_allocations)
            .sum::<usize>()
    );
}

/// First-order contention model (paper future work): k clients moving bulk
/// data through one server link share its bandwidth fairly.
fn contention_model(max_clients: u32) {
    println!("contention what-if: MM (m = 8192) transfer slowdown on a shared server link");
    let case = CaseStudy::MatMul { dim: 8192 };
    let mut table = TextTable::new(vec!["Clients", "40GI per-client transfer (ms)", "Slowdown"]);
    let link = Arc::new(SharedLink::new(Arc::from(NetworkId::Ib40G.model())));
    let solo = link.transfer_with_flows(case.memcpy_bytes().as_bytes(), 1);
    for k in 1..=max_clients.max(2) {
        let t = link.transfer_with_flows(case.memcpy_bytes().as_bytes(), k);
        table.row(vec![
            k.to_string(),
            format!("{:.1}", t.as_millis_f64() * case.memcpy_count() as f64),
            format!("{:.1}×", t.as_nanos() as f64 / solo.as_nanos() as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "fair-share contention scales per-client transfer time linearly in the \
         number of concurrent bulk flows — the sizing input for choosing how \
         many GPU servers a cluster needs."
    );
}
