//! Deferred-completion pipelining from the application's point of view:
//! the same FFT execution per-call and with a depth-4 window, over a
//! simulated Gigabit Ethernet link — same bytes out, half the flushes.
//!
//! ```sh
//! cargo run --example pipelined_fft
//! ```

use rcuda::api::run_fft_bytes;
use rcuda::core::Clock as _;
use rcuda::kernels::complex::complex_to_bytes;
use rcuda::kernels::workload::fft_input;
use rcuda::netsim::NetworkId;
use rcuda::session::Endpoint;
use rcuda::Session;

fn main() {
    let batch = 64u32;
    let input = complex_to_bytes(&fft_input(batch as usize, 9));

    let mut results = Vec::new();
    for depth in [0usize, 4] {
        let mut sess = Session::builder()
            .pipeline(depth)
            .connect(Endpoint::Simulated(NetworkId::GigaE))
            .unwrap();
        let clock = sess.clock().clone();
        let report = run_fft_bytes(&mut *sess, &*clock, batch, &input).expect("remote FFT");
        let flushes = sess.metrics().messages_sent;
        let elapsed = sess.clock().now();
        sess.finish();
        println!(
            "depth {depth}: {flushes} network flushes, simulated time {:.3} ms",
            elapsed.as_millis_f64()
        );
        results.push((report.output, flushes));
    }

    assert_eq!(
        results[0].0, results[1].0,
        "pipelining must not change application-visible bytes"
    );
    println!(
        "outputs bit-identical; pipelining removed {} of {} flushes",
        results[0].1 - results[1].1,
        results[0].1
    );
}
