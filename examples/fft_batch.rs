//! The FFT case study (paper §IV-B, Figures 5/6 right): the counter-example.
//!
//! A batch of 512-point FFTs is O(n log n) on O(n) data — not compute-dense
//! enough to amortize transfers. The paper's point: this workload is not
//! even worth a *local* GPU (PCIe transfers already eat the speedup), so
//! remoting it only makes things worse. The planner verdicts below come out
//! of the calibrated testbed.
//!
//! ```sh
//! cargo run --release --example fft_batch
//! ```

use rcuda::api::run_fft_bytes;
use rcuda::core::time::wall_clock;
use rcuda::core::Family;
use rcuda::kernels::complex::{bytes_to_complex, complex_to_bytes};
use rcuda::kernels::fft::fft_batch_512;
use rcuda::kernels::workload::fft_input;
use rcuda::model::render::{millis, TextTable};
use rcuda::model::tables::table6;
use rcuda::model::SimulatedTestbed;
use rcuda::netsim::NetworkId;
use rcuda::session;
use rcuda::session::Endpoint;

fn main() {
    functional_proof();
    paper_scale_sweep();
}

/// Remote FFT returns exactly what the host-side reference computes.
fn functional_proof() {
    let batch = 8u32;
    let input = fft_input(batch as usize, 99);
    let input_bytes = complex_to_bytes(&input);

    let clock = wall_clock();
    let mut sess = session::Session::builder()
        .connect(Endpoint::Simulated(NetworkId::GigaE))
        .unwrap();
    let out = run_fft_bytes(&mut *sess, &*clock, batch, &input_bytes)
        .unwrap()
        .output;
    sess.finish();

    let mut expect = input;
    fft_batch_512(&mut expect);
    assert_eq!(bytes_to_complex(&out).unwrap(), expect);
    println!(
        "[functional] batch of {batch} 512-pt FFTs over simulated GigaE: \
         remote result bit-identical to the reference\n"
    );
}

fn paper_scale_sweep() {
    let tb = SimulatedTestbed::new();
    let rows = table6(Family::Fft, &tb);

    println!("[paper scale] FFT execution times in milliseconds (40GI-based estimates):");
    let mut table = TextTable::new(vec![
        "Batch", "CPU", "GPU", "GigaE", "40GI", "10GE", "10GI", "Myr", "F-HT", "A-HT",
    ]);
    for row in &rows {
        let mut cells = vec![
            row.case.size().to_string(),
            millis(row.cpu),
            millis(row.gpu),
            millis(row.gigae),
            millis(row.ib40),
        ];
        for (_, t) in &row.est_ib40_model {
            cells.push(millis(*t));
        }
        table.row(cells);
    }
    println!("{}", table.render());

    println!("verdicts (the paper's negative result, §VI-B):");
    for row in [&rows[0], rows.last().unwrap()] {
        let n = row.case.size();
        println!(
            "  n = {n}: CPU {} ms < local GPU {} ms < best remote (A-HT) {} ms — \
             keep the FFT on the CPU",
            millis(row.cpu),
            millis(row.gpu),
            millis(row.est_ib40_model[4].1),
        );
    }
    println!(
        "\n  rule of thumb the paper distills: if a workload does not profit \
         from a LOCAL GPU, no interconnect will make a remote GPU profitable; \
         if it does profit, even GigaE-to-A-HT class networks keep the remote \
         penalty small relative to the saved hardware."
    );
}
