//! The network planner — the capability the paper's conclusion advertises:
//! "a tool to determine the behavior of our proposal over different
//! interconnects with no need of the physical equipment".
//!
//! Workflow (exactly §V's methodology, but driven by a real execution
//! trace, and workload-agnostic):
//!
//! 1. run the application once against a remote GPU on the network you DO
//!    have (here: a simulated GigaE link standing in for the lab network);
//! 2. from the recorded client trace, split the run into bulk-transfer time
//!    (priced by the network) and fixed time (everything else);
//! 3. re-price the traced bulk payload for every candidate interconnect and
//!    rank, including the local-CPU break-even check where a baseline
//!    exists.
//!
//! Because step 2 works from the trace's byte counts, ANY application can
//! be planned this way — demonstrated here with the paper's MM plus the
//! N-body extension workload.
//!
//! ```sh
//! cargo run --release --example network_planner [mm DIM | fft BATCH | nbody N]
//! ```

use rcuda::api::{run_fft_bytes, run_matmul_bytes, run_nbody_bytes};
use rcuda::client::Trace;
use rcuda::core::{CaseStudy, Clock as _, SimTime};
use rcuda::model::estimate::{estimate_bytes, fixed_time_bytes};
use rcuda::model::render::{secs, TextTable};
use rcuda::model::SimulatedTestbed;
use rcuda::netsim::NetworkId;
use rcuda::session;
use rcuda::session::Endpoint;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (kind, size) = match args.as_slice() {
        [] => ("mm".to_string(), 4096),
        [k, s] => (k.clone(), s.parse().unwrap_or(4096)),
        _ => {
            eprintln!("usage: network_planner [mm DIM | fft BATCH | nbody N]");
            std::process::exit(2);
        }
    };

    // ---- 1. One traced run on the network we "own" (simulated GigaE at
    //         scale; phantom memory keeps host cost negligible).
    let mut sess = session::Session::builder()
        .phantom(true)
        .connect(Endpoint::Simulated(NetworkId::GigaE))
        .unwrap();
    let clock = sess.clock().clone();
    match kind.as_str() {
        "mm" => {
            let bytes = vec![0u8; (size * size * 4) as usize];
            run_matmul_bytes(&mut *sess, &*clock, size, &bytes, &bytes).unwrap();
        }
        "fft" => {
            let bytes = vec![0u8; (size * 512 * 8) as usize];
            run_fft_bytes(&mut *sess, &*clock, size, &bytes).unwrap();
        }
        "nbody" => {
            let bytes = vec![0u8; (size * 16) as usize];
            run_nbody_bytes(&mut *sess, &*clock, size, &bytes, 0.01).unwrap();
        }
        other => {
            eprintln!("unknown workload `{other}` (mm, fft, nbody)");
            std::process::exit(2);
        }
    }
    let measured = sess.clock().now();
    let trace: Trace = sess.trace().clone();
    sess.finish();

    println!("traced one {kind} run (size = {size}) over GigaE:");
    println!("  measured total          : {} s", secs(measured));
    println!(
        "  bulk payload on the wire : {:.1} MiB across {} calls",
        trace.bulk_payload() as f64 / (1 << 20) as f64,
        trace.events.len()
    );

    // ---- 2. Split into transfer + fixed, from the trace alone.
    let payload = trace.bulk_payload();
    let fixed = fixed_time_bytes(measured, payload, NetworkId::GigaE);
    println!("  fixed (network-independent) time: {} s", secs(fixed));

    // Local baselines exist only for the paper-calibrated case studies.
    let baseline = match kind.as_str() {
        "mm" => {
            let tb = SimulatedTestbed::new();
            Some((
                tb.measured_cpu(CaseStudy::MatMul { dim: size }),
                tb.measured_gpu(CaseStudy::MatMul { dim: size }),
            ))
        }
        "fft" => {
            let tb = SimulatedTestbed::new();
            Some((
                tb.measured_cpu(CaseStudy::Fft { batch: size }),
                tb.measured_gpu(CaseStudy::Fft { batch: size }),
            ))
        }
        _ => None,
    };

    // ---- 3. Re-price for every interconnect and rank.
    println!("\npredicted execution time per interconnect:");
    let mut headers = vec!["Network", "Predicted"];
    if baseline.is_some() {
        headers.push("vs CPU");
        headers.push("vs local GPU");
    }
    let mut table = TextTable::new(headers);
    let mut rankings: Vec<(NetworkId, SimTime)> = NetworkId::ALL
        .iter()
        .map(|&net| (net, estimate_bytes(fixed, payload, net)))
        .collect();
    rankings.sort_by_key(|&(_, t)| t);
    for (net, t) in &rankings {
        let mut cells = vec![net.to_string(), format!("{} s", secs(*t))];
        if let Some((cpu, gpu)) = baseline {
            cells.push(speedup(cpu, *t));
            cells.push(speedup(gpu, *t));
        }
        table.row(cells);
    }
    println!("{}", table.render());

    match baseline {
        Some((cpu, gpu)) => {
            println!("local CPU: {} s   local GPU: {} s", secs(cpu), secs(gpu));
            let viable: Vec<String> = rankings
                .iter()
                .filter(|&&(_, t)| t < cpu)
                .map(|(net, _)| net.to_string())
                .collect();
            if viable.is_empty() {
                println!("\nverdict: keep this workload on the CPU — no interconnect wins.");
            } else {
                println!(
                    "\nverdict: remote GPU beats the 8-core CPU on: {}",
                    viable.join(", ")
                );
            }
        }
        None => {
            let spread = rankings.last().unwrap().1.as_secs_f64()
                / rankings.first().unwrap().1.as_secs_f64();
            println!(
                "no calibrated CPU baseline for `{kind}`; network choice changes the \
                 run time by {spread:.2}× between {} and {} — the compute/transfer \
                 ratio decides whether that matters.",
                rankings.last().unwrap().0,
                rankings.first().unwrap().0,
            );
        }
    }
}

fn speedup(reference: SimTime, t: SimTime) -> String {
    format!("{:.2}×", reference.as_secs_f64() / t.as_secs_f64())
}
