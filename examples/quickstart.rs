//! Quickstart: start an rCUDA daemon, connect over real loopback TCP, and
//! run a kernel on the "remote" GPU — the five-minute tour of the
//! middleware.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rcuda::api::CudaRuntime;
use rcuda::core::{ArgPack, Dim3};
use rcuda::gpu::module::build_module;
use rcuda::gpu::GpuDevice;
use rcuda::proto::wire::f32s_to_bytes;
use rcuda::server::RcudaDaemon;
use rcuda::session;
use rcuda::session::Endpoint;

fn main() {
    // 1. A node with a GPU runs the daemon (here: in-process, real TCP).
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    println!("rCUDA daemon listening on {}", daemon.local_addr());

    // 2. A GPU-less node connects and initializes with its GPU module.
    let mut rt = session::Session::builder()
        .connect(Endpoint::Tcp(daemon.local_addr()))
        .unwrap();
    rt.initialize(&build_module(&["vec_add"], 0)).unwrap();
    println!(
        "connected; server announced compute capability {:?}",
        rt.server_compute_capability().unwrap()
    );

    // 3. Ordinary CUDA-style code, oblivious to the network underneath.
    let n = 8u32;
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| (10 * i) as f32).collect();
    let a = rt.malloc(n * 4).unwrap();
    let b = rt.malloc(n * 4).unwrap();
    let c = rt.malloc(n * 4).unwrap();
    rt.memcpy_h2d(a, &f32s_to_bytes(&x)).unwrap();
    rt.memcpy_h2d(b, &f32s_to_bytes(&y)).unwrap();

    let args = ArgPack::new()
        .push_ptr(a)
        .push_ptr(b)
        .push_ptr(c)
        .push_u32(n)
        .into_bytes();
    rt.launch("vec_add", Dim3::x(1), Dim3::x(n), 0, 0, &args)
        .unwrap();

    let out = rt.memcpy_d2h(c, n * 4).unwrap();
    let sums: Vec<f32> = out
        .chunks_exact(4)
        .map(|ch| f32::from_le_bytes(ch.try_into().unwrap()))
        .collect();
    println!("x + y = {sums:?}");
    assert_eq!(sums, vec![0.0, 11.0, 22.0, 33.0, 44.0, 55.0, 66.0, 77.0]);

    for p in [a, b, c] {
        rt.free(p).unwrap();
    }
    rt.finalize().unwrap();

    // 4. The trace shows exactly what crossed the wire (paper Table I).
    println!("\nsession trace:");
    for ev in &rt.trace().events {
        println!(
            "  {:<22} sent {:>6} B  received {:>6} B",
            ev.op, ev.sent, ev.received
        );
    }

    // `shutdown` stops the acceptor; the session itself finishes on a
    // reactor shard, so wait for its report before reading the counter.
    daemon.shutdown();
    daemon.wait_for_sessions(1, std::time::Duration::from_secs(5));
    println!("\ndone: {} session(s) served", daemon.sessions_served());
}
