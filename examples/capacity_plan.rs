//! Cluster sizing: how many GPUs does a cluster actually need?
//!
//! The paper's motivation is that one GPU per node is wasteful; its
//! conclusion asks for a way "to determine the exact amount of GPUs
//! necessary in each particular case". This example answers that question
//! with the calibrated capacity planner for a sweep of workloads and
//! interconnects.
//!
//! ```sh
//! cargo run --release --example capacity_plan [nodes]
//! ```

use rcuda::core::CaseStudy;
use rcuda::model::capacity::{plan_capacity, ClusterSpec};
use rcuda::model::render::TextTable;
use rcuda::model::Calibration;
use rcuda::netsim::NetworkId;

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let calib = Calibration::paper();

    println!(
        "GPU pool sizing for a {nodes}-node cluster offloading MM (m = 8192), \
         utilization target 70%\n"
    );
    let mut table = TextTable::new(vec![
        "Per-node rate",
        "Network",
        "GPUs needed",
        "Saved vs 1/node",
        "Per-GPU util",
        "Service time (s)",
    ]);
    for (label, rate_hz) in [
        ("1 run / hour", 1.0 / 3600.0),
        ("1 run / 10 min", 1.0 / 600.0),
        ("1 run / 2 min", 1.0 / 120.0),
        ("1 run / 30 s", 1.0 / 30.0),
    ] {
        for net in [NetworkId::GigaE, NetworkId::Ib40G, NetworkId::AsicHt] {
            let spec = ClusterSpec {
                nodes,
                per_node_rate_hz: rate_hz,
                case: CaseStudy::MatMul { dim: 8192 },
                network: net,
                utilization_target: 0.7,
            };
            match plan_capacity(&spec, &calib) {
                Some(plan) => {
                    table.row(vec![
                        label.to_string(),
                        net.to_string(),
                        plan.gpus.to_string(),
                        format!(
                            "{} ({:.0}%)",
                            plan.gpus_saved,
                            100.0 * plan.gpus_saved as f64 / nodes as f64
                        ),
                        format!("{:.0}%", plan.utilization * 100.0),
                        format!("{:.2}", plan.service_time.as_secs_f64()),
                    ]);
                }
                None => {
                    table.row(vec![
                        label.to_string(),
                        net.to_string(),
                        "—".to_string(),
                        "saturated".to_string(),
                        ">70%".to_string(),
                        "—".to_string(),
                    ]);
                }
            }
        }
    }
    println!("{}", table.render());
    println!(
        "reading: at realistic duty cycles a handful of shared GPUs serve the \
         whole cluster — the acquisition/maintenance/energy saving the paper \
         argues for — and faster interconnects shrink per-execution service \
         time, which compounds into fewer GPUs under load."
    );
}
