//! The MM case study (paper §IV-B, Figures 5/6 left): where should a
//! matrix product run — local CPU, local GPU, or a remote GPU across each
//! interconnect?
//!
//! Two parts:
//!
//! 1. a **functional** run at a modest size over a simulated 40GI link,
//!    proving the remote result is bit-identical to the local one;
//! 2. a **paper-scale simulated sweep** (phantom memory, virtual clocks)
//!    over the calibrated testbed, printing the Table VI / Figure 5 story.
//!
//! ```sh
//! cargo run --release --example matmul_remote
//! ```

use rcuda::api::run_matmul_bytes;
use rcuda::core::time::wall_clock;
use rcuda::core::{CaseStudy, Family};
use rcuda::kernels::workload::matrix_pair;
use rcuda::model::render::{secs, TextTable};
use rcuda::model::tables::table6;
use rcuda::model::SimulatedTestbed;
use rcuda::netsim::NetworkId;
use rcuda::proto::wire::f32s_to_bytes;
use rcuda::session;
use rcuda::session::Endpoint;

fn main() {
    functional_proof();
    paper_scale_sweep();
}

/// Part 1: remote correctness at a size small enough to execute for real.
fn functional_proof() {
    let m = 64u32;
    let (a, b) = matrix_pair(m as usize, 7);
    let (a, b) = (f32s_to_bytes(a.as_slice()), f32s_to_bytes(b.as_slice()));

    let clock = wall_clock();
    let mut local = session::local_functional();
    let local_out = run_matmul_bytes(&mut local, &*clock, m, &a, &b)
        .unwrap()
        .output;

    let mut sess = session::Session::builder()
        .connect(Endpoint::Simulated(NetworkId::Ib40G))
        .unwrap();
    let remote_out = run_matmul_bytes(&mut *sess, &*clock, m, &a, &b)
        .unwrap()
        .output;
    sess.finish();

    assert_eq!(local_out, remote_out);
    println!(
        "[functional] {m}×{m} SGEMM over simulated 40GI: remote result \
         bit-identical to local ({} bytes checked)\n",
        local_out.len()
    );
}

/// Part 2: the paper-scale decision table from the calibrated testbed.
fn paper_scale_sweep() {
    let tb = SimulatedTestbed::new();
    let rows = table6(Family::MatMul, &tb);

    println!("[paper scale] MM execution times in seconds (GigaE-based estimates):");
    let mut table = TextTable::new(vec![
        "Dim", "CPU", "GPU", "GigaE", "40GI", "10GE", "10GI", "Myr", "F-HT", "A-HT",
    ]);
    for row in &rows {
        let mut cells = vec![
            row.case.size().to_string(),
            secs(row.cpu),
            secs(row.gpu),
            secs(row.gigae),
            secs(row.ib40),
        ];
        for (_, t) in &row.est_gigae_model {
            cells.push(secs(*t));
        }
        table.row(cells);
    }
    println!("{}", table.render());

    // The verdicts the paper draws from this data (§VI-B).
    let big = rows.last().unwrap();
    println!("verdicts at m = {}:", big.case.size());
    println!(
        "  remote GPU over A-HT vs 8-core CPU: {:.1}× faster",
        big.cpu.as_secs_f64() / big.est_gigae_model[4].1.as_secs_f64()
    );
    println!(
        "  remote GPU over A-HT vs local GPU:  {:.1}% overhead",
        (big.est_gigae_model[4].1.as_secs_f64() / big.gpu.as_secs_f64() - 1.0) * 100.0
    );
    println!(
        "  remote GPU over GigaE vs local GPU: {:.1}% overhead (why HPC interconnects matter)",
        (big.gigae.as_secs_f64() / big.gpu.as_secs_f64() - 1.0) * 100.0
    );

    let small = &rows[0];
    let case = CaseStudy::MatMul {
        dim: small.case.size(),
    };
    let _ = case;
    println!(
        "  at m = {} the *local* GPU loses to remote 40GI ({} vs {} s): the \
         daemon pre-initializes the CUDA context (§VI-B)",
        small.case.size(),
        secs(small.gpu),
        secs(small.ib40),
    );
}
