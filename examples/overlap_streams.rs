//! Asynchronous streaming — the future work the paper defers ("leaving
//! asynchronous transfers for future work", §II) — demonstrated live.
//!
//! A large host→device transfer is streamed in chunks with
//! `cudaMemcpyAsync`: while chunk *k* crosses the PCIe bus on the device
//! side, chunk *k+1* is already crossing the network. On the virtual clock
//! this shows exactly the overlap the analytic extension
//! (`rcuda::model::overlap`) predicts.
//!
//! ```sh
//! cargo run --release --example overlap_streams [mib] [chunks]
//! ```

use rcuda::api::{CudaRuntime, CudaRuntimeAsyncExt};
use rcuda::core::Clock as _;
use rcuda::gpu::module::build_module;
use rcuda::netsim::NetworkId;
use rcuda::session;
use rcuda::session::Endpoint;

fn main() {
    let mib: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let chunks: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let total = mib << 20;
    let chunk = total / chunks;

    println!(
        "streaming a {mib} MiB host→device transfer over simulated A-HT \
         (2884 MiB/s network, 5743 MiB/s PCIe)\n"
    );

    // --- Synchronous: each chunk pays network THEN PCIe, serially.
    let sync_time = {
        let mut sess = session::Session::builder()
            .phantom(true)
            .connect(Endpoint::Simulated(NetworkId::AsicHt))
            .unwrap();
        sess.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.malloc(total).unwrap();
        let start = sess.clock().now();
        let buf = vec![0u8; chunk as usize];
        for i in 0..chunks {
            sess.memcpy_h2d(p.offset(i * chunk), &buf).unwrap();
        }
        let t = sess.clock().now() - start;
        sess.free(p).unwrap();
        sess.finalize().unwrap();
        sess.finish();
        t
    };

    // --- Asynchronous: the PCIe leg of chunk k overlaps the network leg of
    //     chunk k+1 (double buffering on one device stream).
    let async_time = {
        let mut sess = session::Session::builder()
            .phantom(true)
            .connect(Endpoint::Simulated(NetworkId::AsicHt))
            .unwrap();
        sess.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.malloc(total).unwrap();
        let stream = sess.stream_create().unwrap();
        let start = sess.clock().now();
        let buf = vec![0u8; chunk as usize];
        for i in 0..chunks {
            sess.memcpy_h2d_async(p.offset(i * chunk), &buf, stream)
                .unwrap();
        }
        sess.stream_synchronize(stream).unwrap();
        let t = sess.clock().now() - start;
        sess.stream_destroy(stream).unwrap();
        sess.free(p).unwrap();
        sess.finalize().unwrap();
        sess.finish();
        t
    };

    println!(
        "  synchronous ({chunks} chunks): {:>8.2} ms",
        sync_time.as_millis_f64()
    );
    println!(
        "  async/streamed            : {:>8.2} ms",
        async_time.as_millis_f64()
    );
    println!(
        "  saved: {:.2} ms ({:.0}% of the PCIe leg hidden behind the network)\n",
        (sync_time - async_time).as_millis_f64(),
        100.0 * (sync_time - async_time).as_millis_f64() / (mib as f64 / 5743.0 * 1000.0)
    );
    println!(
        "the analytic extension (rcuda::model::overlap::estimate_async) makes \
         the same prediction for the paper's case studies — see the \
         ablations bench for the full sweep."
    );
}
