//! Record, summarize, and replay an observed MM run.
//!
//! One observer installed via `Session::builder().observer(..)` watches the
//! whole stack — client spans, transport messages, server service spans —
//! while the MM case study runs over a simulated 40GI link. The run then
//! prints the Table-I-style byte/time accounting, replays the measured
//! trace against the §V estimation model (`model::compare`), and writes a
//! Chrome `trace_event` file loadable in `chrome://tracing` / Perfetto.
//!
//! ```sh
//! cargo run --release --example observed_matmul [trace-out.json]
//! ```
//!
//! The trace path defaults to `target/observed_matmul_trace.json`.

use rcuda::api::run_matmul_bytes;
use rcuda::core::{Clock as _, SharedClock};
use rcuda::model::compare_report;
use rcuda::netsim::NetworkId;
use rcuda::obs::{chrome_trace, summary_table, validate_chrome_trace, Recorder};
use rcuda::session::Endpoint;
use rcuda::session::Session;

fn main() {
    let trace_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/observed_matmul_trace.json".into());
    let m = 1024u32;
    let net = NetworkId::Ib40G;

    let rec = Recorder::new();
    let mut sess = Session::builder()
        .phantom(true)
        .observer(rec.handle())
        .connect(Endpoint::Simulated(net))
        .unwrap();
    rec.attach_clock(sess.clock().clone() as SharedClock);

    let bytes = vec![0u8; (m * m * 4) as usize];
    let clock = sess.clock().clone();
    run_matmul_bytes(&mut *sess, &*clock, m, &bytes, &bytes).expect("MM run");
    let total = sess.clock().now();
    sess.finish();

    let report = rec.report();
    println!(
        "observed {m}\u{d7}{m} SGEMM over simulated {net}: {:.3} ms of virtual time\n",
        total.as_secs_f64() * 1e3
    );
    println!("{}", summary_table(&report));

    let cmp = compare_report(&report, &*net.model());
    println!("{}", cmp.render());
    println!(
        "worst per-phase estimate error: {:.3}%\n",
        cmp.max_abs_error() * 100.0
    );

    let json = chrome_trace(&report);
    validate_chrome_trace(&json).expect("emitted trace must satisfy the trace_event schema");
    println!("trace schema OK");
    if let Some(dir) = std::path::Path::new(&trace_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&trace_path, &json).expect("write trace file");
    println!(
        "wrote {} ({} events) — load it in chrome://tracing or Perfetto",
        trace_path,
        report.spans.len() + report.server_spans.len() + report.message_events.len()
    );
}
