//! The shipped `rcuda-run` binary, tested as a user would run it: spawn the
//! actual executable against a live daemon and check its verified output.

use rcuda::gpu::GpuDevice;
use rcuda::server::RcudaDaemon;
use std::process::Command;

fn run_cli(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rcuda-run"))
        .args(args)
        .output()
        .expect("spawn rcuda-run");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string() + &String::from_utf8_lossy(&out.stderr),
    )
}

#[test]
fn rcuda_run_mm_verifies_against_local_reference() {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr().to_string();
    let (ok, out) = run_cli(&["--connect", &addr, "mm", "48"]);
    assert!(ok, "rcuda-run failed:\n{out}");
    assert!(out.contains("remote result verified"), "{out}");
    assert!(out.contains("wire trace"), "{out}");
    // Table I byte counts visible in the live trace.
    assert!(out.contains("21490"), "module upload bytes missing:\n{out}");
    daemon.shutdown();
}

#[test]
fn rcuda_run_fft_is_bit_identical() {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr().to_string();
    let (ok, out) = run_cli(&["--connect", &addr, "fft", "4"]);
    assert!(ok, "rcuda-run failed:\n{out}");
    assert!(out.contains("bit-identical"), "{out}");
    daemon.shutdown();
}

#[test]
fn rcuda_run_rejects_bad_usage() {
    let (ok, out) = run_cli(&[]);
    assert!(!ok, "missing args must fail");
    assert!(out.contains("usage"), "{out}");
    let (ok, out) = run_cli(&["--connect", "127.0.0.1:9", "--bogus"]);
    assert!(!ok);
    assert!(out.contains("unknown argument"), "{out}");
}

#[test]
fn rcuda_run_reports_connection_failure() {
    // A port nothing listens on: clean error, not a hang or panic.
    let (ok, out) = run_cli(&["--connect", "127.0.0.1:1", "mm", "16"]);
    assert!(!ok);
    assert!(out.contains("cannot connect"), "{out}");
}
