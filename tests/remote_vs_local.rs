//! The middleware's core promise (§III): an application using a remote GPU
//! gets exactly what it would get from a local one. These tests run the
//! full case studies through the real TCP daemon and through simulated
//! links, comparing against local execution bit-for-bit.

use rcuda::api::{run_fft_bytes, run_matmul_bytes};
use rcuda::core::time::wall_clock;
use rcuda::gpu::GpuDevice;
use rcuda::kernels::complex::complex_to_bytes;
use rcuda::kernels::workload::{fft_input, matrix_pair};
use rcuda::netsim::NetworkId;
use rcuda::server::RcudaDaemon;
use rcuda::session;
use rcuda::session::Endpoint;

fn f32s(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

#[test]
fn matmul_over_tcp_equals_local() {
    let m = 48u32;
    let (a, b) = matrix_pair(m as usize, 11);
    let (a, b) = (f32s(a.as_slice()), f32s(b.as_slice()));

    // Local baseline.
    let clock = wall_clock();
    let mut local = session::local_functional();
    let local_out = run_matmul_bytes(&mut local, &*clock, m, &a, &b)
        .unwrap()
        .output;

    // Remote over loopback TCP.
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let mut remote = session::Session::builder()
        .connect(Endpoint::Tcp(daemon.local_addr()))
        .unwrap();
    let remote_out = run_matmul_bytes(&mut *remote, &*clock, m, &a, &b)
        .unwrap()
        .output;

    assert_eq!(remote_out, local_out, "remote result must be bit-identical");
    assert!(daemon.wait_for_sessions(1, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    assert_eq!(daemon.sessions_served(), 1);
    let reports = daemon.session_reports();
    assert!(reports[0].orderly_shutdown);
    assert_eq!(reports[0].leaked_allocations, 0);
}

#[test]
fn fft_over_tcp_equals_local() {
    let batch = 4u32;
    let input = complex_to_bytes(&fft_input(batch as usize, 23));

    let clock = wall_clock();
    let mut local = session::local_functional();
    let local_out = run_fft_bytes(&mut local, &*clock, batch, &input)
        .unwrap()
        .output;

    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let mut remote = session::Session::builder()
        .connect(Endpoint::Tcp(daemon.local_addr()))
        .unwrap();
    let remote_out = run_fft_bytes(&mut *remote, &*clock, batch, &input)
        .unwrap()
        .output;

    assert_eq!(remote_out, local_out);
    daemon.shutdown();
}

#[test]
fn matmul_over_simulated_network_equals_local() {
    let m = 32u32;
    let (a, b) = matrix_pair(m as usize, 5);
    let (a, b) = (f32s(a.as_slice()), f32s(b.as_slice()));

    let clock = wall_clock();
    let mut local = session::local_functional();
    let local_out = run_matmul_bytes(&mut local, &*clock, m, &a, &b)
        .unwrap()
        .output;

    for net in [NetworkId::GigaE, NetworkId::Ib40G, NetworkId::AsicHt] {
        let mut sess = session::Session::builder()
            .connect(Endpoint::Simulated(net))
            .unwrap();
        let out = run_matmul_bytes(&mut *sess, &*clock, m, &a, &b)
            .unwrap()
            .output;
        assert_eq!(out, local_out, "{net}");
        let report = sess.finish_report();
        assert!(report.orderly_shutdown);
        assert_eq!(report.leaked_allocations, 0);
    }
}

#[test]
fn trace_byte_accounting_matches_table1() {
    // Run the MM phases remotely and verify the recorded trace carries
    // exactly the Table I / Table II message sizes.
    let m = 16u32;
    let (a, b) = matrix_pair(m as usize, 2);
    let (a, b) = (f32s(a.as_slice()), f32s(b.as_slice()));
    let clock = wall_clock();
    let mut sess = session::Session::builder()
        .connect(Endpoint::Simulated(NetworkId::Ib40G))
        .unwrap();
    run_matmul_bytes(&mut *sess, &*clock, m, &a, &b).unwrap();

    let trace = sess.trace().clone();
    let by_op = |op: &str| -> Vec<(u64, u64)> {
        trace
            .events
            .iter()
            .filter(|e| e.op == op)
            .map(|e| (e.sent, e.received))
            .collect()
    };

    // Initialization: x + 4 sent (x = 21486), 12 received.
    assert_eq!(by_op("initialization"), vec![(21_490, 12)]);
    // Three mallocs at 8/8.
    assert_eq!(by_op("cudaMalloc"), vec![(8, 8); 3]);
    // Two H2D copies at 4m² + 20 / 4.
    let payload = (4 * m * m) as u64;
    assert_eq!(by_op("cudaMemcpyH2D"), vec![(payload + 20, 4); 2]);
    // One D2H at 20 / 4m² + 4.
    assert_eq!(by_op("cudaMemcpyD2H"), vec![(20, payload + 4)]);
    // Three frees at 8/4.
    assert_eq!(by_op("cudaFree"), vec![(8, 4); 3]);
    // Total bulk payload: 3 copies of 4m².
    assert_eq!(trace.bulk_payload(), 3 * payload);
    sess.finish();
}

#[test]
fn two_sequential_sessions_reuse_the_daemon() {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let clock = wall_clock();
    for seed in 0..2u64 {
        let (a, b) = matrix_pair(16, seed);
        let mut rt = session::Session::builder()
            .connect(Endpoint::Tcp(daemon.local_addr()))
            .unwrap();
        run_matmul_bytes(
            &mut *rt,
            &*clock,
            16,
            &f32s(a.as_slice()),
            &f32s(b.as_slice()),
        )
        .unwrap();
    }
    assert!(daemon.wait_for_sessions(2, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    assert_eq!(daemon.sessions_served(), 2);
}
