//! Multi-GPU daemon: sessions are scheduled across a pool of devices
//! (the paper's future-work GPU scheduling, implemented as `GpuPool`).

use rcuda::api::{run_matmul_bytes, CudaRuntime};
use rcuda::core::time::wall_clock;
use rcuda::gpu::GpuDevice;
use rcuda::kernels::workload::matrix_pair;
use rcuda::server::{GpuPool, PoolPolicy, RcudaDaemon};
use rcuda::session;
use rcuda::session::Endpoint;
use std::sync::Arc;
use std::thread;

fn f32s(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

#[test]
fn pooled_daemon_serves_concurrent_clients_correctly() {
    let pool = Arc::new(GpuPool::uniform_c1060(3, PoolPolicy::LeastLoaded));
    let mut daemon = RcudaDaemon::builder()
        .pool(Arc::clone(&pool))
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();

    let handles: Vec<_> = (0..9u64)
        .map(|seed| {
            thread::spawn(move || {
                let clock = wall_clock();
                let m = 20u32;
                let (a, b) = matrix_pair(m as usize, seed);
                let mut rt = session::Session::builder()
                    .connect(Endpoint::Tcp(addr))
                    .unwrap();
                run_matmul_bytes(
                    &mut *rt,
                    &*clock,
                    m,
                    &f32s(a.as_slice()),
                    &f32s(b.as_slice()),
                )
                .unwrap()
                .output
            })
        })
        .collect();
    let outputs: Vec<Vec<u8>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every client got the right answer, regardless of which device served
    // it.
    let clock = wall_clock();
    for (seed, out) in outputs.iter().enumerate() {
        let (a, b) = matrix_pair(20, seed as u64);
        let mut local = session::local_functional();
        let expect = run_matmul_bytes(
            &mut local,
            &*clock,
            20,
            &f32s(a.as_slice()),
            &f32s(b.as_slice()),
        )
        .unwrap()
        .output;
        assert_eq!(out, &expect, "client {seed}");
    }

    assert!(daemon.wait_for_sessions(9, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    assert_eq!(daemon.sessions_served(), 9);
    // Sessions ended, pool fully released.
    assert_eq!(pool.loads(), vec![0, 0, 0]);
}

#[test]
fn single_device_daemon_is_a_pool_of_one() {
    // The classic constructor still works and routes through the pool.
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let mut rt = session::Session::builder()
        .connect(Endpoint::Tcp(daemon.local_addr()))
        .unwrap();
    rt.initialize(&rcuda::gpu::module::build_module(&[], 0))
        .unwrap();
    let p = rt.malloc(64).unwrap();
    rt.free(p).unwrap();
    rt.finalize().unwrap();
    assert!(daemon.wait_for_sessions(1, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    assert_eq!(daemon.sessions_served(), 1);
}
