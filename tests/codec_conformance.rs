//! Codec conformance: negotiation interop with legacy peers in both
//! directions, composition with the mux trunk and payload cipher, and
//! property tests over the codec's wire framing.
//!
//! The negotiation design promise is that the codec is invisible until
//! *both* ends opt in: a legacy client against a codec-advertising server
//! and a codec client against a legacy server must each run a full
//! session over plain framing, bit-for-bit compatible with the
//! pre-codec protocol. The property tests then pin the framing itself:
//! `write_block`/`read_block`/`read_block_into` round-trip arbitrary
//! payloads byte-identically under every mode, arbitrary read
//! fragmentation, and recycled pool buffers.

use proptest::prelude::*;
use rcuda::api::CudaRuntime;
use rcuda::client::RemoteRuntime;
use rcuda::core::time::wall_clock;
use rcuda::core::{ArgPack, Dim3};
use rcuda::gpu::module::build_module;
use rcuda::gpu::GpuDevice;
use rcuda::proto::secure::CipherSuiteKind;
use rcuda::proto::{BufferPool, Codec, CodecMode};
use rcuda::server::{RcudaDaemon, ServerConfig};
use rcuda::session::{Endpoint, Session};
use rcuda::transport::TcpTransport;
use std::io::Read;

/// One full data-plane round trip: upload, overwrite with `fill`, read
/// back into a caller buffer, and check the kernel's output — proof the
/// session's framing is intact end to end, whatever the codec decided.
fn fill_round_trip<R: CudaRuntime>(rt: &mut R, size: usize) {
    let n = (size / 4) as u32;
    let dev = rt.malloc(size as u32).unwrap();
    let data = vec![0x5au8; size];
    let mut out = vec![0u8; size];
    let args = ArgPack::new().push_ptr(dev).push_u32(n).push_f32(2.5);
    let expected: Vec<u8> = 2.5f32
        .to_le_bytes()
        .iter()
        .copied()
        .cycle()
        .take(size)
        .collect();

    rt.memcpy_h2d(dev, &data).unwrap();
    rt.launch("fill", Dim3::x(1), Dim3::x(64), 0, 0, args.as_bytes())
        .unwrap();
    rt.memcpy_d2h_into(dev, &mut out).unwrap();
    assert_eq!(out, expected, "fill result wrong at {size} bytes");
    rt.free(dev).unwrap();
}

/// A legacy client (no codec opt-in) against a codec-advertising server:
/// the capability bits ride the high half of the CC minor word, which a
/// legacy client never inspects, so the session must run raw framing and
/// work exactly as before.
#[test]
fn legacy_client_ignores_codec_advertising_server() {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let transport = TcpTransport::connect(daemon.local_addr()).unwrap();
    let mut rt = RemoteRuntime::new(transport, wall_clock());
    // No set_codec: this client predates the codec.
    rt.initialize(&build_module(&["fill"], 0)).unwrap();
    assert!(!rt.codec_active(), "no opt-in must mean no codec");
    assert!(rt.codec_stats().is_none(), "no codec, no stats");

    for size in [256usize, 64 * 1024] {
        fill_round_trip(&mut rt, size);
    }

    rt.finalize().unwrap();
    drop(rt);
    assert!(daemon.wait_for_sessions(1, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    let reports = daemon.session_reports();
    assert!(reports[0].orderly_shutdown);
}

/// A codec client against a server that does not advertise it: the client
/// must fall back to raw framing silently (even in `Always` mode) and the
/// session must be indistinguishable from a legacy one.
#[test]
fn codec_client_falls_back_against_legacy_server() {
    let mut daemon = RcudaDaemon::builder()
        .config(ServerConfig {
            codec: false,
            ..ServerConfig::default()
        })
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let transport = TcpTransport::connect(daemon.local_addr()).unwrap();
    let mut rt = RemoteRuntime::new(transport, wall_clock());
    rt.set_codec(true);
    rt.set_codec_mode(CodecMode::Always);
    rt.initialize(&build_module(&["fill"], 0)).unwrap();
    assert!(
        !rt.codec_active(),
        "server did not advertise; the codec must stay off"
    );

    for size in [256usize, 64 * 1024] {
        fill_round_trip(&mut rt, size);
    }
    if let Some(stats) = rt.codec_stats() {
        assert_eq!(stats.compressed, 0, "nothing may compress when inactive");
    }

    rt.finalize().unwrap();
    drop(rt);
    assert!(daemon.wait_for_sessions(1, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    let reports = daemon.session_reports();
    assert!(reports[0].orderly_shutdown);
}

/// The codec composes with the mux trunk and the ChaCha20 payload cipher:
/// compress-then-encrypt on the way out, decrypt-then-inflate on the way
/// in, all three layers negotiated in one handshake.
#[test]
fn codec_composes_with_mux_and_cipher() {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let mut sess = Session::builder()
        .mux(true)
        .cipher(CipherSuiteKind::ChaCha20)
        .codec(true)
        .connect(Endpoint::Tcp(daemon.local_addr()))
        .unwrap();
    sess.set_codec_mode(CodecMode::Always);
    sess.initialize(&build_module(&["fill"], 0)).unwrap();
    assert!(sess.codec_active(), "daemon must advertise the codec");

    for size in [4 * 1024usize, 128 * 1024] {
        fill_round_trip(&mut *sess, size);
    }

    let stats = sess.codec_stats().expect("codec enabled");
    assert!(
        stats.compressed > 0,
        "0x5a payloads must have compressed under the cipher: {stats:?}"
    );
    assert!(stats.ratio() < 0.5, "0x5a bytes compress well: {stats:?}");

    sess.finalize().unwrap();
    sess.finish();
    assert!(daemon.wait_for_sessions(1, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    let reports = daemon.session_reports();
    assert_eq!(reports[0].leaked_allocations, 0);
}

/// A frame whose `enc_len` prefix exceeds the raw length it must inflate
/// to is malformed — both decode paths must reject it cleanly rather than
/// over-read or trust the attacker-controlled length.
#[test]
fn oversized_enc_len_is_rejected() {
    let codec = Codec::new(BufferPool::new());
    let mut frame = Vec::new();
    frame.extend_from_slice(&8u32.to_le_bytes());
    frame.extend_from_slice(&[0u8; 8]);

    let err = codec
        .read_block(&mut frame.as_slice(), 4)
        .expect_err("enc_len > raw_len must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    let mut out = [0u8; 4];
    let err = codec
        .read_block_into(&mut frame.as_slice(), &mut out)
        .expect_err("enc_len > out.len() must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

/// A reader that serves its bytes in caller-chosen fragments, modelling a
/// TCP stream handing the decoder short reads at arbitrary boundaries.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    next: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, chunks: Vec<usize>) -> ChunkedReader {
        ChunkedReader {
            data,
            pos: 0,
            chunks,
            next: 0,
        }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.data.len() - self.pos;
        if remaining == 0 || buf.is_empty() {
            return Ok(0);
        }
        // Cycle through the fragment schedule; 0-sized entries become 1 so
        // the stream always makes progress.
        let chunk = if self.chunks.is_empty() {
            remaining
        } else {
            let c = self.chunks[self.next % self.chunks.len()].max(1);
            self.next += 1;
            c
        };
        let n = chunk.min(remaining).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Payloads spanning the codec's interesting regimes: dense random bytes
/// (decline material), a single repeated byte (maximal compression), and
/// a short motif tiled past the 4 KiB probe threshold (realistic
/// structured buffers). Sizes straddle `MIN_COMPRESS_LEN`.
fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..12 * 1024),
        (any::<u8>(), 1usize..12 * 1024).prop_map(|(b, n)| vec![b; n]),
        (proptest::collection::vec(any::<u8>(), 1..64), 64usize..512).prop_map(|(motif, reps)| {
            motif
                .iter()
                .copied()
                .cycle()
                .take(motif.len() * reps)
                .collect()
        }),
    ]
}

fn arb_mode() -> impl Strategy<Value = CodecMode> {
    prop_oneof![
        Just(CodecMode::Never),
        Just(CodecMode::Always),
        Just(CodecMode::Adaptive),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `write_block` → `read_block` is the identity on arbitrary payloads,
    /// for every mode, under arbitrary read fragmentation, with encoder
    /// and decoder recycling their pools across two consecutive frames
    /// (the second pass rides buffers the first returned).
    #[test]
    fn codec_block_round_trips_byte_identical(
        payload in arb_payload(),
        mode in arb_mode(),
        chunks in proptest::collection::vec(1usize..1024, 0..8),
    ) {
        let encoder = Codec::with_mode(BufferPool::new(), mode);
        let decoder = Codec::new(BufferPool::new());
        for _ in 0..2 {
            let mut wire = Vec::new();
            let on_wire = encoder.write_block(&mut wire, &payload).unwrap();
            prop_assert_eq!(on_wire as usize, wire.len());
            let mut r = ChunkedReader::new(wire, chunks.clone());
            let decoded = decoder.read_block(&mut r, payload.len()).unwrap();
            prop_assert_eq!(decoded.as_slice(), payload.as_slice());
        }
    }

    /// The same identity through `read_block_into`: the caller's buffer is
    /// the final destination (the client's D2H receive path), raw and
    /// compressed frames alike.
    #[test]
    fn codec_block_into_round_trips_byte_identical(
        payload in arb_payload(),
        mode in arb_mode(),
        chunks in proptest::collection::vec(1usize..1024, 0..8),
    ) {
        let encoder = Codec::with_mode(BufferPool::new(), mode);
        let decoder = Codec::new(BufferPool::new());
        for _ in 0..2 {
            let mut wire = Vec::new();
            encoder.write_block(&mut wire, &payload).unwrap();
            let mut r = ChunkedReader::new(wire, chunks.clone());
            let mut out = vec![0u8; payload.len()];
            decoder.read_block_into(&mut r, &mut out).unwrap();
            prop_assert_eq!(out.as_slice(), payload.as_slice());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End to end: arbitrary payloads pushed H2D through a codec session
    /// (in-process channel server, `Always` mode) come back D2H
    /// byte-identical, whatever the encoder decided per payload.
    #[test]
    fn codec_session_round_trips_arbitrary_payloads(
        payloads in proptest::collection::vec(arb_payload(), 1..4),
    ) {
        let mut sess = Session::builder()
            .codec(true)
            .connect(Endpoint::Channel)
            .unwrap();
        sess.set_codec_mode(CodecMode::Always);
        sess.initialize(&build_module(&["fill"], 0)).unwrap();
        prop_assert!(sess.codec_active());

        for payload in &payloads {
            let dev = sess.malloc(payload.len() as u32).unwrap();
            sess.memcpy_h2d(dev, payload).unwrap();
            let mut out = vec![0u8; payload.len()];
            sess.memcpy_d2h_into(dev, &mut out).unwrap();
            prop_assert_eq!(&out, payload);
            sess.free(dev).unwrap();
        }

        sess.finalize().unwrap();
        let report = sess.finish_report();
        prop_assert!(report.orderly_shutdown);
    }
}
