//! End-to-end observability: an observed MM run over the simulated
//! transport must reproduce Table I's byte accounting call by call, export
//! a schema-valid (and byte-stable) Chrome trace and summary table, replay
//! through `model::compare` with zero error on the bulk-transfer phases,
//! and keep its counters continuous across an injected mid-run fault.

use rcuda::session::Endpoint;
use std::path::Path;
use std::sync::Arc;

use rcuda::api::run_matmul_bytes;
use rcuda::core::casestudy::MM_MODULE_BYTES;
use rcuda::core::{ArgPack, Clock as _, DevicePtr, SharedClock, VirtualClock};
use rcuda::model::compare_report;
use rcuda::netsim::NetworkId;
use rcuda::obs::{chrome_trace, summary_table, validate_chrome_trace, Recorder, Report};
use rcuda::proto::OpKind;
use rcuda::session::Session;
use rcuda::transport::{FaultKind, FaultPlan};

/// Wait until the server thread's startup charges (context preinit, CC
/// push) have landed on the shared virtual clock, so the client's first
/// span starts at a deterministic stamp.
fn quiesce(clock: &Arc<VirtualClock>) {
    let mut last = clock.now();
    let mut stable = 0;
    for _ in 0..500 {
        std::thread::sleep(std::time::Duration::from_millis(5));
        let now = clock.now();
        if now == last && now.as_nanos() > 0 {
            stable += 1;
            if stable >= 3 {
                return;
            }
        } else {
            stable = 0;
        }
        last = now;
    }
    panic!("simulated session never became quiescent");
}

/// Drive the MM case study at `m` over a simulated `net` with a recorder
/// installed on the whole stack; returns what it saw.
fn observed_mm(m: u32, net: NetworkId) -> Report {
    let rec = Recorder::new();
    let mut sess = Session::builder()
        .phantom(true)
        .observer(rec.handle())
        .connect(Endpoint::Simulated(net))
        .unwrap();
    rec.attach_clock(sess.clock().clone() as SharedClock);
    quiesce(sess.clock());
    let bytes = vec![0u8; (m * m * 4) as usize];
    let clock = sess.clock().clone();
    run_matmul_bytes(&mut *sess, &*clock, m, &bytes, &bytes).unwrap();
    sess.finish();
    rec.report()
}

/// Compare `actual` against the golden file `tests/golden/<name>`;
/// regenerate with `RCUDA_UPDATE_GOLDEN=1 cargo test`.
fn golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("RCUDA_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {} — regenerate with RCUDA_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden copy — if intentional, regenerate \
         with RCUDA_UPDATE_GOLDEN=1"
    );
}

const M: u32 = 64;

/// The per-call byte counts an observed run reports must equal the Table I
/// accounting `rcuda-proto` encodes symbolically (`OpKind::totals`),
/// resolved at this run's payload sizes.
#[test]
fn mm_byte_accounting_matches_table1() {
    let report = observed_mm(M, NetworkId::Ib40G);
    let rows = report.per_op();
    let row = |op: &str| {
        rows.iter()
            .find(|(k, _)| *k == op)
            .unwrap_or_else(|| panic!("no '{op}' row in {rows:?}"))
            .1
    };
    let d = 4 * u64::from(M) * u64::from(M);

    // Initialization: module upload (x + 4) out; CC push + error (12) back.
    let init = row("initialization");
    let (sent, recv) = OpKind::Initialization.totals().resolve(MM_MODULE_BYTES);
    assert_eq!(
        (init.calls, init.bytes_sent, init.bytes_received),
        (1, sent, recv)
    );

    // cudaMalloc ×3: 8 out, 8 back, each.
    let malloc = row("cudaMalloc");
    let (sent, recv) = OpKind::Malloc.totals().resolve(0);
    assert_eq!(
        (malloc.calls, malloc.bytes_sent, malloc.bytes_received),
        (3, 3 * sent, 3 * recv)
    );

    // cudaMemcpy to device ×2: x + 20 out, 4 back, each.
    let h2d = row("cudaMemcpyH2D");
    let (sent, recv) = OpKind::MemcpyToDevice.totals().resolve(d);
    assert_eq!(
        (h2d.calls, h2d.bytes_sent, h2d.bytes_received),
        (2, 2 * sent, 2 * recv)
    );

    // cudaLaunch: x + 44 out, 4 back. Our realization's variable payload is
    // the launch region ("sgemmNN\0" + packed args) plus its 4-byte length
    // prefix; the 44 fixed bytes match Table I field for field.
    let launch = row("cudaLaunch");
    let args = ArgPack::new()
        .push_ptr(DevicePtr::new(1))
        .push_ptr(DevicePtr::new(2))
        .push_ptr(DevicePtr::new(3))
        .push_u32(M)
        .push_u32(M)
        .push_u32(M)
        .into_bytes();
    let x = 4 + "sgemmNN\0".len() as u64 + args.len() as u64;
    let (sent, recv) = OpKind::Launch.totals().resolve(x);
    assert_eq!(
        (launch.calls, launch.bytes_sent, launch.bytes_received),
        (1, sent, recv)
    );

    // cudaMemcpy to host: 20 out, x + 4 back.
    let d2h = row("cudaMemcpyD2H");
    let (sent, recv) = OpKind::MemcpyToHost.totals().resolve(d);
    assert_eq!(
        (d2h.calls, d2h.bytes_sent, d2h.bytes_received),
        (1, sent, recv)
    );

    // cudaFree ×3: 8 out, 4 back, each.
    let free = row("cudaFree");
    let (sent, recv) = OpKind::Free.totals().resolve(0);
    assert_eq!(
        (free.calls, free.bytes_sent, free.bytes_received),
        (3, 3 * sent, 3 * recv)
    );

    // Synchronization and Quit are bare 4-byte function ids + 4-byte acks
    // (not broken out in Table I).
    let sync = row("cudaThreadSynchronize");
    assert_eq!(
        (sync.calls, sync.bytes_sent, sync.bytes_received),
        (1, 4, 4)
    );
    let fin = row("finalization");
    assert_eq!((fin.calls, fin.bytes_sent, fin.bytes_received), (1, 4, 4));

    // Transport-level message accounting agrees with the span view: one
    // request message per call, one response per call plus the CC push.
    let calls = report.spans.len() as u64;
    assert_eq!(calls, 13, "13 remote calls in the MM case study");
    assert_eq!(report.messages.sent_count, calls);
    assert_eq!(report.messages.received_count, calls + 1);
    let (span_sent, span_received) = report.totals();
    assert_eq!(report.messages.sent_bytes, span_sent);
    assert_eq!(report.messages.received_bytes, span_received);

    // Every request (Quit included) produced a server-side service span.
    assert_eq!(report.server_spans.len(), 13);
}

/// The Chrome trace export of a deterministic sim run is schema-valid and
/// byte-stable.
#[test]
fn chrome_trace_export_matches_golden() {
    let report = observed_mm(M, NetworkId::Ib40G);
    let json = chrome_trace(&report);
    validate_chrome_trace(&json).expect("trace schema");
    golden("mm_trace.json", &json);
}

/// The Table-I-style summary of the same run is byte-stable.
#[test]
fn summary_table_matches_golden() {
    let report = observed_mm(M, NetworkId::Ib40G);
    golden("mm_summary.txt", &summary_table(&report));
}

/// Replaying the measured trace against the estimation model: the sim
/// transport charges exactly `app_transfer` per message and the server
/// spans isolate the GPU share, so every single-message phase replays with
/// zero error; only initialization (CC push and ack priced as separate
/// messages) may deviate, and barely.
#[test]
fn model_compare_replays_sim_run_exactly() {
    let net = NetworkId::Ib40G;
    let report = observed_mm(M, net);
    let cmp = compare_report(&report, &*net.model());

    for phase in [
        "allocation",
        "input transfer",
        "kernel",
        "output transfer",
        "cleanup",
    ] {
        let row = cmp.phase(phase).unwrap_or_else(|| panic!("no {phase} row"));
        assert_eq!(
            row.measured_network, row.estimated_network,
            "{phase}: sim-measured network share must replay exactly"
        );
        assert_eq!(row.error, 0.0, "{phase}");
    }
    assert!(
        cmp.max_abs_error() < 0.02,
        "initialization residual too large: {}",
        cmp.max_abs_error()
    );

    let rendered = cmp.render();
    assert!(rendered.contains("input transfer"), "{rendered}");
    assert!(rendered.contains("+0.00%"), "{rendered}");
}

/// A mid-run disconnect must not lose observability state: the observer
/// sees the reconnect and the replay, and its message accounting stays
/// consistent with the transport's own counters across the re-dial.
#[test]
fn observer_counters_survive_a_midrun_fault() {
    let rec = Recorder::new();
    // The connection dies under the first H2D copy (message index 4); with
    // retries the call replays transparently over a resumed session.
    let mut sess = Session::builder()
        .deadline(std::time::Duration::from_secs(2))
        .retries(2)
        .observer(rec.handle())
        .connect(Endpoint::ChannelFaulty(FaultPlan::at(
            4,
            FaultKind::Disconnect,
        )))
        .unwrap();
    let m = 8u32;
    let bytes = vec![0u8; (m * m * 4) as usize];
    let clock = rcuda::core::time::wall_clock();
    run_matmul_bytes(&mut *sess, &*clock, m, &bytes, &bytes)
        .expect("MM completes despite the mid-run disconnect");

    let metrics = sess.metrics();
    sess.finish();
    let report = rec.report();

    assert_eq!(report.reconnects, 1, "observer saw the re-dial");
    assert!(report.retries >= 1, "observer saw the replayed call");
    assert_eq!(metrics.reconnects, 1);
    assert!(metrics.retries >= 1);

    // Counter continuity: the observer's per-message event stream and the
    // transport's absorbed counters describe the same session across the
    // re-dial.
    assert_eq!(report.messages.sent_count, metrics.messages_sent);
    assert_eq!(report.messages.received_count, metrics.messages_received);
    assert_eq!(report.messages.sent_bytes, metrics.bytes_sent);
    assert_eq!(report.messages.received_bytes, metrics.bytes_received);

    // The workload's 13 calls each produced exactly one span — the replayed
    // one carries its retry count instead of splitting into two spans.
    assert_eq!(report.spans.len(), 13);
    assert!(report.spans.iter().any(|s| s.retries >= 1));
}
