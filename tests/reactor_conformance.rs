//! Multi-tenant hardening semantics re-run against the sharded reactor
//! core, configured through `DaemonBuilder`.
//!
//! The thread-per-connection daemon established these guarantees
//! (admission `Busy` frames, per-session memory quotas, per-frame panic
//! isolation, bounded graceful drain, park/resume). This suite asserts
//! each of them holds unchanged now that every connection is multiplexed
//! onto a fixed pool of reactor shards — including at `shards(1)`, where
//! every session shares a single readiness loop and isolation cannot come
//! from thread boundaries.

use rcuda::api::CudaRuntime;
use rcuda::core::CudaError;
use rcuda::gpu::module::build_module;
use rcuda::obs::Recorder;
use rcuda::proto::handshake::read_hello_reply;
use rcuda::proto::ids::MemcpyKind;
use rcuda::proto::{Request, Response, SessionHello};
use rcuda::server::{ChaosHook, DaemonBuilder, RcudaDaemon};
use rcuda::session::Endpoint;
use rcuda::session::Session;
use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Shard counts worth exercising: a single shared loop, and a small pool.
const SHARD_COUNTS: [usize; 2] = [1, 4];

/// Hold a session slot: connect raw and read the hello but never speak, so
/// the connection sits in its shard's Hello phase until the stream drops.
fn hold_slot(addr: std::net::SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    let mut hello = [0u8; 8];
    s.read_exact(&mut hello).unwrap();
    s
}

#[test]
fn busy_shedding_holds_on_every_shard_count() {
    for shards in SHARD_COUNTS {
        let mut daemon = DaemonBuilder::new()
            .shards(shards)
            .max_sessions(1)
            .busy_retry_after_ms(5)
            .bind("127.0.0.1:0")
            .unwrap();
        let addr = daemon.local_addr();
        let holder = hold_slot(addr);

        // Fail-fast client: the rejection surfaces as ServerBusy.
        let mut rt = Session::builder()
            .deadline(Duration::from_secs(2))
            .connect(Endpoint::Tcp(addr))
            .unwrap();
        let err = rt.initialize(&build_module(&[], 0)).unwrap_err();
        assert_eq!(err, CudaError::ServerBusy, "shards={shards}");

        // Retrying client: gets in once the slot frees.
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            drop(holder);
        });
        let mut rt = Session::builder()
            .deadline(Duration::from_secs(2))
            .retries(12)
            .connect(Endpoint::Tcp(addr))
            .unwrap();
        rt.initialize(&build_module(&[], 0))
            .expect("admitted once the slot frees");
        rt.finalize().unwrap();
        releaser.join().unwrap();

        daemon.drain(Duration::from_secs(5));
        let health = daemon.health();
        assert!(health.rejected >= 2, "shards={shards}");
        assert_eq!(
            health.rejected + health.served,
            health.attempted,
            "admission ledger balances (shards={shards})"
        );
    }
}

#[test]
fn session_quota_holds_on_the_reactor() {
    for shards in SHARD_COUNTS {
        let mut daemon = DaemonBuilder::new()
            .shards(shards)
            .session_mem_quota(1024)
            .bind("127.0.0.1:0")
            .unwrap();
        let mut rt = Session::builder()
            .deadline(Duration::from_secs(2))
            .connect(Endpoint::Tcp(daemon.local_addr()))
            .unwrap();
        rt.initialize(&build_module(&[], 0)).unwrap();

        let p = rt.malloc(1024).unwrap();
        assert_eq!(
            rt.malloc(256),
            Err(CudaError::MemoryAllocation),
            "over-quota malloc fails without killing the session (shards={shards})"
        );
        rt.free(p).unwrap();
        let p = rt.malloc(256).expect("quota is on live bytes");
        rt.free(p).unwrap();
        rt.finalize().unwrap();
        daemon.drain(Duration::from_secs(5));
    }
}

#[test]
fn panic_is_isolated_even_on_a_single_shard() {
    // One shard: victim and bystander share the same readiness loop, so
    // isolation must come from the per-frame panic guard, not from thread
    // boundaries.
    let mut daemon = DaemonBuilder::new()
        .shards(1)
        .chaos(ChaosHook::new(|req| {
            if matches!(req, Request::Malloc { size: 0xDEAD }) {
                panic!("chaos hook: injected dispatch panic");
            }
        }))
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();

    let mut bystander = Session::builder()
        .deadline(Duration::from_secs(2))
        .connect(Endpoint::Tcp(addr))
        .unwrap();
    bystander.initialize(&build_module(&[], 0)).unwrap();
    let p = bystander.malloc(64).unwrap();
    bystander.memcpy_h2d(p, &[7u8; 64]).unwrap();

    let mut victim = Session::builder()
        .deadline(Duration::from_secs(2))
        .connect(Endpoint::Tcp(addr))
        .unwrap();
    victim.initialize(&build_module(&[], 0)).unwrap();
    assert_eq!(victim.malloc(0xDEAD), Err(CudaError::LaunchFailure));

    // The bystander's context, wire state, and data are untouched.
    assert_eq!(bystander.memcpy_d2h(p, 64).unwrap(), vec![7u8; 64]);
    bystander.free(p).unwrap();
    bystander.finalize().unwrap();

    drop(victim);
    daemon.drain(Duration::from_secs(5));
    let health = daemon.health();
    assert_eq!(health.panics, 1, "exactly the injected panic");
    assert_eq!(health.live_sessions, 0);
    assert_eq!(health.rejected + health.served, health.attempted);
}

#[test]
fn drain_still_bounds_stragglers_and_finishes_the_orderly() {
    for shards in SHARD_COUNTS {
        let mut daemon = DaemonBuilder::new()
            .shards(shards)
            .bind("127.0.0.1:0")
            .unwrap();
        let addr = daemon.local_addr();

        let mut orderly = Session::builder()
            .deadline(Duration::from_secs(2))
            .connect(Endpoint::Tcp(addr))
            .unwrap();
        orderly.initialize(&build_module(&[], 0)).unwrap();
        orderly.finalize().unwrap();
        assert!(daemon.wait_for_sessions(1, Duration::from_secs(5)));

        let quiet = hold_slot(addr);
        let begun = Instant::now();
        let report = daemon.drain(Duration::from_millis(200));
        assert!(
            begun.elapsed() < Duration::from_secs(5),
            "drain is bounded by its deadline (shards={shards})"
        );
        assert_eq!(report.forced, 1, "shards={shards}");
        assert_eq!(report.graceful, 0, "pre-drain completions don't count");
        assert_eq!(daemon.health().live_sessions, 0);
        drop(quiet);
    }
}

#[test]
fn park_and_resume_work_across_reactor_shards() {
    let mut daemon = DaemonBuilder::new().shards(4).bind("127.0.0.1:0").unwrap();
    let addr = daemon.local_addr();
    let token = 0xFEED_0042u64;

    // Connection 1: resumable hello, malloc + write data, vanish.
    let mut c1 = TcpStream::connect(addr).unwrap();
    let mut cc = [0u8; 8];
    c1.read_exact(&mut cc).unwrap();
    SessionHello::Resumable {
        session: token,
        module: build_module(&[], 0),
    }
    .write(&mut c1)
    .unwrap();
    assert_eq!(read_hello_reply(&mut c1).unwrap(), Ok(()));

    let malloc = Request::Malloc { size: 8 };
    malloc.write(&mut c1).unwrap();
    let ptr = Response::read(&mut c1, &malloc)
        .unwrap()
        .into_malloc()
        .unwrap();
    let h2d = Request::Memcpy {
        dst: ptr.addr(),
        src: 0,
        size: 8,
        kind: MemcpyKind::HostToDevice,
        data: Some(vec![9, 8, 7, 6, 5, 4, 3, 2].into()),
    };
    h2d.write(&mut c1).unwrap();
    Response::read(&mut c1, &h2d).unwrap();
    drop(c1);

    // The dying connection's shard parks the session.
    let deadline = Instant::now() + Duration::from_secs(5);
    while daemon.parked_sessions() != 1 {
        assert!(Instant::now() < deadline, "session never parked");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Connection 2 (round-robin may land on any shard): reconnect, read
    // the data back, quit.
    let mut c2 = TcpStream::connect(addr).unwrap();
    c2.read_exact(&mut cc).unwrap();
    SessionHello::Reconnect { session: token }
        .write(&mut c2)
        .unwrap();
    assert_eq!(read_hello_reply(&mut c2).unwrap(), Ok(()), "resumed");
    let d2h = Request::Memcpy {
        dst: 0,
        src: ptr.addr(),
        size: 8,
        kind: MemcpyKind::DeviceToHost,
        data: None,
    };
    d2h.write(&mut c2).unwrap();
    let bytes = Response::read(&mut c2, &d2h)
        .unwrap()
        .into_memcpy_to_host()
        .unwrap();
    assert_eq!(bytes, vec![9, 8, 7, 6, 5, 4, 3, 2], "state survived");
    Request::Quit.write(&mut c2).unwrap();
    Response::read(&mut c2, &Request::Quit).unwrap();

    assert!(daemon.wait_for_sessions(2, Duration::from_secs(5)));
    assert_eq!(daemon.parked_sessions(), 0);
    let reports = daemon.session_reports();
    assert!(reports.iter().any(|r| r.parked));
    assert!(reports.iter().any(|r| r.resumed && r.orderly_shutdown));
    daemon.drain(Duration::from_secs(5));
}

#[test]
fn shard_spans_expose_readiness_loop_activity() {
    let recorder = Recorder::new();
    let mut daemon: RcudaDaemon = DaemonBuilder::new()
        .shards(2)
        .observer(recorder.handle())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();

    for _ in 0..2 {
        let mut rt = Session::builder()
            .deadline(Duration::from_secs(2))
            .connect(Endpoint::Tcp(addr))
            .unwrap();
        rt.initialize(&build_module(&[], 0)).unwrap();
        let p = rt.malloc(128).unwrap();
        rt.free(p).unwrap();
        rt.finalize().unwrap();
    }
    assert!(daemon.wait_for_sessions(2, Duration::from_secs(5)));
    daemon.drain(Duration::from_secs(5));

    let report = recorder.report();
    assert!(
        !report.shard_spans.is_empty(),
        "working passes report shard spans"
    );
    assert!(report.shard_spans.iter().all(|s| s.shard < 2));
    assert!(
        report.shard_spans.iter().any(|s| s.frames > 0),
        "dispatching passes record their frame count"
    );
    assert!(
        report.shard_spans.iter().any(|s| s.sessions >= 1),
        "registered connections are visible in the span"
    );
    // Three post-handshake frames per session (malloc, free, quit); the
    // hello is parsed before frame accounting starts.
    let frames: u64 = report.shard_spans.iter().map(|s| u64::from(s.frames)).sum();
    assert!(
        frames >= 6,
        "malloc/free/quit for two sessions all flowed through shards (saw {frames})"
    );
}
