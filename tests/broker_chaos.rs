//! Broker chaos suite — the tentpole acceptance criteria, end to end over
//! live loopback TCP.
//!
//! A three-daemon pool behind one broker serves matmul sessions while a
//! seeded killer shuts one daemon down mid-workload. Every session must
//! either complete **bit-identically** to a fault-free baseline (the
//! failover journal replays it onto a surviving daemon, where the
//! deterministic allocator reproduces the same device pointers) or
//! surface a typed [`CudaError::SessionLost`] — and none may hang.
//!
//! Separately: live migration of an idle-at-frame-boundary session moves
//! it between daemons with the device [`MemoryLedger`] balanced on both
//! sides and zero client-visible errors, and broker-unreachable clients
//! degrade to their cached daemon list.
//!
//! Seed count is env-overridable like the fault suite:
//! `RCUDA_BROKER_SEEDS=3 cargo test --test broker_chaos`.
//!
//! [`MemoryLedger`]: rcuda::gpu::MemoryLedger

use rcuda::api::{run_matmul_bytes, CudaRuntime};
use rcuda::broker::{Broker, BrokerBuilder, HealthPolicy};
use rcuda::core::time::wall_clock;
use rcuda::core::CudaError;
use rcuda::gpu::module::build_module;
use rcuda::gpu::GpuDevice;
use rcuda::server::{GpuPool, PoolPolicy, RcudaDaemon};
use rcuda::session::{Endpoint, Session};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-side per-call deadline: every blocking call is bounded, so a
/// wedged failover can never hang the suite.
const DEADLINE: Duration = Duration::from_secs(2);

/// Whole-round wall bound (generous: three daemons, several sessions,
/// one failover each).
const WALL_BOUND: Duration = Duration::from_secs(60);

/// Sessions per chaos round — more than daemons, so LeastLoaded doubles
/// at least one daemon up and any victim holds at least one session.
const SESSIONS: usize = 4;

/// Matmul repetitions per session; the kill lands somewhere in the middle.
const ROUNDS: usize = 6;

const M: u32 = 16;

fn mm_input(m: u32) -> Vec<u8> {
    (0..m * m)
        .flat_map(|i| (((i % 7) as f32) * 0.5 - 1.0).to_le_bytes())
        .collect()
}

fn seeds() -> u64 {
    std::env::var("RCUDA_BROKER_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn xorshift(mut x: u64) -> u64 {
    x |= 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// A broker with hair-trigger health timers so a killed daemon leaves the
/// placement pool within a couple of heartbeats.
fn fast_broker() -> Broker {
    BrokerBuilder::new()
        .health(HealthPolicy {
            suspect_after: Duration::from_millis(100),
            down_after: Duration::from_millis(300),
            recover_heartbeats: 2,
        })
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap()
}

fn pool_daemon(broker: &Broker) -> (RcudaDaemon, Arc<GpuPool>) {
    let pool = Arc::new(GpuPool::new(
        vec![GpuDevice::tesla_c1060_functional()],
        PoolPolicy::RoundRobin,
    ));
    let daemon = RcudaDaemon::builder()
        .pool(Arc::clone(&pool))
        .broker(broker.addr())
        .broker_heartbeat_interval(Duration::from_millis(20))
        .bind("127.0.0.1:0")
        .unwrap();
    (daemon, pool)
}

/// Fault-free baseline output, computed over the same broker path.
fn baseline(broker: &Broker) -> Vec<u8> {
    let (a, b) = (mm_input(M), mm_input(M));
    let mut sess = Session::builder()
        .deadline(DEADLINE)
        .connect(Endpoint::Broker(broker.addr()))
        .unwrap();
    let clock = wall_clock();
    let out = run_matmul_bytes(&mut *sess, &*clock, M, &a, &b)
        .expect("baseline matmul over the broker completes")
        .output;
    sess.finish();
    out
}

/// One session's life in the chaos round: repeated matmuls until done or
/// the first error. Returns every completed output plus the terminal
/// error, if any.
fn run_session(broker_addr: std::net::SocketAddr) -> (Vec<Vec<u8>>, Option<CudaError>) {
    let (a, b) = (mm_input(M), mm_input(M));
    let mut sess = match Session::builder()
        .deadline(DEADLINE)
        .retries(3)
        .connect(Endpoint::Broker(broker_addr))
    {
        Ok(s) => s,
        Err(e) => return (Vec::new(), Some(e)),
    };
    let clock = wall_clock();
    let mut outputs = Vec::new();
    let mut terminal = None;
    for _ in 0..ROUNDS {
        match run_matmul_bytes(&mut *sess, &*clock, M, &a, &b) {
            Ok(r) => outputs.push(r.output),
            Err(e) => {
                terminal = Some(e);
                break;
            }
        }
    }
    sess.finish();
    (outputs, terminal)
}

fn chaos_round(seed: u64, expected: &[u8]) {
    let begun = Instant::now();
    let broker = fast_broker();
    let mut daemons: Vec<(RcudaDaemon, Arc<GpuPool>)> =
        (0..3).map(|_| pool_daemon(&broker)).collect();
    assert!(
        broker.wait_for_daemons(3, Duration::from_secs(5)),
        "seed {seed}: three daemons must register"
    );

    let victim = (seed % 3) as usize;
    let kill_after = Duration::from_millis(20 + xorshift(seed) % 150);
    let broker_addr = broker.addr();

    let mut results = Vec::new();
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..SESSIONS)
            .map(|_| s.spawn(move || run_session(broker_addr)))
            .collect();
        // The seeded killer: one of the three daemons dies mid-workload.
        std::thread::sleep(kill_after);
        let (mut dead, _pool) = daemons.remove(victim);
        dead.shutdown();
        drop(dead);
        for w in workers {
            results.push(w.join().expect("session thread must not panic"));
        }
    });

    let mut completed = 0usize;
    let mut lost = 0usize;
    for (i, (outputs, terminal)) in results.iter().enumerate() {
        for out in outputs {
            assert_eq!(
                out, expected,
                "seed {seed}, session {i}: every completed matmul is bit-identical"
            );
        }
        match terminal {
            None => {
                assert_eq!(outputs.len(), ROUNDS);
                completed += 1;
            }
            Some(CudaError::SessionLost) => lost += 1,
            Some(other) => panic!(
                "seed {seed}, session {i}: only SessionLost may surface, got {other} \
                 after {} good rounds",
                outputs.len()
            ),
        }
    }
    assert_eq!(completed + lost, SESSIONS);
    assert!(
        completed >= 1,
        "seed {seed}: at least the sessions on surviving daemons complete \
         ({completed} completed, {lost} lost)"
    );
    assert!(
        begun.elapsed() < WALL_BOUND,
        "seed {seed}: chaos round exceeded the wall bound — something hung"
    );

    for (mut d, _) in daemons {
        d.shutdown();
    }
}

// ---------------------------------------------------------------- tentpole

#[test]
fn seeded_chaos_kill_one_of_three_daemons_mid_matmul() {
    let broker = fast_broker();
    let (mut d, _pool) = pool_daemon(&broker);
    assert!(broker.wait_for_daemons(1, Duration::from_secs(5)));
    let expected = baseline(&broker);
    d.shutdown();
    drop(broker);

    for seed in 0..seeds() {
        chaos_round(seed, &expected);
    }
}

#[test]
fn live_migration_moves_an_idle_session_with_zero_client_errors() {
    let broker = fast_broker();
    let (source, source_pool) = pool_daemon(&broker);
    let (target, target_pool) = pool_daemon(&broker);
    assert!(broker.wait_for_daemons(2, Duration::from_secs(5)));

    // One session, pinned down with live device state: 64 bytes of pattern.
    let mut sess = Session::builder()
        .deadline(DEADLINE)
        .retries(2)
        .connect(Endpoint::Broker(broker.addr()))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap();
    let ptr = sess.malloc(64).unwrap();
    sess.memcpy_h2d(ptr, &[0xA5u8; 64]).unwrap();
    // The session is now idle at a frame boundary.

    let token = sess.session_token().expect("broker sessions carry a token");
    // The broker learns who holds the session from heartbeats.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !source.session_tokens().contains(&token) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let (from, to, to_pool, from_pool) = if source.session_tokens().contains(&token) {
        (&source, &target, &target_pool, &source_pool)
    } else {
        assert!(target.session_tokens().contains(&token));
        (&target, &source, &source_pool, &target_pool)
    };
    let to_addr = to.local_addr().to_string();
    let wait_known = Instant::now() + Duration::from_secs(5);
    while broker.migrate(token, &to_addr).is_err() {
        assert!(
            Instant::now() < wait_known,
            "broker never learned the session's owner from heartbeats"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The order rides the owner's next heartbeat; the snapshot then ships
    // daemon-to-daemon. Wait for the handover to land.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !to.session_tokens().contains(&token) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        to.session_tokens().contains(&token),
        "session must arrive on the target daemon"
    );
    assert!(
        !from.session_tokens().contains(&token),
        "source must release its copy after the acknowledged restore"
    );
    // Ledger balance on both sides: the 64 live bytes moved with the
    // session (allocator granularity may round the charge, so compare the
    // two sides rather than assuming the raw size).
    let moved = to_pool.devices()[0].ledger().live_bytes();
    assert!(moved >= 64, "target ledger carries the allocation, {moved}");
    assert_eq!(
        from_pool.devices()[0].ledger().live_bytes(),
        0,
        "source ledger drops to zero"
    );

    // Zero client-visible errors: the next calls transparently land on the
    // target daemon (the broker leads with the session's new owner) and
    // read back the exact bytes written before the move.
    assert_eq!(sess.memcpy_d2h(ptr, 64).unwrap(), vec![0xA5u8; 64]);
    sess.free(ptr).unwrap();
    sess.finalize().unwrap();
    let reports = sess.finish();
    assert!(
        reports.iter().all(|r| r.leaked_allocations == 0),
        "no incarnation leaked"
    );

    let (mut s, mut t) = (source, target);
    s.shutdown();
    t.shutdown();
}

#[test]
fn broker_outage_degrades_to_the_cached_daemon_list() {
    // A client that has dialed through the broker once keeps working —
    // reconnect included — after the broker dies, via its last-known list.
    let mut broker = fast_broker();
    let (mut daemon, _pool) = pool_daemon(&broker);
    assert!(broker.wait_for_daemons(1, Duration::from_secs(5)));

    let mut sess = Session::builder()
        .deadline(DEADLINE)
        .retries(2)
        .connect(Endpoint::Broker(broker.addr()))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap();
    let p = sess.malloc(32).unwrap();
    sess.memcpy_h2d(p, &[7u8; 32]).unwrap();

    broker.shutdown();
    drop(broker);

    // Still-open connection keeps serving, broker or no broker.
    assert_eq!(sess.memcpy_d2h(p, 32).unwrap(), vec![7u8; 32]);
    sess.free(p).unwrap();
    sess.finalize().unwrap();
    sess.finish();
    daemon.shutdown();
}

#[test]
fn draining_daemon_migrates_sessions_out_before_hard_stop() {
    let broker = fast_broker();
    let (mut source, _source_pool) = pool_daemon(&broker);
    let (mut target, _target_pool) = pool_daemon(&broker);
    assert!(broker.wait_for_daemons(2, Duration::from_secs(5)));

    // Park a session on whichever daemon the broker picks, by address.
    let mut sess = Session::builder()
        .deadline(DEADLINE)
        .retries(2)
        .connect(Endpoint::Broker(broker.addr()))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap();
    let ptr = sess.malloc(16).unwrap();
    sess.memcpy_h2d(ptr, &[3u8; 16]).unwrap();
    let token = sess.session_token().unwrap();

    let owner_is_source = {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if source.session_tokens().contains(&token) {
                break true;
            }
            if target.session_tokens().contains(&token) {
                break false;
            }
            assert!(Instant::now() < deadline, "no daemon reported the session");
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    let (from, to) = if owner_is_source {
        (&mut source, &mut target)
    } else {
        (&mut target, &mut source)
    };

    // Drain the owner, offering the peer as a migration target: the
    // session ships out instead of being hard-stopped.
    let to_addr = to.local_addr().to_string();
    from.drain_with_migration(Duration::from_secs(5), &[to_addr]);
    assert!(
        to.session_tokens().contains(&token),
        "drained session must move to the offered target"
    );

    // The client follows it with zero visible errors.
    assert_eq!(sess.memcpy_d2h(ptr, 16).unwrap(), vec![3u8; 16]);
    sess.free(ptr).unwrap();
    sess.finalize().unwrap();
    sess.finish();

    source.shutdown();
    target.shutdown();
}
