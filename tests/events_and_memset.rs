//! The extended API surface end to end: `cudaMemset`, device-to-device
//! copies, and the event API, local and remote.

use rcuda::api::{CudaRuntime, CudaRuntimeAsyncExt};
use rcuda::core::{ArgPack, CudaError, Dim3};
use rcuda::gpu::module::build_module;
use rcuda::netsim::NetworkId;
use rcuda::session;
use rcuda::session::Endpoint;

fn both_runtimes(test: impl Fn(&mut dyn CudaRuntime)) {
    let mut local = session::local_functional();
    test(&mut local);
    let mut sess = session::Session::builder()
        .connect(Endpoint::Simulated(NetworkId::Ib40G))
        .unwrap();
    test(&mut *sess);
    sess.finish();
}

fn both_runtimes_async(test: impl Fn(&mut dyn CudaRuntimeAsyncExt)) {
    let mut local = session::local_functional();
    test(&mut local);
    let mut sess = session::Session::builder()
        .connect(Endpoint::Simulated(NetworkId::Ib40G))
        .unwrap();
    test(&mut *sess);
    sess.finish();
}

#[test]
fn memset_fills_device_memory() {
    both_runtimes(|rt| {
        rt.initialize(&build_module(&[], 0)).unwrap();
        let p = rt.malloc(64).unwrap();
        rt.memset(p, 0xAB, 64).unwrap();
        assert_eq!(rt.memcpy_d2h(p, 64).unwrap(), vec![0xAB; 64]);
        // Partial fill at an offset.
        rt.memset(p.offset(8), 0x00, 8).unwrap();
        let data = rt.memcpy_d2h(p, 24).unwrap();
        assert_eq!(&data[..8], &[0xAB; 8]);
        assert_eq!(&data[8..16], &[0x00; 8]);
        assert_eq!(&data[16..], &[0xAB; 8]);
        // Out-of-bounds memset errors.
        assert_eq!(
            rt.memset(p, 0xFF, 1 << 20),
            Err(CudaError::InvalidDevicePointer)
        );
        rt.free(p).unwrap();
        rt.finalize().unwrap();
    });
}

#[test]
fn d2d_copy_moves_data_on_the_device() {
    both_runtimes(|rt| {
        rt.initialize(&build_module(&[], 0)).unwrap();
        let a = rt.malloc(32).unwrap();
        let b = rt.malloc(32).unwrap();
        rt.memcpy_h2d(a, &(0u8..32).collect::<Vec<_>>()).unwrap();
        rt.memcpy_d2d(b, a, 32).unwrap();
        assert_eq!(rt.memcpy_d2h(b, 32).unwrap(), (0u8..32).collect::<Vec<_>>());
        // Dangling source errors.
        rt.free(a).unwrap();
        assert_eq!(
            rt.memcpy_d2d(b, a, 32),
            Err(CudaError::InvalidDevicePointer)
        );
        rt.free(b).unwrap();
        rt.finalize().unwrap();
    });
}

#[test]
fn event_lifecycle_over_the_wire() {
    both_runtimes_async(|rt| {
        rt.initialize(&build_module(&["fill"], 0)).unwrap();
        let e1 = rt.event_create().unwrap();
        let e2 = rt.event_create().unwrap();
        assert_ne!(e1, e2);

        rt.event_record(e1, 0).unwrap();
        // Some work between the records.
        let p = rt.malloc(256).unwrap();
        let args = ArgPack::new()
            .push_ptr(p)
            .push_u32(64)
            .push_f32(1.0)
            .into_bytes();
        rt.launch("fill", Dim3::x(1), Dim3::x(64), 0, 0, &args)
            .unwrap();
        rt.event_record(e2, 0).unwrap();
        rt.event_synchronize(e2).unwrap();

        let ms = rt.event_elapsed_ms(e1, e2).unwrap();
        assert!(ms >= 0.0, "elapsed {ms}");
        // Reversed order is InvalidValue (CUDA semantics) unless both
        // stamps coincide exactly.
        match rt.event_elapsed_ms(e2, e1) {
            Ok(v) => assert_eq!(v, 0.0),
            Err(e) => assert_eq!(e, CudaError::InvalidValue),
        }

        rt.event_destroy(e1).unwrap();
        assert_eq!(rt.event_destroy(e1), Err(CudaError::InvalidResourceHandle));
        // Unrecorded event: NotReady.
        let e3 = rt.event_create().unwrap();
        assert_eq!(rt.event_elapsed_ms(e3, e2), Err(CudaError::NotReady));
        rt.free(p).unwrap();
        rt.finalize().unwrap();
    });
}

#[test]
fn events_measure_simulated_kernel_time() {
    // On a virtual clock, events measure the modeled device time between
    // records — the CUDA idiom for timing kernels, working remotely.
    let mut sess = session::Session::builder()
        .phantom(true)
        .connect(Endpoint::Simulated(NetworkId::Ib40G))
        .unwrap();
    let rt = &mut *sess;
    rt.initialize(&rcuda::gpu::module::mm_module()).unwrap();
    let m = 2048u32;
    let bytes = m * m * 4;
    let pa = rt.malloc(bytes).unwrap();
    let pb = rt.malloc(bytes).unwrap();
    let pc = rt.malloc(bytes).unwrap();

    let e1 = rt.event_create().unwrap();
    let e2 = rt.event_create().unwrap();
    rt.event_record(e1, 0).unwrap();
    let args = ArgPack::new()
        .push_ptr(pa)
        .push_ptr(pb)
        .push_ptr(pc)
        .push_u32(m)
        .push_u32(m)
        .push_u32(m)
        .into_bytes();
    rt.launch("sgemmNN", Dim3::xy(32, 128), Dim3::xy(16, 4), 0, 0, &args)
        .unwrap();
    rt.event_record(e2, 0).unwrap();
    let ms = rt.event_elapsed_ms(e1, e2).unwrap();
    // 2·2048³ / 375 GFLOP/s ≈ 45.8 ms of modeled kernel time, plus the
    // simulated network time of the launch exchange (~0.06 ms on 40GI).
    assert!((ms - 45.8).abs() < 2.0, "elapsed {ms} ms");
    rt.finalize().unwrap();
    sess.finish();
}
