//! Property: the remote runtime is observationally equivalent to the local
//! one. For arbitrary (valid and invalid) operation sequences, every call
//! returns the same result — values *and* error codes — whether the GPU is
//! local or behind the simulated network. This is the middleware's
//! transparency promise (§III) as an executable property.

use proptest::prelude::*;
use rcuda::api::CudaRuntime;
use rcuda::core::{ArgPack, CudaError, DevicePtr, Dim3};
use rcuda::gpu::module::build_module;
use rcuda::netsim::NetworkId;
use rcuda::session;
use rcuda::session::Endpoint;

/// An abstract operation over a small pool of buffer slots.
#[derive(Debug, Clone)]
enum Op {
    Malloc {
        slot: usize,
        size: u32,
    },
    Free {
        slot: usize,
    },
    Write {
        slot: usize,
        offset: u32,
        data: Vec<u8>,
    },
    Read {
        slot: usize,
        offset: u32,
        len: u32,
    },
    Fill {
        slot: usize,
        count: u32,
        value: f32,
    },
    VecAdd {
        a: usize,
        b: usize,
        c: usize,
        n: u32,
    },
    Memset {
        slot: usize,
        value: u8,
        size: u32,
    },
    CopyD2D {
        dst: usize,
        src: usize,
        size: u32,
    },
}

const SLOTS: usize = 4;

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SLOTS, 4u32..4096).prop_map(|(slot, size)| Op::Malloc { slot, size }),
        (0..SLOTS).prop_map(|slot| Op::Free { slot }),
        (
            0..SLOTS,
            0u32..64,
            proptest::collection::vec(any::<u8>(), 1..128)
        )
            .prop_map(|(slot, offset, data)| Op::Write { slot, offset, data }),
        (0..SLOTS, 0u32..64, 1u32..128).prop_map(|(slot, offset, len)| Op::Read {
            slot,
            offset,
            len
        }),
        (0..SLOTS, 1u32..64, any::<f32>()).prop_map(|(slot, count, value)| Op::Fill {
            slot,
            count,
            value
        }),
        (0..SLOTS, 0..SLOTS, 0..SLOTS, 1u32..32).prop_map(|(a, b, c, n)| Op::VecAdd { a, b, c, n }),
        (0..SLOTS, any::<u8>(), 1u32..256).prop_map(|(slot, value, size)| Op::Memset {
            slot,
            value,
            size
        }),
        (0..SLOTS, 0..SLOTS, 1u32..256).prop_map(|(dst, src, size)| Op::CopyD2D { dst, src, size }),
    ]
}

/// Everything observable about one operation's outcome.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Ptr(Result<bool, CudaError>), // bool: non-null
    Unit(Result<(), CudaError>),
    Bytes(Result<Vec<u8>, CudaError>),
}

fn run_ops(rt: &mut dyn CudaRuntime, ops: &[Op]) -> Vec<Outcome> {
    rt.initialize(&build_module(&["fill", "vec_add"], 0))
        .unwrap();
    let mut slots: [DevicePtr; SLOTS] = [DevicePtr::NULL; SLOTS];
    let mut outcomes = Vec::with_capacity(ops.len());
    for op in ops {
        let outcome = match op {
            Op::Malloc { slot, size } => {
                let r = rt.malloc(*size);
                if let Ok(p) = r {
                    slots[*slot] = p;
                }
                Outcome::Ptr(r.map(|p| !p.is_null()))
            }
            Op::Free { slot } => {
                let r = rt.free(slots[*slot]);
                if r.is_ok() {
                    slots[*slot] = DevicePtr::NULL;
                }
                Outcome::Unit(r)
            }
            Op::Write { slot, offset, data } => {
                Outcome::Unit(rt.memcpy_h2d(slots[*slot].offset(*offset), data))
            }
            Op::Read { slot, offset, len } => {
                Outcome::Bytes(rt.memcpy_d2h(slots[*slot].offset(*offset), *len))
            }
            Op::Fill { slot, count, value } => {
                let args = ArgPack::new()
                    .push_ptr(slots[*slot])
                    .push_u32(*count)
                    .push_f32(*value)
                    .into_bytes();
                Outcome::Unit(rt.launch("fill", Dim3::x(1), Dim3::x(64), 0, 0, &args))
            }
            Op::VecAdd { a, b, c, n } => {
                let args = ArgPack::new()
                    .push_ptr(slots[*a])
                    .push_ptr(slots[*b])
                    .push_ptr(slots[*c])
                    .push_u32(*n)
                    .into_bytes();
                Outcome::Unit(rt.launch("vec_add", Dim3::x(1), Dim3::x(64), 0, 0, &args))
            }
            Op::Memset { slot, value, size } => {
                Outcome::Unit(rt.memset(slots[*slot], *value, *size))
            }
            Op::CopyD2D { dst, src, size } => {
                Outcome::Unit(rt.memcpy_d2d(slots[*dst], slots[*src], *size))
            }
        };
        outcomes.push(outcome);
    }
    rt.finalize().unwrap();
    outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn remote_is_observationally_equivalent_to_local(
        ops in proptest::collection::vec(arb_op(), 1..24)
    ) {
        let mut local = session::local_functional();
        let local_outcomes = run_ops(&mut local, &ops);

        let mut sess = session::Session::builder().connect(Endpoint::Simulated(NetworkId::Ib40G)).unwrap();
        let remote_outcomes = run_ops(&mut *sess, &ops);
        sess.finish();

        prop_assert_eq!(local_outcomes, remote_outcomes);
    }
}
