//! Failure injection: dead servers, vanished clients, resource exhaustion,
//! protocol misuse — and, via the deterministic [`FaultInjector`], precise
//! transport faults at chosen call sites. Everything must surface as CUDA
//! error codes or clean session ends — never hangs or crashes.
//!
//! ## The conformance table
//!
//! With pipelining off the protocol is strictly synchronous, so the fault
//! injector's message index maps one-to-one onto the matrix-multiply case
//! study's call sites:
//!
//! | index | call            |
//! |-------|-----------------|
//! | 0     | initialization  |
//! | 1–3   | cudaMalloc ×3   |
//! | 4–5   | cudaMemcpy H2D  |
//! | 6     | cudaLaunch      |
//! | 7     | cudaThreadSync  |
//! | 8     | cudaMemcpy D2H  |
//! | 9–11  | cudaFree ×3     |
//! | 12    | finalization    |
//!
//! The table crosses those sites with every fault kind and asserts the exact
//! error class and a wall-clock bound. Separately, the tentpole acceptance:
//! a connection killed mid-MM with retries enabled completes bit-identically
//! to a fault-free run, while the default fail-fast session surfaces a
//! transport error within its deadline.

use rcuda::api::{run_matmul_bytes, CudaRuntime};
use rcuda::client::{RemoteRuntime, RetryPolicy};
use rcuda::core::time::wall_clock;
use rcuda::core::{CudaError, Dim3};
use rcuda::gpu::module::build_module;
use rcuda::gpu::GpuDevice;
use rcuda::server::RcudaDaemon;
use rcuda::session::Endpoint;
use rcuda::session::{self, Session};
use rcuda::transport::{Fault, FaultInjector, FaultKind, FaultPlan, TcpTransport};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Per-call deadline used across the suite: long enough for in-process
/// round trips, short enough that stall rows finish quickly.
const DEADLINE: Duration = Duration::from_millis(150);

/// No single faulted run may take longer than this (generous; the point is
/// "bounded", not "fast").
const WALL_BOUND: Duration = Duration::from_secs(10);

fn mm_input(m: u32) -> Vec<u8> {
    (0..m * m)
        .flat_map(|i| (((i % 7) as f32) * 0.5 - 1.0).to_le_bytes())
        .collect()
}

/// Run the MM case study against a faulty channel session and return the
/// outcome plus the faults that actually fired.
fn mm_under(
    builder: session::SessionBuilder,
    plan: FaultPlan,
) -> (Result<Vec<u8>, CudaError>, Vec<Fault>) {
    let m = 8u32;
    let (a, b) = (mm_input(m), mm_input(m));
    let mut sess = builder.connect(Endpoint::ChannelFaulty(plan)).unwrap();
    let clock = wall_clock();
    let result = run_matmul_bytes(&mut *sess, &*clock, m, &a, &b).map(|r| r.output);
    let fired: Vec<Fault> = sess.fired_faults();
    sess.finish();
    (result, fired)
}

// ---------------------------------------------------------------- tentpole

#[test]
fn conformance_fault_kind_by_call_site() {
    // Call sites by message index (see the module-level table).
    let sites: &[(&str, u64)] = &[
        ("init", 0),
        ("malloc", 1),
        ("h2d", 4),
        ("launch", 6),
        ("d2h", 8),
        ("free", 9),
        ("quit", 12),
    ];
    let kinds: &[(FaultKind, CudaError)] = &[
        (FaultKind::Disconnect, CudaError::TransportConnectionLost),
        (
            FaultKind::PartialWrite { keep: 2 },
            CudaError::TransportConnectionLost,
        ),
        (
            FaultKind::PartialRead { keep: 2 },
            CudaError::TransportConnectionLost,
        ),
        (FaultKind::Stall, CudaError::TransportTimedOut),
    ];
    for &(site, index) in sites {
        for &(kind, expected) in kinds {
            let begun = Instant::now();
            let (result, fired) = mm_under(
                Session::builder().deadline(DEADLINE),
                FaultPlan::at(index, kind),
            );
            let elapsed = begun.elapsed();
            assert_eq!(
                result.as_ref().err(),
                Some(&expected),
                "{kind:?} at {site} (index {index}) must surface {expected}, got {result:?}"
            );
            assert!(
                elapsed < WALL_BOUND,
                "{kind:?} at {site} took {elapsed:?} — not bounded by the deadline"
            );
            assert_eq!(
                fired,
                vec![Fault {
                    message_index: index,
                    kind
                }],
                "exactly the scheduled fault fired at {site}"
            );
        }
    }
}

#[test]
fn disconnect_mid_mm_with_retries_is_bit_identical() {
    // Baseline: no faults.
    let (baseline, fired) = mm_under(Session::builder(), FaultPlan::none());
    let baseline = baseline.expect("fault-free MM completes");
    assert!(fired.is_empty());

    // The connection dies under the first H2D copy (index 4, idempotent):
    // with retries the call replays transparently over a resumed session.
    let m = 8u32;
    let (a, b) = (mm_input(m), mm_input(m));
    let mut sess = Session::builder()
        .deadline(Duration::from_secs(2))
        .retries(2)
        .connect(Endpoint::ChannelFaulty(FaultPlan::at(
            4,
            FaultKind::Disconnect,
        )))
        .unwrap();
    let clock = wall_clock();
    let out = run_matmul_bytes(&mut *sess, &*clock, m, &a, &b)
        .expect("MM completes despite the mid-run disconnect")
        .output;
    assert_eq!(out, baseline, "replayed run is bit-identical");
    let m = sess.metrics();
    assert_eq!(m.reconnects, 1, "exactly one reconnect");
    assert!(m.retries >= 1, "at least one call replayed");
    let reports = sess.finish();
    assert_eq!(reports.len(), 2, "two connections served the session");
    assert!(reports[0].parked, "first incarnation parked on disconnect");
    assert_eq!(reports[0].leaked_allocations, 0, "parked, not leaked");
    assert!(reports[1].resumed, "second incarnation resumed the session");
    assert!(reports[1].orderly_shutdown);
    assert_eq!(reports[1].leaked_allocations, 0);
}

#[test]
fn disconnect_mid_mm_without_retries_fails_fast() {
    // Same schedule, default fail-fast policy: the fault surfaces as a
    // transport-class error within the deadline instead of being retried.
    let begun = Instant::now();
    let (result, _) = mm_under(
        Session::builder().deadline(DEADLINE),
        FaultPlan::at(4, FaultKind::Disconnect),
    );
    let err = result.expect_err("default sessions do not retry");
    assert!(err.is_transport(), "transport-class error, got {err}");
    assert_eq!(err, CudaError::TransportConnectionLost);
    assert!(begun.elapsed() < WALL_BOUND);
}

#[test]
fn non_idempotent_calls_surface_faults_despite_retries() {
    // cudaMalloc (index 1) must NOT replay — a retry could double-allocate.
    let (result, _) = mm_under(
        Session::builder()
            .deadline(Duration::from_secs(2))
            .retries(3),
        FaultPlan::at(1, FaultKind::Disconnect),
    );
    assert_eq!(result.unwrap_err(), CudaError::TransportConnectionLost);

    // cudaLaunch (index 6) likewise — a retry could double-execute.
    let (result, _) = mm_under(
        Session::builder()
            .deadline(Duration::from_secs(2))
            .retries(3),
        FaultPlan::at(6, FaultKind::Disconnect),
    );
    assert_eq!(result.unwrap_err(), CudaError::TransportConnectionLost);
}

#[test]
fn corrupted_response_status_is_an_error_not_garbage() {
    // Flip the malloc reply's status byte: the client must report an error
    // code, never hand the application a pointer decoded from noise.
    let mut sess = Session::builder()
        .deadline(DEADLINE)
        .connect(Endpoint::ChannelFaulty(FaultPlan::at(
            1,
            FaultKind::CorruptRead {
                offset: 0,
                xor: 0xFF,
            },
        )))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap();
    assert_eq!(sess.malloc(64), Err(CudaError::Unknown));
    sess.finish();
}

#[test]
fn corrupted_batch_response_count_is_a_protocol_violation() {
    // Corrupt the first byte of the batched reply (its element count): the
    // mismatch must be rejected as a protocol violation.
    let mut sess = Session::builder()
        .pipeline(2)
        .deadline(DEADLINE)
        .connect(Endpoint::ChannelFaulty(FaultPlan::at(
            2,
            FaultKind::CorruptRead {
                offset: 0,
                xor: 0x04,
            },
        )))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap(); // index 0
    let p = sess.malloc(32).unwrap(); // index 1
    sess.memcpy_h2d(p, &[1u8; 32]).unwrap(); // deferred
    let err = sess
        .memset(p, 0, 32) // window full → batch flush, index 2
        .unwrap_err();
    assert_eq!(err, CudaError::ProtocolViolation);
    sess.finish();
}

// ----------------------------------------------------- batch flush faults

#[test]
fn idempotent_batch_replays_after_disconnect() {
    let mut sess = Session::builder()
        .pipeline(2)
        .deadline(Duration::from_secs(2))
        .retries(2)
        .connect(Endpoint::ChannelFaulty(FaultPlan::at(
            2,
            FaultKind::Disconnect,
        )))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap(); // index 0
    let p = sess.malloc(16).unwrap(); // index 1
    sess.memcpy_h2d(p, &[7u8; 16]).unwrap(); // deferred
    sess.memset(p, 9, 16).unwrap(); // drain: h2d+memset, index 2 dies
    assert_eq!(
        sess.memcpy_d2h(p, 16).unwrap(),
        vec![9u8; 16],
        "both batched writes landed exactly once on the resumed session"
    );
    assert_eq!(sess.metrics().reconnects, 1);
    sess.free(p).unwrap();
    sess.finalize().unwrap();
    let reports = sess.finish();
    assert_eq!(reports.len(), 2);
    assert!(reports[1].resumed);
}

#[test]
fn batch_containing_a_launch_does_not_replay() {
    let mut sess = Session::builder()
        .pipeline(2)
        .deadline(Duration::from_secs(2))
        .retries(2)
        .connect(Endpoint::ChannelFaulty(FaultPlan::at(
            2,
            FaultKind::Disconnect,
        )))
        .unwrap();
    sess.initialize(&build_module(&["vec_add"], 0)).unwrap(); // index 0
    let p = sess.malloc(16).unwrap(); // index 1
    sess.memcpy_h2d(p, &[1u8; 16]).unwrap(); // deferred
    let err = sess
        .launch("vec_add", Dim3::x(1), Dim3::x(1), 0, 0, &[]) // drain, dies
        .unwrap_err();
    assert_eq!(
        err,
        CudaError::TransportConnectionLost,
        "a batch with a launch is not idempotent: no replay, fault surfaces"
    );
    assert_eq!(sess.metrics().reconnects, 0);
    sess.finish();
}

// ------------------------------------------------------------ determinism

#[test]
fn same_seed_same_faults_same_outcome() {
    // Satellite (d): the seeded schedule and everything downstream of it —
    // which faults fire, in what order, and the final result — is a pure
    // function of the seed. Asserted by running the identical session twice.
    let seed = 0xA11CE;
    let run = || {
        mm_under(
            Session::builder().deadline(DEADLINE),
            FaultPlan::seeded(seed, 13, 2),
        )
    };
    let (result1, fired1) = run();
    let (result2, fired2) = run();
    assert_eq!(fired1, fired2, "same seed, same fault sequence");
    assert_eq!(result1, result2, "same seed, same final outcome");
    assert!(
        !FaultPlan::seeded(seed, 13, 2).faults().is_empty(),
        "the schedule is non-trivial"
    );
}

#[test]
fn seeded_schedules_never_hang_or_panic() {
    // Satellite (f): scripts/check.sh runs this with RCUDA_FAULT_SEEDS=3.
    // Every seed must produce a bounded, panic-free run — completing or
    // failing with a real CUDA error code, never wedging the client.
    let seeds: u64 = std::env::var("RCUDA_FAULT_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    for seed in 0..seeds {
        let begun = Instant::now();
        let (result, fired) = mm_under(
            Session::builder().deadline(DEADLINE).retries(1),
            FaultPlan::seeded(seed, 13, 3),
        );
        assert!(
            begun.elapsed() < WALL_BOUND,
            "seed {seed} exceeded the wall bound"
        );
        if let Err(e) = result {
            assert!(e.code() > 0, "seed {seed}: error has a real code, got {e}");
        }
        assert!(
            fired.len() <= 3,
            "seed {seed}: at most the scheduled faults fire"
        );
    }
}

// ------------------------------------------------------------ TCP end-to-end

#[test]
fn tcp_daemon_resumes_a_faulted_session() {
    // The same injector drives a real TcpTransport (native re-dial) against
    // a live daemon: disconnect under H2D, reconnect, resume, verify bytes.
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let transport = TcpTransport::connect(daemon.local_addr()).unwrap();
    let injector = FaultInjector::new(transport, FaultPlan::at(2, FaultKind::Disconnect));
    let mut rt = RemoteRuntime::new(injector, wall_clock());
    rt.set_deadline(Some(Duration::from_secs(5)));
    rt.set_retry_policy(RetryPolicy::retries(2));

    rt.initialize(&build_module(&[], 0)).unwrap(); // index 0
    let p = rt.malloc(64).unwrap(); // index 1
    rt.memcpy_h2d(p, &[5u8; 64]).unwrap(); // index 2: dies, replays
    assert_eq!(rt.memcpy_d2h(p, 64).unwrap(), vec![5u8; 64]);
    assert_eq!(rt.metrics().reconnects, 1);
    rt.free(p).unwrap();
    rt.finalize().unwrap();
    assert_eq!(
        daemon.parked_sessions(),
        0,
        "orderly quit leaves nothing parked"
    );
    daemon.shutdown();
}

#[test]
fn parked_session_recovers_on_next_idempotent_call() {
    // A non-idempotent fault surfaces to the application, but the session
    // itself is not lost: the parked server context resumes as soon as the
    // next replayable call triggers recovery.
    let mut sess = Session::builder()
        .deadline(Duration::from_secs(2))
        .retries(1)
        .connect(Endpoint::ChannelFaulty(FaultPlan::at(
            1,
            FaultKind::Disconnect,
        )))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap();
    // Malloc is non-idempotent: the disconnect surfaces...
    assert_eq!(sess.malloc(16), Err(CudaError::TransportConnectionLost));
    // ...but the session token is real, the first server parked the
    // context, and an idempotent call afterwards recovers the session.
    assert!(sess.session_token().is_some());
    sess.thread_synchronize().unwrap();
    assert_eq!(sess.metrics().reconnects, 1);
    sess.finalize().unwrap();
    let reports = sess.finish();
    assert_eq!(reports.len(), 2);
    assert!(reports[1].resumed);
}

// ------------------------------------------------- pre-existing coverage

#[test]
fn server_death_mid_session_surfaces_as_transport_error() {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let mut rt = session::Session::builder()
        .connect(Endpoint::Tcp(daemon.local_addr()))
        .unwrap();
    rt.initialize(&build_module(&[], 0)).unwrap();
    let p = rt.malloc(64).unwrap();
    // Kill the daemon (workers see their sockets close on shutdown only
    // when the client leaves; so emulate a dead server by dropping the
    // daemon *and* poking the worker with a bogus response path: instead,
    // shut down the OS socket from our side and observe the error).
    daemon.shutdown();
    drop(daemon);
    // The worker thread may outlive the daemon while our socket stays
    // open. Continue using the session: if the worker died this errors
    // with a transport code that names the cause (connection lost), if it
    // survived it answers — both are acceptable, but the call must not
    // hang. Free and quit:
    match rt.free(p) {
        Ok(()) => {
            rt.finalize().ok();
        }
        Err(e) => assert!(e.is_transport(), "expected a transport code, got {e}"),
    }
}

#[test]
fn oom_propagates_and_session_survives() {
    let mut sess = session::Session::builder()
        .connect(Endpoint::Simulated(rcuda::netsim::NetworkId::Ib40G))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap();
    // The device exposes slightly less than 4 GiB; ask for more in chunks
    // until exhaustion.
    let mut held = Vec::new();
    let chunk = 1u32 << 30; // 1 GiB
    let mut oom = false;
    for _ in 0..8 {
        match sess.malloc(chunk) {
            Ok(p) => held.push(p),
            Err(e) => {
                assert_eq!(e, CudaError::MemoryAllocation);
                oom = true;
                break;
            }
        }
    }
    assert!(oom, "device memory must exhaust within 8 GiB of requests");
    assert!(held.len() >= 3, "but at least 3 GiB must fit");
    // The session is still healthy: free everything and keep working.
    for p in held {
        sess.free(p).unwrap();
    }
    let p = sess.malloc(chunk).unwrap();
    sess.free(p).unwrap();
    sess.finalize().unwrap();
    let report = sess.finish_report();
    assert!(report.orderly_shutdown);
    assert_eq!(report.leaked_allocations, 0);
}

#[test]
fn garbage_after_handshake_ends_session_not_daemon() {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();
    {
        // Speak just enough protocol to get past the handshake, then spew
        // garbage function ids.
        let mut s = TcpStream::connect(addr).unwrap();
        use std::io::Read;
        let mut cc = [0u8; 8];
        s.read_exact(&mut cc).unwrap();
        // Valid empty-module init.
        let module = build_module(&[], 0);
        s.write_all(&(module.len() as u32).to_le_bytes()).unwrap();
        s.write_all(&module).unwrap();
        let mut ack = [0u8; 4];
        s.read_exact(&mut ack).unwrap();
        // Garbage request.
        s.write_all(&[0xFF; 3]).unwrap(); // truncated id
        drop(s);
    }
    // Daemon still serves real clients.
    let mut rt = session::Session::builder()
        .connect(Endpoint::Tcp(addr))
        .unwrap();
    rt.initialize(&build_module(&[], 0)).unwrap();
    assert!(rt.malloc(64).is_ok());
    rt.finalize().unwrap();
    daemon.shutdown();
}

#[test]
fn launch_of_unknown_kernel_is_an_error_code_remotely() {
    let mut sess = session::Session::builder()
        .connect(Endpoint::Simulated(rcuda::netsim::NetworkId::GigaE))
        .unwrap();
    sess.initialize(&build_module(&["vec_add"], 0)).unwrap();
    let err = sess
        .launch("sgemmNN", Dim3::x(1), Dim3::x(1), 0, 0, &[])
        .unwrap_err();
    assert_eq!(err, CudaError::InvalidDeviceFunction);
    // Session continues.
    let p = sess.malloc(16).unwrap();
    sess.free(p).unwrap();
    sess.finalize().unwrap();
    sess.finish();
}

#[test]
fn dangling_pointer_operations_error_remotely() {
    let mut sess = session::Session::builder()
        .connect(Endpoint::Simulated(rcuda::netsim::NetworkId::Ib40G))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap();
    let p = sess.malloc(128).unwrap();
    sess.free(p).unwrap();
    assert_eq!(
        sess.memcpy_h2d(p, &[1, 2, 3]),
        Err(CudaError::InvalidDevicePointer)
    );
    assert_eq!(sess.memcpy_d2h(p, 4), Err(CudaError::InvalidDevicePointer));
    assert_eq!(sess.free(p), Err(CudaError::InvalidDevicePointer));
    sess.finalize().unwrap();
    sess.finish();
}

#[test]
fn client_without_initialize_cannot_reach_the_wire() {
    let (a, _b) = rcuda::transport::channel_pair();
    let mut rt = RemoteRuntime::new(a, wall_clock());
    assert_eq!(rt.malloc(4), Err(CudaError::InitializationError));
    assert_eq!(rt.thread_synchronize(), Err(CudaError::InitializationError));
    assert_eq!(rt.finalize(), Ok(()), "finalize without init is a no-op");
}
