//! Failure injection: dead servers, vanished clients, resource exhaustion,
//! and protocol misuse must surface as CUDA error codes or clean session
//! ends — never hangs or crashes.

use rcuda::api::CudaRuntime;
use rcuda::client::RemoteRuntime;
use rcuda::core::time::wall_clock;
use rcuda::core::{CudaError, Dim3};
use rcuda::gpu::module::build_module;
use rcuda::gpu::GpuDevice;
use rcuda::server::RcudaDaemon;
use rcuda::session;
use std::io::Write;
use std::net::TcpStream;

#[test]
fn server_death_mid_session_surfaces_as_transport_error() {
    let mut daemon = RcudaDaemon::bind("127.0.0.1:0", GpuDevice::tesla_c1060_functional()).unwrap();
    let mut rt = session::Session::builder()
        .tcp(daemon.local_addr())
        .unwrap();
    rt.initialize(&build_module(&[], 0)).unwrap();
    let p = rt.malloc(64).unwrap();
    // Kill the daemon (workers see their sockets close on shutdown only
    // when the client leaves; so emulate a dead server by dropping the
    // daemon *and* poking the worker with a bogus response path: instead,
    // shut down the OS socket from our side and observe the error).
    daemon.shutdown();
    drop(daemon);
    // The worker thread may outlive the daemon while our socket stays
    // open. Continue using the session: if the worker died this errors
    // with a transport code that names the cause (connection lost), if it
    // survived it answers — both are acceptable, but the call must not
    // hang. Free and quit:
    match rt.free(p) {
        Ok(()) => {
            rt.finalize().ok();
        }
        Err(e) => assert!(e.is_transport(), "expected a transport code, got {e}"),
    }
}

#[test]
fn oom_propagates_and_session_survives() {
    let mut sess = session::Session::builder().simulated(rcuda::netsim::NetworkId::Ib40G);
    sess.runtime.initialize(&build_module(&[], 0)).unwrap();
    // The device exposes slightly less than 4 GiB; ask for more in chunks
    // until exhaustion.
    let mut held = Vec::new();
    let chunk = 1u32 << 30; // 1 GiB
    let mut oom = false;
    for _ in 0..8 {
        match sess.runtime.malloc(chunk) {
            Ok(p) => held.push(p),
            Err(e) => {
                assert_eq!(e, CudaError::MemoryAllocation);
                oom = true;
                break;
            }
        }
    }
    assert!(oom, "device memory must exhaust within 8 GiB of requests");
    assert!(held.len() >= 3, "but at least 3 GiB must fit");
    // The session is still healthy: free everything and keep working.
    for p in held {
        sess.runtime.free(p).unwrap();
    }
    let p = sess.runtime.malloc(chunk).unwrap();
    sess.runtime.free(p).unwrap();
    sess.runtime.finalize().unwrap();
    let report = sess.finish();
    assert!(report.orderly_shutdown);
    assert_eq!(report.leaked_allocations, 0);
}

#[test]
fn garbage_after_handshake_ends_session_not_daemon() {
    let mut daemon = RcudaDaemon::bind("127.0.0.1:0", GpuDevice::tesla_c1060_functional()).unwrap();
    let addr = daemon.local_addr();
    {
        // Speak just enough protocol to get past the handshake, then spew
        // garbage function ids.
        let mut s = TcpStream::connect(addr).unwrap();
        use std::io::Read;
        let mut cc = [0u8; 8];
        s.read_exact(&mut cc).unwrap();
        // Valid empty-module init.
        let module = build_module(&[], 0);
        s.write_all(&(module.len() as u32).to_le_bytes()).unwrap();
        s.write_all(&module).unwrap();
        let mut ack = [0u8; 4];
        s.read_exact(&mut ack).unwrap();
        // Garbage request.
        s.write_all(&[0xFF; 3]).unwrap(); // truncated id
        drop(s);
    }
    // Daemon still serves real clients.
    let mut rt = session::Session::builder().tcp(addr).unwrap();
    rt.initialize(&build_module(&[], 0)).unwrap();
    assert!(rt.malloc(64).is_ok());
    rt.finalize().unwrap();
    daemon.shutdown();
}

#[test]
fn launch_of_unknown_kernel_is_an_error_code_remotely() {
    let mut sess = session::Session::builder().simulated(rcuda::netsim::NetworkId::GigaE);
    sess.runtime
        .initialize(&build_module(&["vec_add"], 0))
        .unwrap();
    let err = sess
        .runtime
        .launch("sgemmNN", Dim3::x(1), Dim3::x(1), 0, 0, &[])
        .unwrap_err();
    assert_eq!(err, CudaError::InvalidDeviceFunction);
    // Session continues.
    let p = sess.runtime.malloc(16).unwrap();
    sess.runtime.free(p).unwrap();
    sess.runtime.finalize().unwrap();
    sess.finish();
}

#[test]
fn dangling_pointer_operations_error_remotely() {
    let mut sess = session::Session::builder().simulated(rcuda::netsim::NetworkId::Ib40G);
    sess.runtime.initialize(&build_module(&[], 0)).unwrap();
    let p = sess.runtime.malloc(128).unwrap();
    sess.runtime.free(p).unwrap();
    assert_eq!(
        sess.runtime.memcpy_h2d(p, &[1, 2, 3]),
        Err(CudaError::InvalidDevicePointer)
    );
    assert_eq!(
        sess.runtime.memcpy_d2h(p, 4),
        Err(CudaError::InvalidDevicePointer)
    );
    assert_eq!(sess.runtime.free(p), Err(CudaError::InvalidDevicePointer));
    sess.runtime.finalize().unwrap();
    sess.finish();
}

#[test]
fn client_without_initialize_cannot_reach_the_wire() {
    let (a, _b) = rcuda::transport::channel_pair();
    let mut rt = RemoteRuntime::new(a, wall_clock());
    assert_eq!(rt.malloc(4), Err(CudaError::InitializationError));
    assert_eq!(rt.thread_synchronize(), Err(CudaError::InitializationError));
    assert_eq!(rt.finalize(), Ok(()), "finalize without init is a no-op");
}
