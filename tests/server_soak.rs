//! Chaos soak: a mixed population of concurrent clients — well-behaved,
//! leaky, panicking (via the test-only [`ChaosHook`]), and transport-faulted
//! — hammers one TCP daemon, per seed. The daemon must shrug all of it off:
//!
//! * a fresh well-behaved client afterwards completes the matrix-multiply
//!   case study **bit-identically** to an undisturbed baseline;
//! * after [`RcudaDaemon::drain`] the device memory ledger is back at its
//!   baseline — every leaked, parked, and panicked session's allocations
//!   were reclaimed;
//! * the admission ledger balances: `rejected + served == attempted`, and
//!   every admitted worker finished;
//! * the daemon's [`DaemonEvent`] stream agrees with its [`DaemonHealth`]
//!   counters — nothing was dropped or double-counted.
//!
//! `scripts/check.sh` runs this with `RCUDA_FAULT_SEEDS=3`.

use rcuda::api::{run_matmul_bytes, CudaRuntime};
use rcuda::client::{RemoteRuntime, RetryPolicy};
use rcuda::core::time::wall_clock;
use rcuda::core::CudaError;
use rcuda::gpu::module::build_module;
use rcuda::gpu::GpuDevice;
use rcuda::obs::{DaemonEvent, Recorder};
use rcuda::proto::Request;
use rcuda::server::{ChaosHook, RcudaDaemon, ServerConfig};
use rcuda::session::Endpoint;
use rcuda::session::Session;
use rcuda::transport::{FaultInjector, FaultPlan, TcpTransport};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Matrix edge for the MM case study (small: the soak is about contention,
/// not bandwidth).
const M: u32 = 8;

/// Per-call deadline for soak clients: generous enough for a loaded
/// machine, short enough to bound a wedged run.
const DEADLINE: Duration = Duration::from_secs(2);

/// Per-session device-memory quota during the soak.
const QUOTA: u64 = 1 << 20; // 1 MiB

/// A malloc of this size trips the armed [`ChaosHook`] into panicking on
/// the worker thread — no production dispatch path can panic on demand, so
/// the soak smuggles the trigger in-band through an otherwise-valid size.
const CHAOS_MALLOC: u32 = 0xDEAD;

/// No single seed's soak may take longer than this.
const WALL_BOUND: Duration = Duration::from_secs(60);

fn mm_input(m: u32) -> Vec<u8> {
    (0..m * m)
        .flat_map(|i| (((i % 7) as f32) * 0.5 - 1.0).to_le_bytes())
        .collect()
}

/// The undisturbed MM output, from an in-process channel session.
fn baseline_output() -> Vec<u8> {
    let (a, b) = (mm_input(M), mm_input(M));
    let mut sess = Session::builder().connect(Endpoint::Channel).unwrap();
    let clock = wall_clock();
    let out = run_matmul_bytes(&mut *sess, &*clock, M, &a, &b)
        .expect("baseline MM completes")
        .output;
    sess.finish();
    out
}

// --------------------------------------------------------- client species

/// Runs the full MM case study and insists on the baseline answer.
fn well_behaved(addr: SocketAddr, baseline: &[u8]) {
    let (a, b) = (mm_input(M), mm_input(M));
    let mut rt = Session::builder()
        .deadline(DEADLINE)
        .retries(12)
        .connect(Endpoint::Tcp(addr))
        .expect("dial");
    let clock = wall_clock();
    let out = run_matmul_bytes(&mut *rt, &*clock, M, &a, &b)
        .expect("well-behaved MM completes despite the chaos around it")
        .output;
    assert_eq!(out, baseline, "soaked daemon still computes the baseline");
}

/// Allocates, writes, and vanishes without a Quit. With `resumable` the
/// session parks server-side (reclaimed at drain); without, the worker
/// reclaims it the moment the socket dies.
fn leaky(addr: SocketAddr, resumable: bool) {
    let builder = Session::builder().deadline(DEADLINE);
    let builder = if resumable {
        builder.retries(12)
    } else {
        builder
    };
    let mut rt = match builder.connect(Endpoint::Tcp(addr)) {
        Ok(rt) => rt,
        Err(_) => return, // shed at dial time: nothing to leak
    };
    if rt.initialize(&build_module(&[], 0)).is_err() {
        return; // shed at admission: nothing to leak
    }
    for _ in 0..3 {
        if let Ok(p) = rt.malloc(4096) {
            let _ = rt.memcpy_h2d(p, &[0xAB; 4096]);
        }
    }
    // No free, no finalize: drop the socket with allocations live.
}

/// Trips the server-side chaos hook: the dispatch panics, the worker
/// answers a correctly-shaped `cudaErrorLaunchFailure`, and only this
/// session dies.
fn panicking(addr: SocketAddr) {
    let mut rt = Session::builder()
        .deadline(DEADLINE)
        .retries(12)
        .connect(Endpoint::Tcp(addr))
        .expect("dial");
    rt.initialize(&build_module(&[], 0))
        .expect("panicking client is admitted before it misbehaves");
    assert_eq!(
        rt.malloc(CHAOS_MALLOC),
        Err(CudaError::LaunchFailure),
        "a dispatch panic surfaces as a launch failure, not a hang"
    );
}

/// Overshoots the per-session quota, then recovers within it.
fn greedy(addr: SocketAddr) {
    let mut rt = Session::builder()
        .deadline(DEADLINE)
        .retries(12)
        .connect(Endpoint::Tcp(addr))
        .expect("dial");
    rt.initialize(&build_module(&[], 0)).expect("admitted");
    assert_eq!(
        rt.malloc((QUOTA + 1) as u32),
        Err(CudaError::MemoryAllocation),
        "over-quota malloc is refused"
    );
    let p = rt.malloc(1024).expect("the session survives its refusal");
    rt.free(p).expect("free");
    rt.finalize().expect("orderly quit");
}

/// Runs MM through a seeded [`FaultInjector`]: the outcome may be success
/// (faults retried away) or a clean CUDA error — never a panic or a hang.
fn faulted(addr: SocketAddr, seed: u64) {
    let transport = match TcpTransport::connect(addr) {
        Ok(t) => t,
        Err(_) => return,
    };
    let injector = FaultInjector::new(transport, FaultPlan::seeded(seed, 13, 2));
    let mut rt = RemoteRuntime::new(injector, wall_clock());
    rt.set_deadline(Some(DEADLINE));
    rt.set_retry_policy(RetryPolicy::retries(4));
    let (a, b) = (mm_input(M), mm_input(M));
    let clock = wall_clock();
    if let Err(e) = run_matmul_bytes(&mut rt, &*clock, M, &a, &b) {
        assert!(e.code() > 0, "faulted run fails with a real code, got {e}");
    }
}

// ----------------------------------------------------------------- the soak

fn soak_one_seed(seed: u64, baseline: &[u8]) {
    let begun = Instant::now();
    let device = GpuDevice::tesla_c1060_functional();
    let ledger = std::sync::Arc::clone(device.ledger());
    let ledger_baseline = ledger.live_bytes();

    let recorder = Recorder::new();
    let config = ServerConfig {
        max_sessions: Some(6),
        // High enough that the soak's parked sessions (leaky + abandoned
        // faulted) never wedge admission; the parked-shedding and eviction
        // paths have their own unit tests.
        max_parked: Some(8),
        session_mem_quota: Some(QUOTA),
        busy_retry_after_ms: 5,
        observer: recorder.handle(),
        chaos: ChaosHook::new(|req| {
            if matches!(req, Request::Malloc { size } if *size == CHAOS_MALLOC) {
                panic!("chaos hook: injected dispatch panic");
            }
        }),
        ..Default::default()
    };
    let mut daemon = RcudaDaemon::builder()
        .device(device)
        .config(config)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || well_behaved(addr, baseline));
        }
        s.spawn(move || leaky(addr, true));
        s.spawn(move || leaky(addr, true));
        s.spawn(move || leaky(addr, false));
        s.spawn(move || panicking(addr));
        s.spawn(move || panicking(addr));
        s.spawn(move || greedy(addr));
        s.spawn(move || faulted(addr, seed.wrapping_mul(31).wrapping_add(1)));
        s.spawn(move || faulted(addr, seed.wrapping_mul(31).wrapping_add(2)));
    });

    // Invariant 1: after the storm, a fresh well-behaved session gets the
    // bit-identical baseline answer.
    well_behaved(addr, baseline);

    // Invariant 2: drain joins every worker within its deadline and
    // reclaims everything parked.
    let drained = daemon.drain(Duration::from_secs(10));
    let health = daemon.health();
    assert_eq!(health.live_sessions, 0, "seed {seed}: all workers joined");
    assert_eq!(
        daemon.parked_sessions(),
        0,
        "seed {seed}: drain reclaimed every parked session"
    );
    assert!(
        drained.graceful + drained.forced > 0 || health.served > 0,
        "seed {seed}: the daemon did serve"
    );

    // Invariant 3: the device memory ledger is back at baseline — leaky,
    // panicked, evicted, and parked allocations all came back.
    assert_eq!(
        ledger.live_bytes(),
        ledger_baseline,
        "seed {seed}: device memory returned to baseline after drain"
    );

    // Invariant 4: the admission ledger balances.
    assert_eq!(
        health.rejected + health.served,
        health.attempted,
        "seed {seed}: every accepted connection was either shed or served"
    );
    assert_eq!(
        health.admitted, health.served,
        "seed {seed}: every admitted worker finished"
    );
    assert_eq!(
        health.panics, 2,
        "seed {seed}: exactly the two chaos panics"
    );
    assert!(
        health.reclaimed_bytes >= 3 * 4096,
        "seed {seed}: at least the leaky clients' bytes were reclaimed"
    );

    // Invariant 5: the observer's daemon-event stream agrees with the
    // health counters — admission and reclamation are not double-booked.
    let events = recorder.report().daemon_events;
    let rejected_events = events
        .iter()
        .filter(|e| matches!(e, DaemonEvent::SessionRejected { .. }))
        .count() as u64;
    let panic_events = events
        .iter()
        .filter(|e| matches!(e, DaemonEvent::SessionPanicked))
        .count() as u64;
    let reclaimed_event_bytes: u64 = events
        .iter()
        .filter_map(|e| match e {
            DaemonEvent::BytesReclaimed { bytes } => Some(*bytes),
            _ => None,
        })
        .sum();
    assert_eq!(rejected_events, health.rejected, "seed {seed}");
    assert_eq!(panic_events, health.panics, "seed {seed}");
    assert_eq!(
        reclaimed_event_bytes, health.reclaimed_bytes,
        "seed {seed}: every reclaimed byte was announced exactly once"
    );

    assert!(
        begun.elapsed() < WALL_BOUND,
        "seed {seed}: soak exceeded its wall bound"
    );
}

#[test]
fn chaos_soak_across_seeds() {
    let seeds: u64 = std::env::var("RCUDA_FAULT_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let baseline = baseline_output();
    for seed in 0..seeds {
        soak_one_seed(seed, &baseline);
    }
}
