//! The zero-copy data plane's contract, proven with a counting allocator:
//! a steady-state memcpy round trip — H2D, kernel launch, D2H straight into
//! a caller buffer — touches the heap **zero** times per iteration.
//!
//! Client and server both run in this process against real loopback TCP, so
//! one `#[global_allocator]` counter covers both hot paths at once: the
//! client's borrowed vectored-write sends and `memcpy_d2h_into` receives,
//! and the server's pooled request decode, in-place `fill` kernel, and
//! pooled D2H reply staging. The warmup iterations grow every amortized
//! buffer (trace vectors, pool classes, BufWriter/BufReader) to capacity;
//! after that, any allocation inside the measured window is a regression.
//!
//! Two payload sizes pin down both transport branches: 4 KiB rides the
//! buffered (coalesced) vectored write, 128 KiB crosses
//! `VECTORED_WRITE_MIN` and takes the raw `write_vectored` path.

use rcuda::api::CudaRuntime;
use rcuda::client::RemoteRuntime;
use rcuda::core::time::wall_clock;
use rcuda::core::{ArgPack, Dim3};
use rcuda::gpu::module::build_module;
use rcuda::gpu::GpuDevice;
use rcuda::server::RcudaDaemon;
use rcuda::session::{Endpoint, Session};
use rcuda::transport::{TcpTransport, Transport};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Iterations that grow trace buffers and warm every pool class.
const WARMUP: usize = 32;
/// Iterations inside the counted window.
const MEASURED: usize = 8;

/// One round trip: upload `data`, overwrite the region with `fill`, read it
/// back into `out`. Everything here must be allocation-free at steady state.
fn round_trip<T: Transport>(
    rt: &mut RemoteRuntime<T>,
    dev: rcuda::core::DevicePtr,
    data: &[u8],
    args: &[u8],
    out: &mut [u8],
) {
    rt.memcpy_h2d(dev, data).unwrap();
    rt.launch("fill", Dim3::x(1), Dim3::x(64), 0, 0, args)
        .unwrap();
    rt.memcpy_d2h_into(dev, out).unwrap();
}

#[test]
fn memcpy_round_trip_is_allocation_free_at_steady_state() {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let transport = TcpTransport::connect(daemon.local_addr()).unwrap();
    let mut rt = RemoteRuntime::new(transport, wall_clock());
    rt.initialize(&build_module(&["fill"], 0)).unwrap();

    // 4 KiB stays under VECTORED_WRITE_MIN (buffered write), 128 KiB
    // crosses it (raw vectored write).
    for size in [4 * 1024usize, 128 * 1024] {
        let n = (size / 4) as u32;
        let dev = rt.malloc(size as u32).unwrap();
        let data = vec![0x5au8; size];
        let mut out = vec![0u8; size];
        let args = ArgPack::new().push_ptr(dev).push_u32(n).push_f32(2.5);
        let expected: Vec<u8> = 2.5f32
            .to_le_bytes()
            .iter()
            .copied()
            .cycle()
            .take(size)
            .collect();

        for _ in 0..WARMUP {
            round_trip(&mut rt, dev, &data, args.as_bytes(), &mut out);
        }
        assert_eq!(out, expected, "fill result wrong before measuring");

        let before = allocations();
        for _ in 0..MEASURED {
            round_trip(&mut rt, dev, &data, args.as_bytes(), &mut out);
            assert!(out == expected, "fill result wrong inside window");
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "steady-state memcpy round trip allocated ({delta} allocations \
             over {MEASURED} iterations at {size} bytes)"
        );

        rt.free(dev).unwrap();
    }

    // The pools actually carried the traffic: the client staged launch
    // regions, the server staged H2D payloads, launch regions, and D2H
    // replies, and at steady state every fetch was a recycle.
    let stats = rt.pool_stats();
    assert!(stats.hits > 0, "client pool never recycled: {stats:?}");
    assert!(
        stats.hits >= 8 * stats.misses,
        "client pool mostly missed: {stats:?}"
    );

    rt.finalize().unwrap();
    drop(rt);
    assert!(daemon.wait_for_sessions(1, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    let reports = daemon.session_reports();
    assert_eq!(reports[0].leaked_allocations, 0);
    assert!(
        reports[0].pool.hits >= 8 * reports[0].pool.misses,
        "server pool mostly missed: {:?}",
        reports[0].pool
    );
}

/// The same steady-state contract with the wire codec forced on: LZ4
/// scratch on both sides must come from the same pools as payload staging
/// (compress on the client's H2D sends and the server's D2H replies,
/// decompress into pooled/caller buffers on the receiving ends), so a
/// compressed round trip still touches the heap zero times per iteration.
#[test]
fn codec_memcpy_round_trip_is_allocation_free_at_steady_state() {
    use rcuda::proto::CodecMode;

    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let transport = TcpTransport::connect(daemon.local_addr()).unwrap();
    let mut rt = RemoteRuntime::new(transport, wall_clock());
    rt.set_codec(true);
    rt.set_codec_mode(CodecMode::Always);
    rt.initialize(&build_module(&["fill"], 0)).unwrap();
    assert!(rt.codec_active(), "daemon must advertise the codec");

    for size in [4 * 1024usize, 128 * 1024] {
        let n = (size / 4) as u32;
        let dev = rt.malloc(size as u32).unwrap();
        // Repetitive payload: the encoder genuinely compresses, so the
        // measured window exercises the LZ4 scratch path, not a decline.
        let data = vec![0x5au8; size];
        let mut out = vec![0u8; size];
        let args = ArgPack::new().push_ptr(dev).push_u32(n).push_f32(2.5);
        let expected: Vec<u8> = 2.5f32
            .to_le_bytes()
            .iter()
            .copied()
            .cycle()
            .take(size)
            .collect();

        for _ in 0..WARMUP {
            round_trip(&mut rt, dev, &data, args.as_bytes(), &mut out);
        }
        assert_eq!(out, expected, "fill result wrong before measuring");

        let before = allocations();
        for _ in 0..MEASURED {
            round_trip(&mut rt, dev, &data, args.as_bytes(), &mut out);
            assert!(out == expected, "fill result wrong inside window");
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "steady-state compressed round trip allocated ({delta} \
             allocations over {MEASURED} iterations at {size} bytes)"
        );

        rt.free(dev).unwrap();
    }

    let stats = rt.codec_stats().expect("codec enabled");
    assert!(
        stats.compressed > 0,
        "payloads must have compressed: {stats:?}"
    );
    assert!(stats.ratio() < 0.5, "0x5a bytes compress well: {stats:?}");

    rt.finalize().unwrap();
    drop(rt);
    assert!(daemon.wait_for_sessions(1, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    let reports = daemon.session_reports();
    assert_eq!(reports[0].leaked_allocations, 0);
}

/// The same steady-state contract over the multiplexed transport: framing,
/// credit flow control, and the demux engine must all ride pooled buffers.
#[test]
fn muxed_memcpy_round_trip_is_allocation_free_at_steady_state() {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let mut sess = Session::builder()
        .mux(true)
        .connect(Endpoint::Tcp(daemon.local_addr()))
        .unwrap();
    sess.initialize(&build_module(&["fill"], 0)).unwrap();

    // 4 KiB is a single sub-CHUNK frame; 128 KiB spans multiple 64 KiB
    // chunks, exercising chunking and credit refresh on both directions.
    for size in [4 * 1024usize, 128 * 1024] {
        let n = (size / 4) as u32;
        let dev = sess.malloc(size as u32).unwrap();
        let data = vec![0x5au8; size];
        let mut out = vec![0u8; size];
        let args = ArgPack::new().push_ptr(dev).push_u32(n).push_f32(2.5);
        let expected: Vec<u8> = 2.5f32
            .to_le_bytes()
            .iter()
            .copied()
            .cycle()
            .take(size)
            .collect();

        for _ in 0..WARMUP {
            round_trip(&mut sess, dev, &data, args.as_bytes(), &mut out);
        }
        assert_eq!(out, expected, "fill result wrong before measuring");

        let before = allocations();
        for _ in 0..MEASURED {
            round_trip(&mut sess, dev, &data, args.as_bytes(), &mut out);
            assert!(out == expected, "fill result wrong inside window");
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "steady-state muxed round trip allocated ({delta} allocations \
             over {MEASURED} iterations at {size} bytes)"
        );

        sess.free(dev).unwrap();
    }

    sess.finalize().unwrap();
    sess.finish();
    assert!(daemon.wait_for_sessions(1, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    let reports = daemon.session_reports();
    assert_eq!(reports.len(), 1, "one sub-stream session served");
    assert_eq!(reports[0].leaked_allocations, 0);
}
