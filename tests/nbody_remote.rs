//! The N-body extension workload through the full middleware: remote
//! results identical to local, and the compute/transfer ratio story
//! (O(n²) flops on O(n) bytes makes it the most remoting-friendly of the
//! three workload families).

use rcuda::api::run_nbody_bytes;
use rcuda::core::time::wall_clock;
use rcuda::core::Clock as _;
use rcuda::kernels::nbody::{nbody_accelerations, nbody_input};
use rcuda::netsim::NetworkId;
use rcuda::session;
use rcuda::session::Endpoint;

fn f32s(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

#[test]
fn nbody_remote_equals_local_reference() {
    let n = 48u32;
    let bodies = nbody_input(n as usize, 17);
    let clock = wall_clock();

    let mut expect = vec![0.0f32; 3 * n as usize];
    nbody_accelerations(&bodies, &mut expect, 0.02);

    for net in [NetworkId::GigaE, NetworkId::Ib40G] {
        let mut sess = session::Session::builder()
            .connect(Endpoint::Simulated(net))
            .unwrap();
        let report = run_nbody_bytes(&mut *sess, &*clock, n, &f32s(&bodies), 0.02).unwrap();
        assert_eq!(report.output, f32s(&expect), "{net}");
        let r = sess.finish_report();
        assert!(r.orderly_shutdown);
        assert_eq!(r.leaked_allocations, 0);
    }
}

#[test]
fn nbody_is_the_most_network_insensitive_workload() {
    // Simulated at scale: an n-body step moves 28·n bytes but computes
    // 20·n² flops, so GigaE vs A-HT should differ far less for N-body than
    // for MM at comparable kernel times.
    let run = |net: NetworkId| -> f64 {
        let n = 65_536u32;
        let bytes = vec![0u8; (16 * n) as usize];
        let mut sess = session::Session::builder()
            .phantom(true)
            .connect(Endpoint::Simulated(net))
            .unwrap();
        let clock = sess.clock().clone();
        run_nbody_bytes(&mut *sess, &*clock, n, &bytes, 0.01).unwrap();
        let t = sess.clock().now().as_secs_f64();
        sess.finish();
        t
    };
    let gigae = run(NetworkId::GigaE);
    let aht = run(NetworkId::AsicHt);
    let nbody_ratio = gigae / aht;
    assert!(
        nbody_ratio < 1.3,
        "n-body should barely notice the network: ratio {nbody_ratio}"
    );

    // MM with a similar kernel time (~0.23 s → m ≈ 3500) is far more
    // sensitive on GigaE.
    let run_mm = |net: NetworkId| -> f64 {
        let m = 3584u32;
        let bytes = vec![0u8; (m * m * 4) as usize];
        let mut sess = session::Session::builder()
            .phantom(true)
            .connect(Endpoint::Simulated(net))
            .unwrap();
        let clock = sess.clock().clone();
        rcuda::api::run_matmul_bytes(&mut *sess, &*clock, m, &bytes, &bytes).unwrap();
        let t = sess.clock().now().as_secs_f64();
        sess.finish();
        t
    };
    let mm_ratio = run_mm(NetworkId::GigaE) / run_mm(NetworkId::AsicHt);
    assert!(
        mm_ratio > nbody_ratio * 1.5,
        "MM ({mm_ratio}) must be more network-sensitive than n-body ({nbody_ratio})"
    );
}
