//! Deferred-completion pipelining, end to end: the batched submission path
//! must change *when* requests cross the network — never *what* the
//! application observes. Both case studies run pipelined over simulated and
//! real-TCP transports and must produce output bit-identical to the per-call
//! protocol and to local execution, while issuing measurably fewer flushes
//! (the ablation evidence: ≥ 2× fewer for the FFT case study at depth ≥ 4).

use rcuda::api::{run_fft_bytes, run_matmul_bytes};
use rcuda::core::time::wall_clock;
use rcuda::gpu::GpuDevice;
use rcuda::kernels::complex::complex_to_bytes;
use rcuda::kernels::workload::{fft_input, matrix_pair};
use rcuda::netsim::NetworkId;
use rcuda::server::RcudaDaemon;
use rcuda::session::Endpoint;
use rcuda::session::{self, Session};

fn f32s(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

#[test]
fn pipelined_fft_is_bit_identical_and_halves_the_flushes() {
    let batch = 8u32;
    let input = complex_to_bytes(&fft_input(batch as usize, 31));
    let clock = wall_clock();

    let mut local = session::local_functional();
    let local_out = run_fft_bytes(&mut local, &*clock, batch, &input)
        .unwrap()
        .output;

    let mut per_call = Session::builder()
        .connect(Endpoint::Simulated(NetworkId::GigaE))
        .unwrap();
    let sync_out = run_fft_bytes(&mut *per_call, &*clock, batch, &input)
        .unwrap()
        .output;
    let sync_flushes = per_call.metrics().messages_sent;
    per_call.finish();

    let mut pipelined = Session::builder()
        .pipeline(4)
        .connect(Endpoint::Simulated(NetworkId::GigaE))
        .unwrap();
    let pipe_out = run_fft_bytes(&mut *pipelined, &*clock, batch, &input)
        .unwrap()
        .output;
    let pipe_flushes = pipelined.metrics().messages_sent;
    let report = pipelined.finish_report();

    assert_eq!(sync_out, local_out, "per-call remote must equal local");
    assert_eq!(pipe_out, local_out, "pipelined remote must equal local");
    assert!(
        sync_flushes >= 2 * pipe_flushes,
        "depth 4 must remove ≥ half the flushes: {pipe_flushes} vs {sync_flushes}"
    );
    assert!(report.orderly_shutdown);
    assert_eq!(report.leaked_allocations, 0);
}

#[test]
fn pipelined_matmul_is_bit_identical_with_fewer_flushes() {
    let m = 32u32;
    let (a, b) = matrix_pair(m as usize, 17);
    let (a, b) = (f32s(a.as_slice()), f32s(b.as_slice()));
    let clock = wall_clock();

    let mut local = session::local_functional();
    let local_out = run_matmul_bytes(&mut local, &*clock, m, &a, &b)
        .unwrap()
        .output;

    let mut per_call = Session::builder()
        .connect(Endpoint::Simulated(NetworkId::Ib40G))
        .unwrap();
    let sync_out = run_matmul_bytes(&mut *per_call, &*clock, m, &a, &b)
        .unwrap()
        .output;
    let sync_flushes = per_call.metrics().messages_sent;
    per_call.finish();

    let mut pipelined = Session::builder()
        .pipeline(4)
        .connect(Endpoint::Simulated(NetworkId::Ib40G))
        .unwrap();
    let pipe_out = run_matmul_bytes(&mut *pipelined, &*clock, m, &a, &b)
        .unwrap()
        .output;
    let pipe_flushes = pipelined.metrics().messages_sent;
    pipelined.finish();

    assert_eq!(sync_out, local_out);
    assert_eq!(pipe_out, local_out);
    assert!(
        pipe_flushes < sync_flushes,
        "pipelining must issue strictly fewer flushes: {pipe_flushes} vs {sync_flushes}"
    );
}

#[test]
fn pipelined_fft_over_tcp_equals_local() {
    let batch = 4u32;
    let input = complex_to_bytes(&fft_input(batch as usize, 23));
    let clock = wall_clock();

    let mut local = session::local_functional();
    let local_out = run_fft_bytes(&mut local, &*clock, batch, &input)
        .unwrap()
        .output;

    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();

    let mut sync_rt = Session::builder()
        .connect(Endpoint::Tcp(daemon.local_addr()))
        .unwrap();
    let sync_out = run_fft_bytes(&mut *sync_rt, &*clock, batch, &input)
        .unwrap()
        .output;
    let sync_flushes = sync_rt.metrics().messages_sent;
    drop(sync_rt);

    let mut pipe_rt = Session::builder()
        .pipeline(4)
        .connect(Endpoint::Tcp(daemon.local_addr()))
        .unwrap();
    let pipe_out = run_fft_bytes(&mut *pipe_rt, &*clock, batch, &input)
        .unwrap()
        .output;
    let pipe_flushes = pipe_rt.metrics().messages_sent;
    drop(pipe_rt);

    assert_eq!(sync_out, local_out);
    assert_eq!(pipe_out, local_out);
    assert!(
        sync_flushes >= 2 * pipe_flushes,
        "TCP: depth 4 must remove ≥ half the flushes: {pipe_flushes} vs {sync_flushes}"
    );

    assert!(daemon.wait_for_sessions(2, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    let reports = daemon.session_reports();
    assert_eq!(reports.len(), 2);
    for report in &reports {
        assert!(report.orderly_shutdown);
        assert_eq!(report.leaked_allocations, 0);
    }
}

#[test]
fn pipelined_depth_sweep_is_deterministic() {
    // Whatever the window depth, the application-visible bytes never change.
    let batch = 4u32;
    let input = complex_to_bytes(&fft_input(batch as usize, 3));
    let clock = wall_clock();

    let mut local = session::local_functional();
    let expected = run_fft_bytes(&mut local, &*clock, batch, &input)
        .unwrap()
        .output;

    let mut last_flushes = u64::MAX;
    for depth in [0usize, 1, 2, 4, 8, 64] {
        let mut sess = Session::builder()
            .pipeline(depth)
            .connect(Endpoint::Simulated(NetworkId::GigaE))
            .unwrap();
        let out = run_fft_bytes(&mut *sess, &*clock, batch, &input)
            .unwrap()
            .output;
        let flushes = sess.metrics().messages_sent;
        sess.finish();
        assert_eq!(out, expected, "depth {depth}");
        assert!(
            flushes <= last_flushes,
            "deeper windows never flush more: depth {depth} took {flushes}, \
             shallower took {last_flushes}"
        );
        last_flushes = flushes;
    }
}
