//! End-to-end validation of the AI-inference workload suite.
//!
//! * the closed-loop §V harness runs both validation loops (simulated
//!   cross-network and loopback TCP) and every row's relative error lands
//!   inside its bound;
//! * conformance: the softmax/layernorm kernels are bit-identical between
//!   the host reference and the simulated / in-process remote backends
//!   across edge shapes (1×1, non-power-of-two rows, denormal inputs);
//! * property: the Poisson traffic generator is deterministic per seed;
//! * the traffic personas replay cleanly against the sharded reactor
//!   daemon through `connect_in_process`.

use std::sync::Arc;

use proptest::prelude::*;
use rcuda::api::CudaRuntime;
use rcuda::client::RemoteRuntime;
use rcuda::core::time::wall_clock;
use rcuda::core::{ArgPack, Dim3};
use rcuda::gpu::module::build_module;
use rcuda::kernels::{layernorm_rows, softmax_rows};
use rcuda::netsim::NetworkId;
use rcuda::obs::ObsHandle;
use rcuda::workloads::{
    build_schedule, channel_session, replay_closed_loop, run_sim_rows, run_suite, sim_session,
    Persona, SuiteConfig, TrafficConfig,
};
use rcuda::DaemonBuilder;

// ---------------------------------------------------------------------------
// Tentpole: the closed-loop harness validates all three workloads on both
// transports.

#[test]
fn workload_suite_validates_the_extended_model_on_both_transports() {
    let report = run_suite(&SuiteConfig::fast(7)).expect("suite runs");
    assert_eq!(report.rows.len(), 6, "3 workloads x 2 loops");
    for workload in ["transformer", "smallcalls", "traffic"] {
        for transport in ["sim GigaE->40GI", "tcp loopback"] {
            assert!(
                report
                    .rows
                    .iter()
                    .any(|r| r.workload == workload && r.transport == transport),
                "missing row: {workload} on {transport}"
            );
        }
    }
    report.assert_bounds();
    // The artifact payload is complete: a table plus one JSON row per
    // validation row, each carrying its verdict.
    let json = report.to_json();
    assert_eq!(json["rows"].as_array().map(Vec::len), Some(6));
    assert!(json["table"].as_str().is_some_and(|t| t.contains("error")));
}

/// The simulated loop runs on the virtual clock, so the same seed must
/// reproduce the summary table byte for byte. Regenerate after an
/// intentional model or workload change with:
/// `run_sim_rows(&SuiteConfig::fast(42)).table()`.
#[test]
fn sim_summary_table_matches_golden() {
    let report = run_sim_rows(&SuiteConfig::fast(42));
    let want = include_str!("golden/workloads_sim_summary.txt");
    assert_eq!(report.table(), want, "sim summary drifted from golden");
}

// ---------------------------------------------------------------------------
// Satellite S2: softmax/layernorm conformance across backends.

/// Run softmax then layernorm remotely over `rt` and return both results.
fn remote_softmax_layernorm(
    rt: &mut dyn CudaRuntime,
    rows: usize,
    cols: usize,
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
) -> (Vec<f32>, Vec<f32>) {
    let to_bytes = |v: &[f32]| v.iter().flat_map(|f| f.to_le_bytes()).collect::<Vec<u8>>();
    let from_bytes = |b: &[u8]| {
        b.chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect::<Vec<f32>>()
    };
    let n_bytes = (x.len() * 4) as u32;
    let col_bytes = (cols * 4) as u32;
    rt.initialize(&build_module(&["softmax_rows", "layernorm_rows"], 0))
        .unwrap();
    let px = rt.malloc(n_bytes).unwrap();
    let pgamma = rt.malloc(col_bytes).unwrap();
    let pbeta = rt.malloc(col_bytes).unwrap();
    rt.memcpy_h2d(px, &to_bytes(x)).unwrap();
    let args = ArgPack::new()
        .push_ptr(px)
        .push_u32(rows as u32)
        .push_u32(cols as u32)
        .into_bytes();
    rt.launch("softmax_rows", Dim3::x(1), Dim3::x(32), 0, 0, &args)
        .unwrap();
    let softmaxed = from_bytes(&rt.memcpy_d2h(px, n_bytes).unwrap());

    rt.memcpy_h2d(px, &to_bytes(x)).unwrap();
    rt.memcpy_h2d(pgamma, &to_bytes(gamma)).unwrap();
    rt.memcpy_h2d(pbeta, &to_bytes(beta)).unwrap();
    let args = ArgPack::new()
        .push_ptr(px)
        .push_ptr(pgamma)
        .push_ptr(pbeta)
        .push_u32(rows as u32)
        .push_u32(cols as u32)
        .push_f32(1e-5)
        .into_bytes();
    rt.launch("layernorm_rows", Dim3::x(1), Dim3::x(32), 0, 0, &args)
        .unwrap();
    let normed = from_bytes(&rt.memcpy_d2h(px, n_bytes).unwrap());
    for p in [px, pgamma, pbeta] {
        rt.free(p).unwrap();
    }
    rt.finalize().unwrap();
    (softmaxed, normed)
}

#[test]
fn softmax_layernorm_conform_across_backends_at_edge_shapes() {
    // (rows, cols, input generator): the 1×1 degenerate case, two
    // non-power-of-two shapes, and a row mixing denormals with ordinary
    // magnitudes (subnormal arithmetic must round identically everywhere).
    let denormal = f32::from_bits(0x0000_0007); // ~1e-44, subnormal
    let shapes: Vec<(usize, usize, Vec<f32>)> = vec![
        (1, 1, vec![3.25]),
        (3, 7, (0..21).map(|i| (i as f32 - 10.0) * 0.37).collect()),
        (
            5,
            13,
            (0..65)
                .map(|i| ((i * 37) % 17) as f32 * 0.11 - 0.8)
                .collect(),
        ),
        (
            2,
            5,
            vec![
                denormal, -denormal, 1.0, -1.0, denormal, 0.0, denormal, -2.5, denormal, 4.0,
            ],
        ),
    ];
    for (rows, cols, x) in shapes {
        let gamma: Vec<f32> = (0..cols).map(|i| 0.5 + i as f32 * 0.1).collect();
        let beta: Vec<f32> = (0..cols).map(|i| -0.2 + i as f32 * 0.05).collect();

        // Host reference through the same kernel functions.
        let mut want_softmax = x.clone();
        softmax_rows(rows, cols, &mut want_softmax);
        let mut want_norm = x.clone();
        layernorm_rows(rows, cols, &mut want_norm, &gamma, &beta, 1e-5);

        let mut sim = sim_session(Arc::from(NetworkId::Ib40G.model()), ObsHandle::none(), 0);
        let (got_softmax, got_norm) =
            remote_softmax_layernorm(&mut sim.runtime, rows, cols, &x, &gamma, &beta);
        sim.finish();
        assert_eq!(got_softmax, want_softmax, "sim softmax {rows}x{cols}");
        assert_eq!(got_norm, want_norm, "sim layernorm {rows}x{cols}");

        let mut chan = channel_session(ObsHandle::none(), 0);
        let (got_softmax, got_norm) =
            remote_softmax_layernorm(&mut chan.runtime, rows, cols, &x, &gamma, &beta);
        chan.finish();
        assert_eq!(got_softmax, want_softmax, "channel softmax {rows}x{cols}");
        assert_eq!(got_norm, want_norm, "channel layernorm {rows}x{cols}");
    }
}

// ---------------------------------------------------------------------------
// Satellite S3: traffic-generator determinism as a property.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn traffic_schedule_is_deterministic_per_seed(
        seed in any::<u64>(),
        ops_per_tenant in 1usize..60,
    ) {
        let cfg = TrafficConfig {
            tenants: Persona::all().to_vec(),
            ops_per_tenant,
            rate_per_s: 1_500.0,
            seed,
        };
        let a = build_schedule(&cfg);
        let b = build_schedule(&cfg);
        // Same seed: identical arrival instants and per-tenant op streams.
        prop_assert_eq!(&a, &b);
        for tenant in 0..cfg.tenants.len() {
            prop_assert_eq!(a.tenant_ops(tenant), b.tenant_ops(tenant));
        }
        // A different seed diverges (wrapping_add(1) keeps it a valid u64).
        let other = build_schedule(&TrafficConfig {
            seed: seed.wrapping_add(1),
            ..cfg.clone()
        });
        prop_assert_ne!(&a, &other);
    }
}

// ---------------------------------------------------------------------------
// The traffic personas against the sharded reactor itself.

#[test]
fn traffic_personas_replay_against_the_sharded_reactor() {
    let cfg = TrafficConfig::small(29);
    let schedule = build_schedule(&cfg);
    let mut daemon = DaemonBuilder::new().shards(2).bind("127.0.0.1:0").unwrap();
    std::thread::scope(|s| {
        for (tenant, persona) in cfg.tenants.iter().enumerate() {
            let ops = schedule.tenant_ops(tenant);
            let transport = daemon.connect_in_process();
            s.spawn(move || {
                let clock = wall_clock();
                let mut rt = RemoteRuntime::new(transport, clock.clone());
                replay_closed_loop(&mut rt, &*clock, &ObsHandle::none(), persona.name(), &ops)
                    .expect("tenant replay");
            });
        }
    });
    assert!(
        daemon.wait_for_sessions(cfg.tenants.len() as u64, std::time::Duration::from_secs(30)),
        "all tenants complete"
    );
    let health = daemon.health();
    assert_eq!(health.panics, 0, "no dispatch panics under persona mix");
    assert_eq!(health.rejected, 0, "nothing was shed");
    assert_eq!(health.served, cfg.tenants.len() as u64);
    // Every session exited orderly and returned its memory.
    for report in daemon.session_reports() {
        assert!(report.orderly_shutdown, "tenant left via Quit");
    }
    daemon.shutdown();
}
