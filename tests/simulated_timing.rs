//! End-to-end validation of the simulated execution path: running the real
//! middleware (client → protocol → simulated link → server → simulated GPU)
//! on a virtual clock must agree with the sum of its component models, and
//! must reproduce the paper's qualitative network ordering.

use rcuda::api::{run_fft_bytes, run_matmul_bytes};
use rcuda::core::{CaseStudy, Clock as _, SimTime};
use rcuda::gpu::{C1060CostModel, CostModel};
use rcuda::netsim::NetworkId;
use rcuda::session;
use rcuda::session::Endpoint;

/// Run the MM phases at paper scale (phantom memory) over a simulated
/// network and return the virtual-clock total.
fn simulated_mm(net: NetworkId, m: u32) -> SimTime {
    let mut sess = session::Session::builder()
        .phantom(true)
        .connect(Endpoint::Simulated(net))
        .unwrap();
    let bytes = vec![0u8; (m * m * 4) as usize];
    let clock = sess.clock().clone();
    run_matmul_bytes(&mut *sess, &*clock, m, &bytes, &bytes).unwrap();
    let total = sess.clock().now();
    sess.finish();
    total
}

#[test]
fn simulated_mm_total_matches_component_sum() {
    let m = 4096u32;
    let net = NetworkId::Ib40G;
    let total = simulated_mm(net, m).as_secs_f64();

    // Components: network bulk (3 copies), PCIe (3 copies), kernel.
    let model = net.model();
    let case = CaseStudy::MatMul { dim: m };
    let cost = C1060CostModel::new();
    let bulk = 3.0
        * model
            .app_transfer(case.memcpy_bytes().as_bytes())
            .as_secs_f64();
    let pcie = 3.0 * cost.pcie_time(case.memcpy_bytes().as_bytes()).as_secs_f64();
    let args = rcuda::core::ArgPack::new()
        .push_ptr(rcuda::core::DevicePtr::new(1))
        .push_ptr(rcuda::core::DevicePtr::new(2))
        .push_ptr(rcuda::core::DevicePtr::new(3))
        .push_u32(m)
        .push_u32(m)
        .push_u32(m)
        .into_bytes();
    let kernel = cost.kernel_time("sgemmNN", &args).as_secs_f64();
    let floor = bulk + pcie + kernel;

    assert!(
        total > floor,
        "total {total} must exceed the bulk components {floor}"
    );
    // Control messages and module upload add little: within 2% + 2 ms.
    assert!(
        total < floor * 1.02 + 0.002,
        "total {total} vs components {floor}: control overhead too large"
    );
}

#[test]
fn network_ordering_matches_bandwidth_ordering() {
    // For a fixed problem, simulated end-to-end time must order by network
    // speed: GigaE > Myr > 10GE > 10GI > 40GI-ish > F-HT > A-HT.
    let m = 2048u32;
    let times: Vec<(NetworkId, SimTime)> = [
        NetworkId::GigaE,
        NetworkId::Myri10G,
        NetworkId::TenGigE,
        NetworkId::TenGigIb,
        NetworkId::FpgaHt,
        NetworkId::AsicHt,
    ]
    .into_iter()
    .map(|net| (net, simulated_mm(net, m)))
    .collect();
    for w in times.windows(2) {
        assert!(
            w[0].1 > w[1].1,
            "{} ({:?}) should be slower than {} ({:?})",
            w[0].0,
            w[0].1,
            w[1].0,
            w[1].1
        );
    }
}

#[test]
fn fft_remote_overhead_ratio_matches_paper_shape() {
    // Paper Fig. 5/6 right: FFT remoting over GigaE costs several times the
    // 40GI run. Check the simulated middleware reproduces that ratio zone
    // (paper: 354.33/167.00 ≈ 2.1 at batch 2048 — but our middleware-only
    // path has no fixed-time CPU work, so the network-dominated ratio is
    // larger; it must exceed 2 and stay finite).
    let batch = 2048u32;
    let bytes = vec![0u8; (batch * 512 * 8) as usize];
    let run = |net: NetworkId| -> f64 {
        let mut sess = session::Session::builder()
            .phantom(true)
            .connect(Endpoint::Simulated(net))
            .unwrap();
        let clock = sess.clock().clone();
        run_fft_bytes(&mut *sess, &*clock, batch, &bytes).unwrap();
        let t = sess.clock().now().as_secs_f64();
        sess.finish();
        t
    };
    let gigae = run(NetworkId::GigaE);
    let ib = run(NetworkId::Ib40G);
    let ratio = gigae / ib;
    assert!(ratio > 2.0, "GigaE/40GI ratio {ratio}");
    assert!(ratio < 40.0, "ratio {ratio} implausible");
}

#[test]
fn preinitialized_daemon_beats_cold_local_context_at_small_sizes() {
    // §VI-B: at m = 4096 the remote 40GI run beats the local GPU because
    // the daemon pre-initializes the CUDA context. Reproduce with the
    // middleware: simulated remote (warm) vs local (cold) on virtual clocks.
    let m = 4096u32;
    let remote = simulated_mm(NetworkId::Ib40G, m);

    let (mut local, clock) = session::local_simulated();
    let bytes = vec![0u8; (m * m * 4) as usize];
    run_matmul_bytes(&mut local, &*clock, m, &bytes, &bytes).unwrap();
    let local_total = clock.now();

    assert!(
        remote < local_total,
        "warm remote ({remote:?}) must beat cold local ({local_total:?}) at m=4096"
    );
}
