//! Concurrent GPU sharing: "several nodes running different GPU-accelerated
//! applications can concurrently make use of the whole set of accelerators
//! installed in the cluster" (§III). The daemon time-multiplexes the device
//! by giving every connection its own context; sessions must be isolated
//! and all produce correct results.

use rcuda::api::{run_fft_bytes, run_matmul_bytes, CudaRuntime};
use rcuda::core::time::wall_clock;
use rcuda::core::{ArgPack, Dim3};
use rcuda::gpu::module::build_module;
use rcuda::gpu::GpuDevice;
use rcuda::kernels::complex::complex_to_bytes;
use rcuda::kernels::workload::{fft_input, matrix_pair};
use rcuda::server::RcudaDaemon;
use rcuda::session;
use rcuda::session::Endpoint;
use std::thread;

fn f32s(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

#[test]
fn eight_concurrent_clients_share_one_gpu() {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();

    let clock = wall_clock();
    // Precompute per-client expected outputs locally.
    let handles: Vec<_> = (0..8u64)
        .map(|seed| {
            thread::spawn(move || {
                let clock = wall_clock();
                let m = 24u32;
                let (a, b) = matrix_pair(m as usize, seed);
                let (a, b) = (f32s(a.as_slice()), f32s(b.as_slice()));
                let mut rt = session::Session::builder()
                    .connect(Endpoint::Tcp(addr))
                    .unwrap();
                let out = run_matmul_bytes(&mut *rt, &*clock, m, &a, &b)
                    .unwrap()
                    .output;
                (seed, a, b, out)
            })
        })
        .collect();

    for h in handles {
        let (seed, a, b, remote_out) = h.join().unwrap();
        let mut local = session::local_functional();
        let local_out = run_matmul_bytes(&mut local, &*clock, 24, &a, &b)
            .unwrap()
            .output;
        assert_eq!(remote_out, local_out, "client {seed} corrupted");
    }
    assert!(daemon.wait_for_sessions(8, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    assert_eq!(daemon.sessions_served(), 8);
    assert!(daemon
        .session_reports()
        .iter()
        .all(|r| r.orderly_shutdown && r.leaked_allocations == 0));
}

#[test]
fn mixed_workloads_share_one_gpu() {
    // MM and FFT clients interleaved on one daemon.
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();
    let mm = thread::spawn(move || {
        let clock = wall_clock();
        let (a, b) = matrix_pair(20, 77);
        let mut rt = session::Session::builder()
            .connect(Endpoint::Tcp(addr))
            .unwrap();
        run_matmul_bytes(
            &mut *rt,
            &*clock,
            20,
            &f32s(a.as_slice()),
            &f32s(b.as_slice()),
        )
        .unwrap()
        .output
    });
    let fft = thread::spawn(move || {
        let clock = wall_clock();
        let input = complex_to_bytes(&fft_input(2, 88));
        let mut rt = session::Session::builder()
            .connect(Endpoint::Tcp(addr))
            .unwrap();
        run_fft_bytes(&mut *rt, &*clock, 2, &input).unwrap().output
    });
    let mm_out = mm.join().unwrap();
    let fft_out = fft.join().unwrap();
    assert_eq!(mm_out.len(), 20 * 20 * 4);
    assert_eq!(fft_out.len(), 2 * 512 * 8);
    assert!(daemon.wait_for_sessions(2, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    assert_eq!(daemon.sessions_served(), 2);
}

#[test]
fn contexts_are_isolated_between_connections() {
    // A device pointer from one session must be invalid in another: each
    // connection gets "a new GPU context" (§III).
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();
    let module = build_module(&["fill"], 0);

    let mut rt1 = session::Session::builder()
        .connect(Endpoint::Tcp(addr))
        .unwrap();
    rt1.initialize(&module).unwrap();
    let p1 = rt1.malloc(1024).unwrap();
    // Fill session 1's buffer with a marker.
    let args = ArgPack::new()
        .push_ptr(p1)
        .push_u32(16)
        .push_f32(42.0)
        .into_bytes();
    rt1.launch("fill", Dim3::x(1), Dim3::x(16), 0, 0, &args)
        .unwrap();

    let mut rt2 = session::Session::builder()
        .connect(Endpoint::Tcp(addr))
        .unwrap();
    rt2.initialize(&module).unwrap();
    // Session 2 allocates; even if it receives the same numeric address,
    // the memory is zeroed, never session 1's data.
    let p2 = rt2.malloc(1024).unwrap();
    let data = rt2.memcpy_d2h(p2, 64).unwrap();
    assert_eq!(data, vec![0u8; 64], "fresh context sees fresh memory");

    // Session 1 still sees its marker.
    let data = rt1.memcpy_d2h(p1, 64).unwrap();
    let vals: Vec<f32> = data
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(&vals[..16], &[42.0f32; 16][..]);

    rt1.finalize().unwrap();
    rt2.finalize().unwrap();
    daemon.shutdown();
}
