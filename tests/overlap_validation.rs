//! Validation of the async-overlap model against the live middleware:
//! chunk-streamed `cudaMemcpyAsync` over a simulated link must approach
//! `max(network, PCIe)` while the synchronous path pays `network + PCIe` —
//! the relationship `rcuda::model::overlap` assumes analytically.

use rcuda::api::{CudaRuntime, CudaRuntimeAsyncExt};
use rcuda::core::{Clock as _, SimTime};
use rcuda::gpu::module::build_module;
use rcuda::netsim::NetworkId;
use rcuda::session;
use rcuda::session::Endpoint;

const TOTAL: u32 = 256 << 20;
const CHUNKS: u32 = 32;

/// Stream `TOTAL` bytes H2D in `CHUNKS` chunks, sync or async.
fn transfer_time(net: NetworkId, use_async: bool) -> SimTime {
    let chunk = TOTAL / CHUNKS;
    let mut sess = session::Session::builder()
        .phantom(true)
        .connect(Endpoint::Simulated(net))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap();
    let p = sess.malloc(TOTAL).unwrap();
    let stream = if use_async {
        sess.stream_create().unwrap()
    } else {
        0
    };
    let start = sess.clock().now();
    let buf = vec![0u8; chunk as usize];
    for i in 0..CHUNKS {
        if use_async {
            sess.memcpy_h2d_async(p.offset(i * chunk), &buf, stream)
                .unwrap();
        } else {
            sess.memcpy_h2d(p.offset(i * chunk), &buf).unwrap();
        }
    }
    if use_async {
        sess.stream_synchronize(stream).unwrap();
    }
    let t = sess.clock().now() - start;
    sess.finalize().unwrap();
    sess.finish();
    t
}

#[test]
fn async_streaming_hides_the_smaller_leg() {
    // A-HT: network 2884 MiB/s, PCIe 5743 MiB/s — the PCIe leg is the
    // smaller one and should hide almost entirely.
    let sync = transfer_time(NetworkId::AsicHt, false).as_secs_f64();
    let asynct = transfer_time(NetworkId::AsicHt, true).as_secs_f64();
    let mib = (TOTAL >> 20) as f64;
    let net = mib / 2884.0;
    let pcie = mib / 5743.0;

    // Synchronous pays both legs per chunk (plus control chatter).
    assert!(
        (sync - (net + pcie)).abs() / (net + pcie) < 0.05,
        "sync {sync} vs net+pcie {}",
        net + pcie
    );
    // Async approaches the bottleneck leg plus one chunk of fill.
    let bound = net + pcie / CHUNKS as f64;
    assert!(
        (asynct - bound).abs() / bound < 0.06,
        "async {asynct} vs bound {bound}"
    );
    assert!(asynct < sync, "overlap must help");
}

#[test]
fn slow_networks_gain_little_from_overlap() {
    // GigaE: the network leg is 50× the PCIe leg; hiding PCIe is noise.
    let sync = transfer_time(NetworkId::GigaE, false).as_secs_f64();
    let asynct = transfer_time(NetworkId::GigaE, true).as_secs_f64();
    assert!(asynct <= sync);
    let gain = (sync - asynct) / sync;
    assert!(gain < 0.05, "GigaE overlap gain should be marginal: {gain}");
}

#[test]
fn overlap_gain_matches_the_analytic_model_shape() {
    // The middleware's measured gain fraction per network must order the
    // same way as the analytic overlap benefit: faster networks gain more.
    let gain = |net: NetworkId| -> f64 {
        let sync = transfer_time(net, false).as_secs_f64();
        let asynct = transfer_time(net, true).as_secs_f64();
        (sync - asynct) / sync
    };
    let slow = gain(NetworkId::Myri10G);
    let mid = gain(NetworkId::FpgaHt);
    let fast = gain(NetworkId::AsicHt);
    assert!(
        slow < mid && mid < fast,
        "gain must grow with bandwidth: {slow} {mid} {fast}"
    );
}
