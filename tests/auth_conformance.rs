//! Conformance for the daemon-side authentication gate: a daemon built
//! with `.auth(token)` rejects wrong-token mux clients and legacy
//! (pre-mux) clients with `rcudaErrorAuthFailed`, without consuming a
//! session slot in either case — proven by serving a correctly-
//! authenticated client afterwards under `max_sessions(1)` — and the
//! admission ledger still balances (`rejected + served == attempted`).

use rcuda::api::CudaRuntime;
use rcuda::core::CudaError;
use rcuda::gpu::module::build_module;
use rcuda::gpu::GpuDevice;
use rcuda::proto::secure::CipherSuiteKind;
use rcuda::server::RcudaDaemon;
use rcuda::session::{Endpoint, Session};
use std::time::Duration;

const TOKEN: &str = "conformance-token";

fn auth_gated_daemon() -> RcudaDaemon {
    RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .auth(TOKEN)
        .max_sessions(1)
        .bind("127.0.0.1:0")
        .unwrap()
}

/// A malloc/memcpy round trip proving the session is fully live.
fn round_trip(rt: &mut impl CudaRuntime) {
    rt.initialize(&build_module(&[], 0)).unwrap();
    let p = rt.malloc(4096).unwrap();
    let data = vec![0x5Au8; 4096];
    rt.memcpy_h2d(p, &data).unwrap();
    assert_eq!(rt.memcpy_d2h(p, 4096).unwrap(), data);
    rt.free(p).unwrap();
    rt.finalize().unwrap();
}

#[test]
fn bad_tokens_are_rejected_without_consuming_a_slot() {
    let mut daemon = auth_gated_daemon();
    let addr = daemon.local_addr();

    // A wrong-token mux client fails the challenge-response handshake at
    // connect time with the auth error, not a generic I/O failure.
    let err = Session::builder()
        .auth("not-the-token")
        .connect(Endpoint::Tcp(addr))
        .err()
        .expect("wrong token must not connect");
    assert_eq!(err, CudaError::AuthFailed);

    // A legacy single-stream client cannot carry a token at all: its
    // session hello is answered with the same auth error.
    let mut legacy = Session::builder()
        .connect(Endpoint::Tcp(addr))
        .expect("legacy dial itself succeeds; the gate is at the hello");
    assert_eq!(
        legacy.initialize(&build_module(&[], 0)),
        Err(CudaError::AuthFailed)
    );
    drop(legacy);

    // The legacy reject's slot frees when the reactor finishes closing the
    // connection; wait for that before proving the slot is available.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while daemon.health().live_sessions > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "rejected connections must release their slots"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Neither reject consumed the single session slot: a correctly
    // authenticated client is admitted and completes a round trip.
    let mut sess = Session::builder()
        .auth(TOKEN)
        .connect(Endpoint::Tcp(addr))
        .expect("right token connects");
    round_trip(&mut *sess);
    sess.finish();

    daemon.drain(Duration::from_secs(5));
    let health = daemon.health();
    assert_eq!(health.live_sessions, 0, "nothing left running");
    assert_eq!(
        health.rejected + health.served,
        health.attempted,
        "every accepted connection was either shed or served"
    );
    // The good client's sub-stream session left cleanly with no leaks.
    let reports = daemon.session_reports();
    assert!(
        reports
            .iter()
            .any(|r| r.orderly_shutdown && r.leaked_allocations == 0),
        "the authenticated session exited orderly"
    );
    daemon.shutdown();
}

#[test]
fn auth_composes_with_encryption_over_tcp() {
    let mut daemon = auth_gated_daemon();
    let addr = daemon.local_addr();

    let mut sess = Session::builder()
        .auth(TOKEN)
        .cipher(CipherSuiteKind::ChaCha20)
        .connect(Endpoint::Tcp(addr))
        .expect("authenticated encrypted dial");
    round_trip(&mut *sess);
    sess.finish();

    daemon.drain(Duration::from_secs(5));
    let health = daemon.health();
    assert_eq!(
        health.rejected + health.served,
        health.attempted,
        "ledger balances with the cipher enabled"
    );
    daemon.shutdown();
}

#[test]
fn open_daemon_still_accepts_mux_clients_without_a_token() {
    // No `.auth(...)`: both ends MAC under the empty key and the same
    // handshake completes, so mux does not require configuring auth.
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let mut sess = Session::builder()
        .mux(true)
        .connect(Endpoint::Tcp(daemon.local_addr()))
        .expect("tokenless mux dial against an open daemon");
    round_trip(&mut *sess);
    sess.finish();
    daemon.shutdown();
}
