//! Admission control end-to-end: the `Busy { retry_after_ms }` frame on the
//! wire, the client's `RetryPolicy` treating it as retryable-with-backoff,
//! panic isolation between concurrent sessions, and graceful drain.

use rcuda::api::CudaRuntime;
use rcuda::core::CudaError;
use rcuda::gpu::module::build_module;
use rcuda::gpu::GpuDevice;
use rcuda::proto::Request;
use rcuda::server::{ChaosHook, RcudaDaemon, ServerConfig};
use rcuda::session::Endpoint;
use rcuda::session::Session;
use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hold the daemon's only session slot: connect raw and read the hello but
/// never speak, so the worker stays parked in the handshake until the
/// returned stream drops.
fn hold_slot(addr: std::net::SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    let mut hello = [0u8; 8];
    s.read_exact(&mut hello).unwrap();
    s
}

fn single_slot_daemon() -> RcudaDaemon {
    let config = ServerConfig {
        max_sessions: Some(1),
        busy_retry_after_ms: 5,
        ..Default::default()
    };
    RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .config(config)
        .bind("127.0.0.1:0")
        .unwrap()
}

#[test]
fn busy_client_with_retries_backs_off_and_gets_in() {
    let mut daemon = single_slot_daemon();
    let addr = daemon.local_addr();
    let holder = hold_slot(addr);

    // The second client is shed with Busy; its retry policy backs off
    // (honoring the server's retry-after hint) and re-dials. Free the slot
    // shortly after it starts knocking.
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        drop(holder);
    });

    let mut rt = Session::builder()
        .deadline(Duration::from_secs(2))
        .retries(12)
        .connect(Endpoint::Tcp(addr))
        .unwrap();
    rt.initialize(&build_module(&[], 0))
        .expect("admitted once the slot frees");
    let p = rt.malloc(256).unwrap();
    rt.free(p).unwrap();
    rt.finalize().unwrap();
    releaser.join().unwrap();

    let health = daemon.health();
    assert!(health.rejected >= 1, "the client was shed at least once");
    daemon.drain(Duration::from_secs(5));
    let health = daemon.health();
    assert_eq!(health.rejected + health.served, health.attempted);
}

#[test]
fn busy_without_retries_is_a_clean_error_not_a_hang() {
    let mut daemon = single_slot_daemon();
    let addr = daemon.local_addr();
    let _holder = hold_slot(addr);

    // Default fail-fast policy: the Busy frame surfaces as ServerBusy
    // immediately — distinct from transport faults, so it is not mistaken
    // for a dead server.
    let begun = Instant::now();
    let mut rt = Session::builder()
        .deadline(Duration::from_secs(2))
        .connect(Endpoint::Tcp(addr))
        .unwrap();
    let err = rt
        .initialize(&build_module(&[], 0))
        .expect_err("no retries: the rejection surfaces");
    assert_eq!(err, CudaError::ServerBusy);
    assert!(
        !err.is_transport(),
        "load shedding is not a transport fault"
    );
    assert!(begun.elapsed() < Duration::from_secs(2), "no hang");
    daemon.drain(Duration::from_secs(5));
}

#[test]
fn panic_kills_one_session_and_spares_its_neighbor() {
    let config = ServerConfig {
        chaos: ChaosHook::new(|req| {
            if matches!(req, Request::Malloc { size: 0xDEAD }) {
                panic!("chaos hook: injected dispatch panic");
            }
        }),
        ..Default::default()
    };
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .config(config)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();

    // The bystander is mid-session when its neighbor's dispatch panics.
    let mut bystander = Session::builder()
        .deadline(Duration::from_secs(2))
        .connect(Endpoint::Tcp(addr))
        .unwrap();
    bystander.initialize(&build_module(&[], 0)).unwrap();
    let p = bystander.malloc(64).unwrap();
    bystander.memcpy_h2d(p, &[7u8; 64]).unwrap();

    let mut victim = Session::builder()
        .deadline(Duration::from_secs(2))
        .connect(Endpoint::Tcp(addr))
        .unwrap();
    victim.initialize(&build_module(&[], 0)).unwrap();
    assert_eq!(victim.malloc(0xDEAD), Err(CudaError::LaunchFailure));

    // The bystander's context, wire state, and data are untouched.
    assert_eq!(bystander.memcpy_d2h(p, 64).unwrap(), vec![7u8; 64]);
    bystander.free(p).unwrap();
    bystander.finalize().unwrap();

    drop(victim);
    daemon.drain(Duration::from_secs(5));
    let health = daemon.health();
    assert_eq!(health.panics, 1, "exactly the injected panic");
    assert_eq!(health.live_sessions, 0);
    assert_eq!(
        health.rejected + health.served,
        health.attempted,
        "admission ledger balances after the panic"
    );
}

#[test]
fn drain_finishes_in_flight_sessions_and_bounds_stragglers() {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();

    // One client quits in an orderly fashion; one goes silent mid-session
    // and must be hard-stopped at the deadline.
    let mut orderly = Session::builder()
        .deadline(Duration::from_secs(2))
        .connect(Endpoint::Tcp(addr))
        .unwrap();
    orderly.initialize(&build_module(&[], 0)).unwrap();
    orderly.finalize().unwrap();
    assert!(daemon.wait_for_sessions(1, Duration::from_secs(5)));

    let quiet = hold_slot(addr);

    let begun = Instant::now();
    let report = daemon.drain(Duration::from_millis(200));
    assert!(
        begun.elapsed() < Duration::from_secs(5),
        "drain is bounded by its deadline, not by the quiet client"
    );
    assert_eq!(report.forced, 1, "the quiet session was hard-stopped");
    let health = daemon.health();
    assert_eq!(health.live_sessions, 0, "every worker joined");
    assert_eq!(health.rejected + health.served, health.attempted);
    drop(quiet);
}
