//! Topology-aware placement: running the middleware between two specific
//! hosts of a modeled cluster (the paper's future-work "network topologies"
//! axis). Cross-rack placement must cost measurably more than same-rack
//! placement in control-message-heavy workloads, and essentially the same
//! for bulk-dominated ones.

use rcuda::api::CudaRuntime;
use rcuda::core::Clock as _;
use rcuda::gpu::module::build_module;
use rcuda::netsim::{NetworkId, Topology, TopologyNetwork};
use rcuda::session;
use rcuda::session::Endpoint;
use std::sync::Arc;

/// Simulated time for a chatty session (many small calls) between two
/// hosts of the topology.
fn chatty_session_time(topo: &Topology, a: usize, b: usize) -> f64 {
    let net = Arc::new(TopologyNetwork::between(topo, a, b, NetworkId::Ib40G));
    let mut sess = session::Session::builder()
        .phantom(true)
        .connect(Endpoint::SimulatedWith(net))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap();
    // 50 malloc/free pairs: 200 small messages.
    for _ in 0..50 {
        let p = sess.malloc(256).unwrap();
        sess.free(p).unwrap();
    }
    sess.finalize().unwrap();
    let t = sess.clock().now().as_micros_f64();
    sess.finish();
    t
}

#[test]
fn cross_rack_placement_costs_more_per_call() {
    // Two racks, 5 µs edge links, 20 µs core links.
    let (topo, racks) = Topology::two_level(2, 2, 5.0, 20.0);
    let same_rack = chatty_session_time(&topo, racks[0][0], racks[0][1]);
    let cross_rack = chatty_session_time(&topo, racks[0][0], racks[1][0]);
    // Same-rack route: 2×5 = 10 µs; cross-rack: 5+20+20+5 = 50 µs. The
    // session exchanges ~202 messages, so the delta is ~202 × 40 µs.
    let delta = cross_rack - same_rack;
    let expect = 202.0 * 40.0;
    assert!(
        (delta - expect).abs() / expect < 0.05,
        "delta {delta} µs vs expected {expect} µs"
    );
}

#[test]
fn bulk_workloads_barely_notice_the_rack_boundary() {
    let (topo, racks) = Topology::two_level(2, 2, 5.0, 20.0);
    let run = |a: usize, b: usize| -> f64 {
        let net = Arc::new(TopologyNetwork::between(&topo, a, b, NetworkId::Ib40G));
        let mut sess = session::Session::builder()
            .phantom(true)
            .connect(Endpoint::SimulatedWith(net))
            .unwrap();
        sess.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.malloc(64 << 20).unwrap();
        sess.memcpy_h2d(p, &vec![0u8; 64 << 20]).unwrap();
        sess.free(p).unwrap();
        sess.finalize().unwrap();
        let t = sess.clock().now().as_secs_f64();
        sess.finish();
        t
    };
    let same = run(racks[0][0], racks[0][1]);
    let cross = run(racks[0][0], racks[1][0]);
    assert!(cross > same, "switching latency is not free");
    assert!(
        (cross - same) / same < 0.01,
        "a 64 MiB copy must dwarf per-hop latency: {same} vs {cross}"
    );
}
