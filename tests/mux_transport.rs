//! Property-level conformance for the stream-multiplexing layer: whatever
//! bytes an application writes into a sub-stream come out the far end
//! byte-identical, whatever the payload sizes, write granularities, and
//! read split patterns — i.e. the trunk framing (64 KiB chunking, credit
//! flow control, end-of-message flags, pooled buffer recycling) is fully
//! transparent, exactly like the single-stream transport it replaces.

use proptest::prelude::*;
use rcuda::proto::secure::CipherSuiteKind;
use rcuda::proto::BufferPool;
use rcuda::transport::{channel_pair, MuxConfig, MuxPeer, Transport};
use std::io::{Read, Write};

/// Stand up a client/server mux pair over an in-process channel; the
/// server echoes every message (length-prefixed) back on the same stream.
fn echo_pair(cipher: CipherSuiteKind, pool: BufferPool) -> (MuxPeer, MuxPeer) {
    let (a, b) = channel_pair();
    let (ar, aw) = (Box::new(a) as Box<dyn Transport>).into_split().unwrap();
    let (br, bw) = (Box::new(b) as Box<dyn Transport>).into_split().unwrap();
    let key = [7u8; 32];
    let config = |pool: BufferPool| MuxConfig {
        cipher,
        key,
        pool,
        ..MuxConfig::default()
    };
    let server = MuxPeer::server(br, bw, config(pool.clone()), |mut stream| {
        std::thread::spawn(move || {
            let mut len = [0u8; 4];
            while stream.read_exact(&mut len).is_ok() {
                let n = u32::from_le_bytes(len) as usize;
                let mut buf = vec![0u8; n];
                if stream.read_exact(&mut buf).is_err() {
                    break;
                }
                if stream.write_all(&len).is_err() || stream.write_all(&buf).is_err() {
                    break;
                }
                if stream.flush().is_err() {
                    break;
                }
            }
        });
    });
    let client = MuxPeer::client(ar, aw, config(pool));
    (client, server)
}

/// Write `payload` in `splits`-sized slices, then read the echo back in
/// arbitrary granularities. The echo must be byte-identical.
fn echo_round_trip(stream: &mut (impl Read + Write), payload: &[u8], splits: &[usize]) -> Vec<u8> {
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    let mut off = 0;
    for &s in splits {
        let end = (off + s.max(1)).min(payload.len());
        if off < end {
            stream.write_all(&payload[off..end]).unwrap();
            off = end;
        }
    }
    stream.write_all(&payload[off..]).unwrap();
    stream.flush().unwrap();

    let mut len = [0u8; 4];
    stream.read_exact(&mut len).unwrap();
    let n = u32::from_le_bytes(len) as usize;
    let mut got = vec![0u8; n];
    let mut pos = 0;
    // Read back in uneven chunks to exercise partial-frame consumption.
    let mut step = 1usize;
    while pos < n {
        let end = (pos + step).min(n);
        stream.read_exact(&mut got[pos..end]).unwrap();
        pos = end;
        step = (step * 3 + 1) % 8192 + 1;
    }
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary payloads (empty through multi-chunk) written in arbitrary
    /// splits round-trip byte-identical through one sub-stream, with the
    /// pooled buffers recycled across messages.
    #[test]
    fn mux_stream_round_trips_byte_identical(
        payload in proptest::collection::vec(any::<u8>(), 0..200_000),
        splits in proptest::collection::vec(1usize..70_000, 0..6),
    ) {
        let pool = BufferPool::default();
        let (client, _server) = echo_pair(CipherSuiteKind::None, pool);
        let mut stream = client.open_stream().unwrap();
        // Two passes over the same stream: the second reuses buffers the
        // first returned to the pool.
        for _ in 0..2 {
            let got = echo_round_trip(&mut stream, &payload, &splits);
            prop_assert_eq!(&got, &payload);
        }
    }

    /// The same property under ChaCha20 payload encryption: the cipher is
    /// transparent to the application bytes.
    #[test]
    fn encrypted_mux_stream_round_trips_byte_identical(
        payload in proptest::collection::vec(any::<u8>(), 0..150_000),
        splits in proptest::collection::vec(1usize..70_000, 0..4),
    ) {
        let pool = BufferPool::default();
        let (client, _server) = echo_pair(CipherSuiteKind::ChaCha20, pool);
        let mut stream = client.open_stream().unwrap();
        let got = echo_round_trip(&mut stream, &payload, &splits);
        prop_assert_eq!(&got, &payload);
    }

    /// Concurrent sub-streams carrying different payloads do not bleed into
    /// each other, even when a bulk payload is in flight while small
    /// messages interleave (the head-of-line-blocking scenario).
    #[test]
    fn concurrent_streams_stay_isolated(
        bulk in proptest::collection::vec(any::<u8>(), 100_000..180_000),
        small in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let pool = BufferPool::default();
        let (client, _server) = echo_pair(CipherSuiteKind::None, pool);
        let mut bulk_stream = client.open_stream().unwrap();
        let mut small_stream = client.open_stream().unwrap();

        let bulk_cloned = bulk.clone();
        let bulk_thread = std::thread::spawn(move || {
            echo_round_trip(&mut bulk_stream, &bulk_cloned, &[])
        });
        for _ in 0..4 {
            let got = echo_round_trip(&mut small_stream, &small, &[]);
            prop_assert_eq!(&got, &small);
        }
        let got_bulk = bulk_thread.join().unwrap();
        prop_assert_eq!(&got_bulk, &bulk);
    }
}
