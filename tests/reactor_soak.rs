//! Reactor scale soak: ten thousand concurrent sessions in one process.
//!
//! The point of the sharded reactor is that the daemon's thread count and
//! per-session memory stay flat as sessions pile up — the opposite of the
//! thread-per-connection design, where 10k sessions meant 10k stacks. This
//! test opens `RCUDA_SOAK_SESSIONS` (default 10 000) in-process sessions
//! through `RcudaDaemon::connect_in_process` (no file descriptors
//! consumed), holds them all live at once, then drives every one through a
//! malloc/free/quit round and asserts:
//!
//! * the process thread count at peak equals daemon threads + driver
//!   threads — zero threads per session (Linux only);
//! * resident memory grows by a bounded number of KiB per session (Linux
//!   only);
//! * every session completes orderly with nothing leaked, the admission
//!   ledger balances, and a final drain is clean (nothing left to force).

use rcuda::gpu::module::build_module;
use rcuda::proto::{Request, Response};
use rcuda::server::DaemonBuilder;
use std::io::{Read, Write};
use std::sync::Barrier;
use std::time::Duration;

const DRIVERS: usize = 8;
/// Generous per-session resident-memory bound. A session costs a decoder
/// buffer (2 KiB floor), channel buffers on both ends, and a phantom
/// context — nowhere near a thread stack.
const RSS_PER_SESSION_BOUND_KIB: usize = 96;

/// Session count from `RCUDA_SOAK_SESSIONS` (default 10 000). A value the
/// soak cannot honor — unparseable, zero, or absurdly large — used to fall
/// back to the default silently, which made typos look like passing soaks;
/// now it fails loudly and clamps only the genuinely out-of-range top end.
fn soak_sessions() -> usize {
    const DEFAULT: usize = 10_000;
    /// Past this the in-process channel buffers alone exceed any sane CI
    /// memory budget; clamp rather than OOM.
    const MAX: usize = 1_000_000;
    let Ok(raw) = std::env::var("RCUDA_SOAK_SESSIONS") else {
        return DEFAULT;
    };
    let n: usize = raw.trim().parse().unwrap_or_else(|_| {
        panic!("RCUDA_SOAK_SESSIONS={raw:?} is not a session count; unset it or pass a positive integer")
    });
    assert!(
        n > 0,
        "RCUDA_SOAK_SESSIONS=0 would soak nothing; unset it or pass a positive integer"
    );
    if n > MAX {
        eprintln!("RCUDA_SOAK_SESSIONS={n} clamped to {MAX}");
        return MAX;
    }
    n
}

/// `(threads, VmRSS KiB)` from /proc/self/status; `None` off Linux.
fn proc_status() -> Option<(usize, usize)> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let field = |key: &str| {
        status
            .lines()
            .find(|l| l.starts_with(key))?
            .split_whitespace()
            .nth(1)?
            .parse::<usize>()
            .ok()
    };
    Some((field("Threads:")?, field("VmRSS:")?))
}

#[test]
fn ten_thousand_concurrent_sessions_stay_flat() {
    let n = soak_sessions();
    let shards = 4;
    let daemon = DaemonBuilder::new()
        .phantom_memory(true)
        .shards(shards)
        .bind("127.0.0.1:0")
        .unwrap();
    assert_eq!(daemon.shard_count(), shards);

    let baseline = proc_status();
    let opened = Barrier::new(DRIVERS + 1);
    let measured = Barrier::new(DRIVERS + 1);
    let module = build_module(&[], 0);

    std::thread::scope(|s| {
        for d in 0..DRIVERS {
            let daemon = &daemon;
            let opened = &opened;
            let measured = &measured;
            let module = &module;
            s.spawn(move || {
                let share = n / DRIVERS + usize::from(d < n % DRIVERS);
                // Open phase: all sessions of this driver live at once.
                let mut conns = Vec::with_capacity(share);
                let mut cc = [0u8; 8];
                for _ in 0..share {
                    let mut t = daemon.connect_in_process();
                    t.read_exact(&mut cc).expect("compute-capability hello");
                    conns.push(t);
                }
                opened.wait();
                // Main thread snapshots peak threads/memory here.
                measured.wait();

                // Drive phase, stage-wise so every session in this
                // driver's share has a request in flight at once.
                let init = Request::Init {
                    module: module.clone(),
                };
                // `ChannelTransport` is message-oriented: bytes travel on
                // flush, so every stage write is followed by one.
                for t in &mut conns {
                    init.write(t).unwrap();
                    t.flush().unwrap();
                }
                for t in &mut conns {
                    Response::read(t, &init).unwrap().into_ack().unwrap();
                }
                let malloc = Request::Malloc { size: 4096 };
                let mut ptrs = Vec::with_capacity(share);
                for t in &mut conns {
                    malloc.write(t).unwrap();
                    t.flush().unwrap();
                }
                for t in &mut conns {
                    ptrs.push(Response::read(t, &malloc).unwrap().into_malloc().unwrap());
                }
                for (t, ptr) in conns.iter_mut().zip(&ptrs) {
                    Request::Free { ptr: *ptr }.write(t).unwrap();
                    t.flush().unwrap();
                }
                for (t, ptr) in conns.iter_mut().zip(&ptrs) {
                    Response::read(t, &Request::Free { ptr: *ptr })
                        .unwrap()
                        .into_ack()
                        .unwrap();
                }
                for t in &mut conns {
                    Request::Quit.write(t).unwrap();
                    t.flush().unwrap();
                }
                for t in &mut conns {
                    Response::read(t, &Request::Quit)
                        .unwrap()
                        .into_ack()
                        .unwrap();
                }
            });
        }

        opened.wait();
        // Peak: every session admitted and live, none served yet.
        let health = daemon.health();
        assert_eq!(health.live_sessions, n as u64, "all sessions live at once");
        assert_eq!(health.admitted, n as u64);
        assert_eq!(health.rejected, 0);
        if let (Some((threads0, rss0)), Some((threads, rss))) = (baseline, proc_status()) {
            assert_eq!(
                threads,
                threads0 + DRIVERS,
                "no thread per session: only the {DRIVERS} driver threads appeared"
            );
            let growth_kib = rss.saturating_sub(rss0);
            assert!(
                growth_kib / n < RSS_PER_SESSION_BOUND_KIB,
                "per-session memory stays flat: {n} sessions grew RSS by \
                 {growth_kib} KiB (> {RSS_PER_SESSION_BOUND_KIB} KiB each)"
            );
        }
        measured.wait();
    });

    assert!(
        daemon.wait_for_sessions(n as u64, Duration::from_secs(120)),
        "all sessions complete"
    );
    let health = daemon.health();
    assert_eq!(health.served, n as u64);
    assert_eq!(health.live_sessions, 0);
    assert_eq!(health.rejected + health.served, health.attempted);
    assert_eq!(health.panics, 0);
    assert_eq!(daemon.parked_sessions(), 0);

    let reports = daemon.session_reports();
    assert_eq!(reports.len(), n);
    assert!(reports.iter().all(|r| r.orderly_shutdown));
    assert_eq!(
        reports.iter().map(|r| r.leaked_allocations).sum::<usize>(),
        0,
        "no session leaked device allocations"
    );

    let mut daemon = daemon;
    let drain = daemon.drain(Duration::from_secs(5));
    assert_eq!(
        (drain.graceful, drain.forced),
        (0, 0),
        "nothing left to drain: every session already finished"
    );
}
