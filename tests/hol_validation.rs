//! Validates the `rcuda-netsim` HOL model against live loopback-TCP
//! measurement, the same way PR 7 validates the §V estimator: predict,
//! measure, bound the relative error.
//!
//! The closed-form [`HolModel`] predicts the *typical* small-call
//! latency under a concurrent bulk transfer — the queueing delay a call
//! experiences at the transport layer. The measured median is the
//! matching statistic; the p99 additionally absorbs host-scheduler
//! tails that no network model sees (and is gated at ≥ 5× by the
//! `multiplex` bench artifact in `scripts/check.sh`). Improvement
//! ratios span two orders of magnitude, so the error is bounded in log
//! space: `|ln(predicted) − ln(measured)| / ln(measured)`, against the
//! loosest PR-7 live-TCP bound (0.75).

use rcuda::api::CudaRuntime;
use rcuda::gpu::module::build_module;
use rcuda::gpu::GpuDevice;
use rcuda::netsim::HolModel;
use rcuda::server::RcudaDaemon;
use rcuda::session::{Endpoint, Session};
use rcuda::workloads::calibrate_loopback;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The acceptance scenario's bulk payload.
const BULK: usize = 16 << 20;
/// Small-call samples per arm — enough for a stable median.
const ITERS: usize = 64;
/// Pause between successive bulk transfers (see `benches/multiplex.rs`).
const BULK_GAP: Duration = Duration::from_millis(1);
/// Loosest PR-7 live-TCP relative-error bound, applied in log space.
const LOG_REL_ERROR_BOUND: f64 = 0.75;

/// The wire chunk the netsim HOL model assumes must be the one the
/// protocol actually frames, or every prediction silently drifts.
#[test]
fn netsim_chunk_matches_protocol_chunk() {
    assert_eq!(
        rcuda::netsim::hol::DEFAULT_CHUNK_BYTES,
        rcuda::proto::mux::CHUNK as u64,
        "rcuda-netsim's DEFAULT_CHUNK_BYTES must track rcuda-proto's mux::CHUNK"
    );
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Median small-call latency (µs) while a sibling user streams 16 MiB
/// transfers over the *same* connection, single-stream (whole calls
/// serialize behind a lock — the ordered byte stream admits nothing
/// finer) vs. muxed (each user on its own sub-stream).
fn contended_median_us(addr: std::net::SocketAddr, mux: bool) -> f64 {
    let data = vec![0x5au8; BULK];
    let stop = AtomicBool::new(false);
    let mut samples = Vec::with_capacity(ITERS);

    if mux {
        let conn = Session::builder()
            .mux(true)
            .connector(Endpoint::Tcp(addr))
            .unwrap();
        let mut bulk = conn.open().unwrap();
        bulk.initialize(&build_module(&[], 0)).unwrap();
        let mut small = conn.open().unwrap();
        small.initialize(&build_module(&[], 0)).unwrap();
        let dev = bulk.malloc(BULK as u32).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    bulk.memcpy_h2d(dev, &data).unwrap();
                    std::thread::sleep(BULK_GAP);
                }
                bulk.free(dev).unwrap();
                bulk.finalize().unwrap();
            });
            for _ in 0..ITERS {
                std::thread::sleep(Duration::from_micros(500));
                let t0 = Instant::now();
                let p = small.malloc(64).unwrap();
                small.free(p).unwrap();
                samples.push(t0.elapsed().as_secs_f64() * 1e6);
            }
            stop.store(true, Ordering::Relaxed);
        });
        small.finalize().unwrap();
        small.finish();
        conn.finish();
    } else {
        let mut sess = Session::builder().connect(Endpoint::Tcp(addr)).unwrap();
        sess.initialize(&build_module(&[], 0)).unwrap();
        let dev = sess.malloc(BULK as u32).unwrap();
        let sess = Mutex::new(sess);
        std::thread::scope(|s| {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    sess.lock().unwrap().memcpy_h2d(dev, &data).unwrap();
                    std::thread::sleep(BULK_GAP);
                }
            });
            for _ in 0..ITERS {
                std::thread::sleep(Duration::from_micros(500));
                let t0 = Instant::now();
                {
                    let mut rt = sess.lock().unwrap();
                    let p = rt.malloc(64).unwrap();
                    rt.free(p).unwrap();
                }
                samples.push(t0.elapsed().as_secs_f64() * 1e6);
            }
            stop.store(true, Ordering::Relaxed);
        });
        let mut sess = sess.into_inner().unwrap();
        sess.free(dev).unwrap();
        sess.finalize().unwrap();
        sess.finish();
    }
    median_us(samples)
}

#[test]
fn hol_model_predicts_measured_improvement_within_pr7_bounds() {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .shards(2)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();

    let link = calibrate_loopback(addr, 3).unwrap();
    let model = HolModel {
        chunk_bytes: rcuda::proto::mux::CHUNK as u64,
        ..HolModel::new(BULK as u64, 8, 8)
    };
    let predicted = model.improvement(&link);
    assert!(
        predicted >= 5.0,
        "HOL model must predict ≥ 5× improvement on the calibrated \
         loopback link, got {predicted:.1}×"
    );

    let single = contended_median_us(addr, false);
    let muxed = contended_median_us(addr, true);
    let measured = single / muxed.max(f64::EPSILON);
    assert!(
        measured >= 5.0,
        "measured median small-call improvement must be ≥ 5× \
         (single {single:.0} µs, muxed {muxed:.0} µs = {measured:.1}×)"
    );

    let rel = (predicted.ln() - measured.ln()).abs() / measured.ln();
    assert!(
        rel <= LOG_REL_ERROR_BOUND,
        "HOL model off by {rel:.2} in log space (predicted {predicted:.1}×, \
         measured {measured:.1}×, bound {LOG_REL_ERROR_BOUND})"
    );

    daemon.shutdown();
}
