#!/usr/bin/env bash
# Full local gate: everything CI would run, in the order that fails fastest.
# Works offline — all third-party dependencies are vendored in vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release ==" >&2
cargo build --release --workspace

echo "== cargo test ==" >&2
cargo test -q --workspace

echo "== failure-injection conformance (3 seeds) ==" >&2
RCUDA_FAULT_SEEDS=3 cargo test -q --test failure_injection

echo "== chaos soak (3 seeds) ==" >&2
RCUDA_FAULT_SEEDS=3 cargo test -q --test server_soak

echo "== broker chaos soak (${RCUDA_BROKER_SEEDS:-3} seeds) ==" >&2
RCUDA_BROKER_SEEDS="${RCUDA_BROKER_SEEDS:-3}" cargo test -q --test broker_chaos

echo "== observed MM run + trace schema check ==" >&2
trace_out="target/check_observed_trace.json"
observed=$(cargo run -q --release --example observed_matmul "$trace_out")
grep -q "trace schema OK" <<<"$observed"
test -s "$trace_out" || { echo "observed_matmul wrote no trace" >&2; exit 1; }

echo "== memcpy data-plane bench smoke ==" >&2
BENCH_MEMCPY_OUT="$PWD/target/BENCH_memcpy.json" \
    cargo bench -q -p rcuda-bench --bench memcpy_path -- --test >/dev/null
python3 -c "import json; json.load(open('target/BENCH_memcpy.json'))" 2>/dev/null \
    || grep -q '"bench": "memcpy_path"' target/BENCH_memcpy.json
test -s target/BENCH_memcpy.json || { echo "memcpy bench wrote no artifact" >&2; exit 1; }

echo "== session-concurrency bench smoke ==" >&2
BENCH_CONCURRENCY_OUT="$PWD/target/BENCH_concurrency.json" \
    cargo bench -q -p rcuda-bench --bench concurrency -- --test >/dev/null
python3 -c "import json; json.load(open('target/BENCH_concurrency.json'))" 2>/dev/null \
    || grep -q '"bench": "concurrency"' target/BENCH_concurrency.json
test -s target/BENCH_concurrency.json || { echo "concurrency bench wrote no artifact" >&2; exit 1; }

echo "== workload suite bench smoke (fast mode) ==" >&2
RCUDA_WORKLOADS_FAST=1 BENCH_WORKLOADS_OUT="$PWD/target/BENCH_workloads.json" \
    cargo bench -q -p rcuda-bench --bench workloads -- --test >/dev/null
python3 -c "import json; json.load(open('target/BENCH_workloads.json'))" 2>/dev/null \
    || grep -q '"suite": "rcuda-workloads"' target/BENCH_workloads.json
test -s target/BENCH_workloads.json || { echo "workloads bench wrote no artifact" >&2; exit 1; }

echo "== multiplex HOL bench smoke ==" >&2
BENCH_MULTIPLEX_OUT="$PWD/target/BENCH_multiplex.json" \
    cargo bench -q -p rcuda-bench --bench multiplex -- --test >/dev/null
if command -v python3 >/dev/null; then
    python3 -c "
import json, sys
a = json.load(open('target/BENCH_multiplex.json'))
imp = a['improvement']
if imp < 5.0:
    sys.exit(f'mux small-call p99 improvement {imp:.1f}x < 5x acceptance floor')
"
else
    grep -q '"bench": "multiplex"' target/BENCH_multiplex.json
fi
test -s target/BENCH_multiplex.json || { echo "multiplex bench wrote no artifact" >&2; exit 1; }

echo "== broker bench smoke ==" >&2
BENCH_BROKER_OUT="$PWD/target/BENCH_broker.json" \
    cargo bench -q -p rcuda-bench --bench broker -- --test >/dev/null
python3 -c "import json; json.load(open('target/BENCH_broker.json'))" 2>/dev/null \
    || grep -q '"bench": "broker"' target/BENCH_broker.json
test -s target/BENCH_broker.json || { echo "broker bench wrote no artifact" >&2; exit 1; }

echo "== compression bench smoke ==" >&2
BENCH_COMPRESSION_OUT="$PWD/target/BENCH_compression.json" \
    cargo bench -q -p rcuda-bench --bench compression -- --test >/dev/null
if command -v python3 >/dev/null; then
    python3 -c "
import json, sys
a = json.load(open('target/BENCH_compression.json'))
g = a['gates']
if g['compressible_speedup'] < 1.5:
    sys.exit(f\"compressible speedup {g['compressible_speedup']:.2f}x < 1.5x acceptance floor\")
if g['incompressible_regression'] > 0.03:
    sys.exit(f\"incompressible regression {g['incompressible_regression']*100:.1f}% > 3% ceiling\")
"
else
    grep -q '"bench": "compression"' target/BENCH_compression.json
fi
test -s target/BENCH_compression.json || { echo "compression bench wrote no artifact" >&2; exit 1; }

echo "== cargo fmt --check ==" >&2
cargo fmt --all --check

echo "== cargo clippy -D warnings ==" >&2
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy -p rcuda-obs -D warnings ==" >&2
cargo clippy -p rcuda-obs --all-targets -- -D warnings

echo "== cargo clippy -p rcuda-server -D warnings ==" >&2
cargo clippy -p rcuda-server --all-targets -- -D warnings

echo "== cargo clippy -p rcuda-proto -D warnings ==" >&2
cargo clippy -p rcuda-proto --all-targets -- -D warnings

echo "== cargo clippy -p rcuda-transport -D warnings ==" >&2
cargo clippy -p rcuda-transport --all-targets -- -D warnings

echo "== cargo clippy -p rcuda-workloads -D warnings ==" >&2
cargo clippy -p rcuda-workloads --all-targets -- -D warnings

echo "== cargo clippy -p rcuda-broker -D warnings ==" >&2
cargo clippy -p rcuda-broker --all-targets -- -D warnings

echo "== cargo clippy -p lz4_flex -D warnings ==" >&2
cargo clippy -p lz4_flex --all-targets -- -D warnings

echo "== cargo clippy -p rcuda-netsim -D warnings ==" >&2
cargo clippy -p rcuda-netsim --all-targets -- -D warnings

echo "== cargo clippy -p rcuda-model -D warnings ==" >&2
cargo clippy -p rcuda-model --all-targets -- -D warnings

echo "== cargo clippy -p rcuda-client -D warnings ==" >&2
cargo clippy -p rcuda-client --all-targets -- -D warnings

echo "== cargo clippy -p rcuda-bench -D warnings ==" >&2
cargo clippy -p rcuda-bench --all-targets -- -D warnings

echo "All checks passed." >&2
