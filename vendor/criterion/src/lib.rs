//! Minimal offline stand-in for the `criterion` crate.
//!
//! Keeps the authoring API (`Criterion`, `benchmark_group`,
//! `bench_with_input`, `Throughput`, `criterion_group!`/`criterion_main!`)
//! so benches compile and run unchanged, but replaces the statistical
//! machinery with a fixed warm-up plus a short timed loop and plain-text
//! output. Good enough for relative comparisons in an offline container;
//! not a replacement for criterion's confidence intervals.

use std::fmt;
use std::time::{Duration, Instant};

/// Measures one closure; handed to `bench_function` callbacks.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up once, then time a small fixed batch.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Names one benchmark, optionally parameterized (`new("h2d", 4096)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

/// Anything `bench_function` accepts as an identifier.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation, echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Top-level harness state.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 10 }
    }
}

fn report(group: Option<&str>, id: &str, iters: u64, elapsed: Duration, thr: Option<Throughput>) {
    let per_iter = elapsed.as_secs_f64() / iters.max(1) as f64;
    let rate = match thr {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  {:.1} MiB/s", n as f64 / per_iter / (1u64 << 20) as f64)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:.3e} elem/s", n as f64 / per_iter)
        }
        None => String::new(),
    };
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    println!("bench {name}: {:.3} µs/iter{rate}", per_iter * 1e6);
}

impl Criterion {
    /// Override the timed iteration count (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = n.max(1) as u64;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(None, &id.into_id(), b.iters, b.elapsed, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size(n);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.criterion.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(
            Some(&self.name),
            &id.into_id(),
            b.iters,
            b.elapsed,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.criterion.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(
            Some(&self.name),
            &id.into_id(),
            b.iters,
            b.elapsed,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

/// `criterion_group!(name, target, ...)` — plain and `config =` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            let _ = &$config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, ...)` — generates `main`, honoring the harness
/// flags cargo passes (`--list` must enumerate nothing and exit cleanly so
/// `cargo test --benches` stays quiet).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| std::hint::black_box(7u64 * 7)));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("with_input", 1024), &1024usize, |b, n| {
            b.iter(|| std::hint::black_box(vec![0u8; *n]))
        });
        g.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default();
        c.sample_size(3);
        sample_bench(&mut c);
    }
}
