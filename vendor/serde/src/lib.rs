//! Minimal offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor architecture, this stub uses one concrete
//! self-describing tree, [`Content`] (the JSON data model), and two traits:
//! [`Serialize`] converts a value *to* a `Content`, [`Deserialize`] rebuilds
//! a value *from* one. `serde_derive` emits implementations following
//! serde's externally-tagged conventions, and the `serde_json` stub reuses
//! `Content` as its `Value`. This is enough for every derive and call site
//! in the workspace; it is not a general serde replacement.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Content::Map(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Content::Seq(_))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(n) => Some(*n),
            Content::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(n) => Some(*n),
            Content::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(x) => Some(*x),
            Content::U64(n) => Some(*n as f64),
            Content::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Object field / array element lookup, `None` on kind mismatch.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL: Content = Content::Null;

impl std::ops::Index<&str> for Content {
    type Output = Content;

    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;

    fn index(&self, idx: usize) -> &Content {
        match self {
            Content::Seq(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization failure: what was expected, what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.msg.fmt(f)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Rebuild a value from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---- helpers used by derive-generated code ----

/// Expect an object; `ty` names the target type for the error message.
pub fn content_as_map<'a>(c: &'a Content, ty: &str) -> Result<&'a [(String, Content)], Error> {
    c.as_object()
        .map(|m| m.as_slice())
        .ok_or_else(|| Error::custom(format!("expected object for {ty}")))
}

/// Expect an array; `ty` names the target type for the error message.
pub fn content_as_seq<'a>(c: &'a Content, ty: &str) -> Result<&'a [Content], Error> {
    c.as_array()
        .map(|v| v.as_slice())
        .ok_or_else(|| Error::custom(format!("expected array for {ty}")))
}

/// Field lookup that treats a missing key as `Null` (so `Option` fields may
/// be omitted; non-optional fields then fail in their own `from_content`).
pub fn map_field<'a>(m: &'a [(String, Content)], key: &str) -> &'a Content {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

// ---- Serialize impls for primitives and std containers ----

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}

impl_ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}

impl_ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---- Deserialize impls ----

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let n = c.as_u64().ok_or_else(|| {
                    Error::custom(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let n = c.as_i64().ok_or_else(|| {
                    Error::custom(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let v: Vec<T> = Vec::from_content(c)?;
        v.try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! impl_de_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let seq = content_as_seq(c, "tuple")?;
                if seq.len() != $len {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_de_tuple! {
    (A: 0; 1)
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()), Ok(42));
        assert_eq!(i64::from_content(&(-3i64).to_content()), Ok(-3));
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Option::<u8>::from_content(&Option::<u8>::None.to_content()),
            Ok(None)
        );
        assert_eq!(
            Vec::<u8>::from_content(&vec![1u8, 2, 3].to_content()),
            Ok(vec![1, 2, 3])
        );
    }

    #[test]
    fn numeric_cross_coercions() {
        // Integral floats may arrive as integers after a JSON round trip.
        assert_eq!(f64::from_content(&Content::U64(3)), Ok(3.0));
        assert_eq!(u64::from_content(&Content::I64(5)), Ok(5));
        assert!(u8::from_content(&Content::U64(300)).is_err());
    }

    #[test]
    fn index_and_lookup() {
        let c = Content::Map(vec![(
            "xs".to_string(),
            Content::Seq(vec![Content::U64(7)]),
        )]);
        assert!(c.is_object());
        assert_eq!(c["xs"][0].as_u64(), Some(7));
        assert!(c["missing"].is_null());
    }
}
