//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are equally unavailable offline). The parser only needs item kind,
//! type name, field names / arities and enum variants — field *types* never
//! appear in the generated code because conversion goes through the
//! `serde::Serialize` / `serde::Deserialize` traits, letting inference pick
//! the right impl per field.
//!
//! Conventions match serde's externally-tagged defaults on the JSON model:
//! named struct → object; newtype struct → inner value; tuple struct →
//! array; unit enum variant → its name as a string; data-carrying variant →
//! single-key object `{ "Variant": ... }`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple struct/variant with this arity.
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    skip_generics(&tokens, &mut i);

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (tokens.get(*i), tokens.get(*i + 1))
    {
        if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket {
            *i += 2;
        } else {
            break;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) etc.
                }
            }
        }
    }
}

/// Skip `<...>` balancing nested angle brackets; groups are atomic tokens so
/// only `<`/`>` puncts need counting. `->` never appears at depth 0 between
/// a type name and its body.
fn skip_generics(tokens: &[TokenTree], i: &mut usize) {
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return;
    }
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        *i += 1;
                        return;
                    }
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Field names of `{ ... }`, skipping attributes, visibility and types.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        names.push(name);
        i += 1;
        // Skip `: Type` up to the comma separating fields. A comma inside
        // the type can only occur at angle depth > 0 or inside a group
        // (groups are single tokens here).
        let mut angle = 0i32;
        let mut prev_minus = false;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' if !prev_minus => angle += 1,
                    '>' if prev_minus => {} // `->` in fn-pointer types
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                prev_minus = p.as_char() == '-';
            } else {
                prev_minus = false;
            }
            i += 1;
        }
    }
    names
}

/// Arity of `( ... )`: top-level comma count, trailing comma tolerated.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut prev_minus = false;
    let mut trailing_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' if !prev_minus => angle += 1,
                '>' if prev_minus => {}
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    trailing_comma = true;
                }
                _ => trailing_comma = false,
            }
            prev_minus = p.as_char() == '-';
        } else {
            prev_minus = false;
            trailing_comma = false;
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the variant comma.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- code generation ----

fn tuple_bindings(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("__f{k}")).collect()
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Content::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
                }
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push(format!(
                        "{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),"
                    )),
                    Fields::Tuple(n) => {
                        let binds = tuple_bindings(*n);
                        let inner = if *n == 1 {
                            format!("::serde::Serialize::to_content({})", binds[0])
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
                        };
                        arms.push(format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(vec![(\"{vname}\"\
                             .to_string(), {inner})]),",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        arms.push(format!(
                            "{name}::{vname} {{ {} }} => ::serde::Content::Map(vec![(\"{vname}\"\
                             .to_string(), ::serde::Content::Map(vec![{}]))]),",
                            fields.join(", "),
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{ {} }}\n\
                 }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!("let _ = __c; Ok({name})"),
            Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_content(__c)?))"),
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_content(&__seq[{k}])?"))
                    .collect();
                format!(
                    "let __seq = ::serde::content_as_seq(__c, \"{name}\")?;\n\
                     if __seq.len() != {n} {{\n\
                     return Err(::serde::Error::custom(\"wrong tuple arity for {name}\"));\n\
                     }}\n\
                     Ok({name}({}))",
                    elems.join(", ")
                )
            }
            Fields::Named(names) => {
                let inits: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_content(\
                             ::serde::map_field(__map, \"{f}\"))?"
                        )
                    })
                    .collect();
                format!(
                    "let __map = ::serde::content_as_map(__c, \"{name}\")?;\n\
                     Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
        },
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push(format!("\"{vname}\" => Ok({name}::{vname}),"));
                    }
                    Fields::Tuple(n) => {
                        let inner = if *n == 1 {
                            format!("Ok({name}::{vname}(::serde::Deserialize::from_content(__v)?))")
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_content(&__seq[{k}])?")
                                })
                                .collect();
                            format!(
                                "{{ let __seq = ::serde::content_as_seq(__v, \"{name}\")?;\n\
                                 if __seq.len() != {n} {{\n\
                                 return Err(::serde::Error::custom(\
                                 \"wrong tuple arity for {name}::{vname}\"));\n\
                                 }}\n\
                                 Ok({name}::{vname}({})) }}",
                                elems.join(", ")
                            )
                        };
                        data_arms.push(format!("\"{vname}\" => {inner},"));
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_content(\
                                     ::serde::map_field(__fields, \"{f}\"))?"
                                )
                            })
                            .collect();
                        data_arms.push(format!(
                            "\"{vname}\" => {{\n\
                             let __fields = ::serde::content_as_map(__v, \"{name}::{vname}\")?;\n\
                             Ok({name}::{vname} {{ {} }})\n\
                             }},",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 _ => Err(::serde::Error::custom(\"unknown variant of {name}\")),\n\
                 }},\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = &__m[0];\n\
                 let _ = __v;\n\
                 match __k.as_str() {{\n\
                 {}\n\
                 _ => Err(::serde::Error::custom(\"unknown variant of {name}\")),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::Error::custom(\"expected variant of {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
