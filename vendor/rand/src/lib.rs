//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides a deterministic [`rngs::StdRng`] (SplitMix64) plus the [`Rng`],
//! [`RngCore`] and [`SeedableRng`] trait surface the workspace uses:
//! `seed_from_u64`, `gen::<f64>()`, and `gen_range` over float/integer
//! ranges. The statistical quality is adequate for test-data generation and
//! simulation noise; it is **not** a cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, deterministic across runs.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full generator output
/// (rand's `Standard` distribution, folded into one trait).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: SplitMix64 (Steele, Lea & Flood 2014).
    /// Passes through all 2⁶⁴ states; plenty for reproducible workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let n = rng.gen_range(5u32..17);
            assert!((5..17).contains(&n));
            let m = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&m));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
