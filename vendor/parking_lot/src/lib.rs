//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace vendors the tiny slice of `parking_lot` it actually uses:
//! [`Mutex`] and [`RwLock`] with panic-free (poison-ignoring) lock methods.
//! Backed by `std::sync`; same public call shapes, no fairness/parking
//! machinery.

use std::sync;

/// A mutex whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }
}
