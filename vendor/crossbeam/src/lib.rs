//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided (the workspace uses nothing else).
//! Unlike crossbeam's MPMC channels, `std::sync::mpsc` receivers are
//! single-consumer; cloning a [`channel::Receiver`] here shares one consumer
//! behind a mutex, which preserves crossbeam's `Clone + Send` API surface.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            "sending on a disconnected channel".fmt(f)
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            "receiving on an empty and disconnected channel".fmt(f)
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observable() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded();
            drop(rx2);
            assert_eq!(tx2.send(9), Err(SendError(9)));
        }
    }
}
