//! Offline stand-in for the `lz4_flex` crate: the LZ4 *block* format
//! (compression and safe decompression), dependency-free and `unsafe`-free.
//!
//! Implements exactly the surface this workspace uses — the block-format
//! `compress_into` / `decompress_into` pair plus the size helpers — against
//! the upstream API, so restoring the real crate is a `Cargo.toml` change
//! (see `vendor/README.md`).
//!
//! The encoder is a greedy single-pass matcher over a 4 KiB-entry hash
//! table kept on the stack (16 KiB), so a compression call performs **zero
//! heap allocations** — a requirement of the workspace's pooled data plane.
//! Match extension compares eight bytes at a time, which is what makes
//! compressible payloads fast; incompressible payloads degrade to a single
//! hash-probe-and-skip per position. The decoder validates every length and
//! offset against its buffers and returns an error on malformed input —
//! never a panic, never an out-of-bounds access (wire bytes are untrusted).

pub mod block;

pub use block::{
    compress_into, compress_prepend_size, decompress_into, decompress_size_prepended,
    get_maximum_output_size, CompressError, DecompressError,
};
