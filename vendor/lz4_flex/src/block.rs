//! LZ4 block format: sequences of `[token][literal len*][literals][offset
//! u16 LE][match len*]`, where the token's high nibble is the literal length
//! (15 = continuation bytes follow) and the low nibble is the match length
//! minus the 4-byte minimum (15 = continuation bytes follow). The final
//! sequence carries literals only. Compliant encoders keep the last five
//! bytes as literals and start no match within twelve bytes of the end.

use std::fmt;

/// Minimum match length the format can express.
const MIN_MATCH: usize = 4;
/// No match may *start* within this many bytes of the input end.
const MF_LIMIT: usize = 12;
/// The last bytes of the input are always emitted as literals.
const LAST_LITERALS: usize = 5;
/// log2 of the hash-table entry count: 4096 × 4 B = 16 KiB, on the stack.
const HASH_BITS: u32 = 12;
const HASH_LEN: usize = 1 << HASH_BITS;

/// Compression failure: the output buffer cannot hold the worst case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressError {
    /// Output shorter than [`get_maximum_output_size`] of the input length.
    OutputTooSmall,
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::OutputTooSmall => write!(f, "output buffer too small for worst case"),
        }
    }
}

impl std::error::Error for CompressError {}

/// Decompression failure on malformed (or truncated) input. Wire bytes are
/// untrusted: every variant is a graceful error, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// Input ended mid-sequence.
    Truncated,
    /// A literal run or match would overflow the output buffer.
    OutputTooSmall,
    /// A match offset of zero or pointing before the output start.
    InvalidOffset,
    /// The stream ended before filling the expected output length.
    UnexpectedEnd,
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            DecompressError::Truncated => "input truncated mid-sequence",
            DecompressError::OutputTooSmall => "decoded data overflows the output buffer",
            DecompressError::InvalidOffset => "match offset outside the decoded prefix",
            DecompressError::UnexpectedEnd => "stream ended before the expected output length",
        };
        write!(f, "{msg}")
    }
}

impl std::error::Error for DecompressError {}

/// Worst-case compressed size for `len` input bytes (the classic
/// `LZ4_compressBound`): incompressible data expands by at most
/// `len / 255 + 16` bytes of token/length overhead.
pub const fn get_maximum_output_size(len: usize) -> usize {
    len + len / 255 + 16
}

#[inline]
fn hash(seq: u32) -> usize {
    (seq.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn read_u32(input: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(input[i..i + 4].try_into().expect("bounds checked"))
}

#[inline]
fn read_u64(input: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(input[i..i + 8].try_into().expect("bounds checked"))
}

/// Append an LZ4 length continuation (`n/255` bytes of 255 + remainder).
#[inline]
fn put_length(output: &mut [u8], mut out: usize, mut n: usize) -> usize {
    while n >= 255 {
        output[out] = 255;
        out += 1;
        n -= 255;
    }
    output[out] = n as u8;
    out + 1
}

/// How far the match at (`i`, `cand`) extends beyond its verified prefix,
/// comparing eight bytes at a time (the fast path on compressible data).
#[inline]
fn extend_match(input: &[u8], i: usize, cand: usize, start: usize, limit: usize) -> usize {
    let mut mlen = start;
    while i + mlen + 8 <= limit {
        let diff = read_u64(input, i + mlen) ^ read_u64(input, cand + mlen);
        if diff != 0 {
            return mlen + (diff.trailing_zeros() / 8) as usize;
        }
        mlen += 8;
    }
    while i + mlen < limit && input[i + mlen] == input[cand + mlen] {
        mlen += 1;
    }
    mlen
}

/// Compress `input` into `output` (LZ4 block format), returning the
/// compressed length. `output` must hold at least
/// [`get_maximum_output_size`]`(input.len())` bytes. Performs no heap
/// allocation: the match table lives on the stack.
pub fn compress_into(input: &[u8], output: &mut [u8]) -> Result<usize, CompressError> {
    if output.len() < get_maximum_output_size(input.len()) {
        return Err(CompressError::OutputTooSmall);
    }
    let mut table = [0u32; HASH_LEN];
    let mut anchor = 0usize;
    let mut out = 0usize;

    if input.len() > MF_LIMIT {
        let match_end = input.len() - MF_LIMIT;
        let lit_limit = input.len() - LAST_LITERALS;
        let mut i = 0usize;
        while i < match_end {
            let seq = read_u32(input, i);
            let h = hash(seq);
            let cand = table[h] as usize;
            table[h] = i as u32;
            // A stale or never-written slot fails the equality check; a
            // too-distant candidate cannot be expressed in the u16 offset.
            if cand < i && i - cand <= u16::MAX as usize && read_u32(input, cand) == seq {
                let mlen = extend_match(input, i, cand, MIN_MATCH, lit_limit);
                out = emit_sequence(input, output, out, anchor, i, (i - cand) as u16, mlen);
                i += mlen;
                anchor = i;
                if i < match_end {
                    // Re-prime the table near the match end so adjacent
                    // repeats chain (i ≥ mlen ≥ 4, so i-2 reads in bounds).
                    table[hash(read_u32(input, i - 2))] = (i - 2) as u32;
                }
            } else {
                i += 1;
            }
        }
    }

    // Final sequence: the remaining bytes as literals, no match part.
    let lit = input.len() - anchor;
    let token = (lit.min(15) as u8) << 4;
    output[out] = token;
    out += 1;
    if lit >= 15 {
        out = put_length(output, out, lit - 15);
    }
    output[out..out + lit].copy_from_slice(&input[anchor..]);
    Ok(out + lit)
}

/// Emit one `[token][lit ext][literals][offset][match ext]` sequence.
#[inline]
fn emit_sequence(
    input: &[u8],
    output: &mut [u8],
    mut out: usize,
    anchor: usize,
    i: usize,
    offset: u16,
    mlen: usize,
) -> usize {
    let lit = i - anchor;
    let m = mlen - MIN_MATCH;
    output[out] = ((lit.min(15) as u8) << 4) | (m.min(15) as u8);
    out += 1;
    if lit >= 15 {
        out = put_length(output, out, lit - 15);
    }
    output[out..out + lit].copy_from_slice(&input[anchor..i]);
    out += lit;
    output[out..out + 2].copy_from_slice(&offset.to_le_bytes());
    out += 2;
    if m >= 15 {
        out = put_length(output, out, m - 15);
    }
    out
}

/// Decompress an LZ4 block into `output`, returning the decoded length
/// (callers compare it against the expected raw length). Every length and
/// offset is validated; malformed input yields an error, never a panic.
pub fn decompress_into(input: &[u8], output: &mut [u8]) -> Result<usize, DecompressError> {
    let mut i = 0usize;
    let mut o = 0usize;
    if input.is_empty() {
        return Err(DecompressError::Truncated);
    }
    loop {
        let token = input[i];
        i += 1;
        let mut lit = (token >> 4) as usize;
        if lit == 15 {
            loop {
                let b = *input.get(i).ok_or(DecompressError::Truncated)?;
                i += 1;
                lit = lit
                    .checked_add(b as usize)
                    .ok_or(DecompressError::Truncated)?;
                if b != 255 {
                    break;
                }
            }
        }
        let lit_end = i.checked_add(lit).ok_or(DecompressError::Truncated)?;
        if lit_end > input.len() {
            return Err(DecompressError::Truncated);
        }
        if o + lit > output.len() {
            return Err(DecompressError::OutputTooSmall);
        }
        output[o..o + lit].copy_from_slice(&input[i..lit_end]);
        o += lit;
        i = lit_end;
        if i == input.len() {
            // Final sequence: literals only.
            return Ok(o);
        }

        if i + 2 > input.len() {
            return Err(DecompressError::Truncated);
        }
        let offset = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
        i += 2;
        if offset == 0 || offset > o {
            return Err(DecompressError::InvalidOffset);
        }
        let mut mlen = (token & 0x0F) as usize;
        if mlen == 15 {
            loop {
                let b = *input.get(i).ok_or(DecompressError::Truncated)?;
                i += 1;
                mlen = mlen
                    .checked_add(b as usize)
                    .ok_or(DecompressError::Truncated)?;
                if b != 255 {
                    break;
                }
            }
        }
        mlen += MIN_MATCH;
        if o + mlen > output.len() {
            return Err(DecompressError::OutputTooSmall);
        }
        let src = o - offset;
        if offset >= mlen {
            output.copy_within(src..src + mlen, o);
        } else {
            // Overlapping match (run-length style): byte-serial copy.
            for k in 0..mlen {
                output[o + k] = output[src + k];
            }
        }
        o += mlen;
        if i == input.len() {
            // The format requires a literal-only closing sequence; a stream
            // ending on a match is malformed (and would otherwise silently
            // under-fill fixed-length wire payloads).
            return Err(DecompressError::UnexpectedEnd);
        }
    }
}

/// Compress with the decompressed length prepended as a u32 LE (the
/// upstream convenience form; allocates).
pub fn compress_prepend_size(input: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; 4 + get_maximum_output_size(input.len())];
    out[..4].copy_from_slice(&(input.len() as u32).to_le_bytes());
    let n = compress_into(input, &mut out[4..]).expect("sized to the worst case");
    out.truncate(4 + n);
    out
}

/// Inverse of [`compress_prepend_size`].
pub fn decompress_size_prepended(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if input.len() < 4 {
        return Err(DecompressError::Truncated);
    }
    let raw_len = u32::from_le_bytes(input[..4].try_into().expect("length checked")) as usize;
    let mut out = vec![0u8; raw_len];
    let n = if raw_len == 0 {
        // An empty payload encodes as the single-token empty block.
        decompress_into(&input[4..], &mut out).unwrap_or(0)
    } else {
        decompress_into(&input[4..], &mut out)?
    };
    if n != raw_len {
        return Err(DecompressError::UnexpectedEnd);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let mut comp = vec![0u8; get_maximum_output_size(data.len())];
        let n = compress_into(data, &mut comp).unwrap();
        let mut back = vec![0u8; data.len()];
        let m = decompress_into(&comp[..n], &mut back).unwrap();
        assert_eq!(m, data.len());
        assert_eq!(back, data);
        n
    }

    #[test]
    fn empty_and_tiny_inputs_round_trip() {
        assert_eq!(round_trip(&[]), 1); // single zero token
        round_trip(&[42]);
        round_trip(b"hello, world"); // exactly 12 bytes: all literals
        round_trip(b"hello, world!"); // 13 bytes: match finding engages
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let data = vec![7u8; 100_000];
        let n = round_trip(&data);
        assert!(n < data.len() / 50, "RLE-like input: {n} bytes");
    }

    #[test]
    fn structured_data_compresses() {
        // Sparse f32 matrix: 90% zeros, the classic compressible payload.
        let mut data = vec![0u8; 1 << 16];
        for i in (0..data.len()).step_by(40) {
            data[i] = (i % 251) as u8;
        }
        let n = round_trip(&data);
        assert!(n < data.len() / 2, "sparse input halves at least: {n}");
    }

    #[test]
    fn incompressible_data_expands_within_bound() {
        // Xorshift noise: no 4-byte repeats to speak of.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..65_536)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        let n = round_trip(&data);
        assert!(n >= data.len(), "noise cannot shrink");
        assert!(n <= get_maximum_output_size(data.len()));
    }

    #[test]
    fn overlapping_matches_decode_correctly() {
        let mut data = Vec::new();
        for i in 0u8..=255 {
            data.extend_from_slice(&[i, i, i]); // offset-1/2/3 overlaps
        }
        data.extend_from_slice(&vec![9u8; 5000]);
        round_trip(&data);
    }

    #[test]
    fn long_literal_and_match_extensions_round_trip() {
        // > 255-byte literal run followed by a > 255-byte match.
        let mut data: Vec<u8> = (0..600u32).flat_map(|i| i.to_le_bytes()).collect();
        data.extend_from_slice(&vec![0xAB; 1000]);
        round_trip(&data);
    }

    #[test]
    fn prepend_size_helpers_mirror_upstream() {
        let data = b"the quick brown fox jumps over the lazy dog".repeat(20);
        let comp = compress_prepend_size(&data);
        assert_eq!(decompress_size_prepended(&comp).unwrap(), data);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        let mut out = vec![0u8; 64];
        // Empty stream.
        assert_eq!(
            decompress_into(&[], &mut out),
            Err(DecompressError::Truncated)
        );
        // Literal run longer than the input.
        assert_eq!(
            decompress_into(&[0xF0, 200], &mut out),
            Err(DecompressError::Truncated)
        );
        // Offset into nowhere (no literals decoded yet).
        assert_eq!(
            decompress_into(&[0x04, 0x01, 0x00], &mut out),
            Err(DecompressError::InvalidOffset)
        );
        // Literal run overflowing the output buffer.
        let mut tiny = [0u8; 2];
        assert_eq!(
            decompress_into(&[0x40, 1, 2, 3, 4], &mut tiny),
            Err(DecompressError::OutputTooSmall)
        );
        // Stream ending on a match sequence (no closing literals).
        let mut out4 = [0u8; 64];
        assert_eq!(
            decompress_into(&[0x14, 0xAA, 0x01, 0x00], &mut out4),
            Err(DecompressError::UnexpectedEnd)
        );
    }

    #[test]
    fn truncated_compressed_stream_is_rejected() {
        let data = vec![3u8; 10_000];
        let mut comp = vec![0u8; get_maximum_output_size(data.len())];
        let n = compress_into(&data, &mut comp).unwrap();
        let mut back = vec![0u8; data.len()];
        for cut in [1, n / 2, n - 1] {
            assert!(
                decompress_into(&comp[..cut], &mut back).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn output_bound_is_enforced() {
        let data = [1u8; 100];
        let mut small = vec![0u8; 50];
        assert_eq!(
            compress_into(&data, &mut small),
            Err(CompressError::OutputTooSmall)
        );
    }
}
