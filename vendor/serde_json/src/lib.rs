//! Minimal offline stand-in for `serde_json`.
//!
//! [`Value`] *is* the vendored serde [`Content`] tree, so
//! serialize/deserialize round trips need no translation layer. Provides a
//! strict JSON printer (compact and pretty), a recursive-descent parser, the
//! [`json!`] constructor macro, and the usual `to_string` / `from_str` /
//! `to_vec` / `from_slice` entry points used in this workspace.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// A JSON value (the vendored serde data model).
pub type Value = Content;

/// JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.msg.fmt(f)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_content(&value).map_err(Error::from)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Build a [`Value`] from a JSON-shaped literal. Object values and array
/// elements may be arbitrary serializable expressions (including nested
/// `json!` calls); object keys must be string literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---- printer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` on f64 round-trips exactly; integral values print
                // with `.0` so they re-parse as floats.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek()? == expected {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
            let mut chars = rest.char_indices();
            let (idx, c) = chars
                .next()
                .ok_or_else(|| Error::new("unterminated string"))?;
            debug_assert_eq!(idx, 0);
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => return Err(Error::new(format!("bad escape \\{}", other as char))),
                    }
                }
                c => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("expected value at byte {start}")));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_and_parse_round_trip() {
        let v = json!({
            "name": "rcuda",
            "count": 3u32,
            "ratio": 2.5f64,
            "flags": [true, false],
            "nested": json!({ "x": 1u8 }),
            "absent": Option::<String>::None,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back["name"].as_str(), Some("rcuda"));
        assert_eq!(back["count"].as_u64(), Some(3));
        assert_eq!(back["ratio"].as_f64(), Some(2.5));
        assert_eq!(back["flags"].as_array().unwrap().len(), 2);
        assert_eq!(back["nested"]["x"].as_u64(), Some(1));
        assert!(back["absent"].is_null());
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = json!({ "a": [1u8, 2u8], "b": "x" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"a\": ["));
        assert_eq!(from_str::<Value>(&s).unwrap(), v);
    }

    #[test]
    fn escapes_survive() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".to_string());
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&s).unwrap(), v);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 3.0);
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(from_str::<i64>("-17").unwrap(), -17);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }
}
