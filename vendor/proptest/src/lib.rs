//! Minimal offline stand-in for the `proptest` crate.
//!
//! Keeps proptest's authoring surface — [`Strategy`], `any::<T>()`,
//! `prop_oneof!`, `proptest!`, `prop_assert*!`, `collection::vec`,
//! `sample::select`, simple regex-shaped string strategies — but runs each
//! property over a fixed number of deterministically seeded samples and
//! reports failures by panicking (no shrinking). Failures therefore print
//! the failing inputs via the assertion message rather than a minimized
//! case; determinism makes them reproducible.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Each test case gets its own seed so cases are independent and stable
    /// across runs.
    pub fn from_case(case: u64) -> Self {
        TestRng {
            state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A reusable recipe for generating values.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, for [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Result of [`Strategy::prop_filter`]. Rejection resamples (bounded).
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 samples in a row",
            self.whence
        );
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = options.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, option) in &self.options {
            if pick < *weight as u64 {
                return option.sample(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick within total")
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Bit-pattern sampling, with non-finite values mapped back into
        // range so naive arithmetic properties hold.
        let x = f32::from_bits(rng.next_u32());
        if x.is_finite() {
            x
        } else {
            (rng.unit_f64() as f32 - 0.5) * 2.0e6
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let x = f64::from_bits(rng.next_u64());
        if x.is_finite() {
            x
        } else {
            (rng.unit_f64() - 0.5) * 2.0e12
        }
    }
}

/// The canonical strategy for `T` (`any::<T>()`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---- ranges as strategies ----

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

// ---- tuples of strategies ----

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---- string strategies from a regex subset ----

enum Atom {
    Class(Vec<(char, char)>),
    Literal(char),
    AnyChar,
}

struct Rep {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Parse the supported regex subset: literals, `[a-z_]` classes, `.`, and
/// quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded capped at 8).
fn parse_pattern(pattern: &str) -> Vec<Rep> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut reps = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in `{pattern}`");
                i += 1; // ']'
                Atom::Class(ranges)
            }
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {} quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        reps.push(Rep { atom, min, max });
    }
    reps
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyChar => {
            let printable = b' '..=b'~';
            let span = (*printable.end() - *printable.start()) as u64 + 1;
            (printable.start() + rng.below(span) as u8) as char
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let span = hi as u64 - lo as u64 + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick as u32).expect("valid class char");
                }
                pick -= span;
            }
            unreachable!("class pick within total")
        }
    }
}

/// String-typed regex patterns are strategies, as in proptest.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let reps = parse_pattern(self);
        let mut out = String::new();
        for rep in &reps {
            let count = rep.min + rng.below((rep.max - rep.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(sample_atom(&rep.atom, rng));
            }
        }
        out
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`], inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector of `size` samples of `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// `proptest::sample::select`: pick uniformly from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Per-property configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI fast while
        // still exercising each property across distinct seeds.
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $( ($weight, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strategy) ),+ ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Skip the current case when its inputs don't meet a precondition. Works
/// via the `Result` the case body runs inside (see `proptest!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::CaseSkipped);
        }
    };
}

/// Marker returned by `prop_assume!` rejections.
#[derive(Debug)]
pub struct CaseSkipped;

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
     $($(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategies = ($($strategy,)+);
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::from_case(case);
                    let ($($arg,)+) = $crate::Strategy::sample(&strategies, &mut rng);
                    // The closure gives `prop_assume!` an early exit;
                    // assertion failures panic straight through.
                    #[allow(clippy::redundant_closure_call)]
                    let _ = (|| -> ::std::result::Result<(), $crate::CaseSkipped> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_oneof_sample_in_bounds() {
        let mut rng = crate::TestRng::from_case(0);
        let s = prop_oneof![1u32..10, 20u32..=29];
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((1..10).contains(&v) || (20..=29).contains(&v), "{v}");
        }
    }

    #[test]
    fn regex_subset_produces_identifiers() {
        let mut rng = crate::TestRng::from_case(3);
        let s = "[a-zA-Z_][a-zA-Z0-9_]{0,30}";
        for _ in 0..100 {
            let ident = Strategy::sample(&s, &mut rng);
            assert!(!ident.is_empty() && ident.len() <= 31);
            let mut chars = ident.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "{ident}");
            assert!(
                chars.all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{ident}"
            );
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::from_case(9);
        let s = collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_wires_args_and_assume(x in 0u32..100, y in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(y, y);
            prop_assert_ne!(x, 13);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_form_compiles(pair in (0u8..4, 0u8..4)) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }
}
