//! The CUDA Runtime API surface, as a trait.
//!
//! "Our middleware provides applications with the illusion that they are
//! dealing with a real GPU" (§III). [`CudaRuntime`] is that illusion's
//! contract: applications program against it and neither know nor care
//! whether the implementation is [`LocalRuntime`] (a GPU in this node) or
//! `rcuda-client`'s `RemoteRuntime` (a GPU across the network) — the exact
//! transparency property rCUDA provides via its library of wrappers.
//!
//! [`exec`] implements the paper's seven execution phases (Fig. 2) once,
//! generically over any runtime, so the same driver code produces the
//! local-GPU baseline and the remote measurements.

pub mod exec;
pub mod local;
pub mod runtime;

pub use exec::{run_fft_bytes, run_matmul_bytes, run_nbody_bytes, ExecReport};
pub use local::LocalRuntime;
pub use runtime::{CudaRuntime, CudaRuntimeAsyncExt};
