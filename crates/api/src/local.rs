//! [`LocalRuntime`]: the CUDA Runtime backed by a GPU in this node.
//!
//! This is the baseline configuration of the paper's Table VI "GPU" column:
//! the application talks to the device directly, paying PCIe transfers and —
//! unlike rCUDA clients — the CUDA context initialization on first use
//! (§VI-B explains why the local GPU loses to remote 40GI at m = 4096).

use rcuda_core::{CudaError, CudaResult, DeviceProperties, DevicePtr, Dim3, SharedClock};
use rcuda_gpu::{GpuContext, GpuDevice};
use std::sync::Arc;

use crate::runtime::{CudaRuntime, CudaRuntimeAsyncExt};

/// A runtime bound to a local (simulated) GPU.
pub struct LocalRuntime {
    ctx: Option<GpuContext>,
    device: Arc<GpuDevice>,
    clock: SharedClock,
    phantom: bool,
}

impl LocalRuntime {
    /// A functional local runtime (real memory, kernels execute).
    pub fn new(device: Arc<GpuDevice>, clock: SharedClock) -> Self {
        LocalRuntime {
            ctx: None,
            device,
            clock,
            phantom: false,
        }
    }

    /// A timing-only local runtime (phantom memory, kernels skipped) for
    /// paper-scale simulated runs.
    pub fn new_phantom(device: Arc<GpuDevice>, clock: SharedClock) -> Self {
        LocalRuntime {
            ctx: None,
            device,
            clock,
            phantom: true,
        }
    }

    fn ctx(&mut self) -> CudaResult<&mut GpuContext> {
        self.ctx.as_mut().ok_or(CudaError::InitializationError)
    }
}

impl CudaRuntime for LocalRuntime {
    fn initialize(&mut self, module: &[u8]) -> CudaResult<()> {
        // A local application creates its context cold: `preinitialized =
        // false` charges the CUDA environment initialization delay that the
        // rCUDA daemon avoids by keeping a warm context.
        let mut ctx = if self.phantom {
            self.device
                .create_phantom_context(self.clock.clone(), false)
        } else {
            self.device.create_context(self.clock.clone(), false)
        };
        ctx.load_module(module)?;
        self.ctx = Some(ctx);
        Ok(())
    }

    fn device_properties(&mut self) -> CudaResult<DeviceProperties> {
        Ok(self.ctx()?.properties().clone())
    }

    fn malloc(&mut self, size: u32) -> CudaResult<DevicePtr> {
        self.ctx()?.malloc(size)
    }

    fn free(&mut self, ptr: DevicePtr) -> CudaResult<()> {
        self.ctx()?.free(ptr)
    }

    fn memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) -> CudaResult<()> {
        self.ctx()?.memcpy_h2d(dst, data)
    }

    fn memcpy_d2h(&mut self, src: DevicePtr, size: u32) -> CudaResult<Vec<u8>> {
        self.ctx()?.memcpy_d2h(src, size)
    }

    fn memcpy_d2h_into(&mut self, src: DevicePtr, buf: &mut [u8]) -> CudaResult<()> {
        self.ctx()?.memcpy_d2h_into(src, buf)
    }

    fn memcpy_d2d(&mut self, dst: DevicePtr, src: DevicePtr, size: u32) -> CudaResult<()> {
        self.ctx()?.memcpy_d2d(dst, src, size)
    }

    fn memset(&mut self, dst: DevicePtr, value: u8, size: u32) -> CudaResult<()> {
        self.ctx()?.memset(dst, value, size)
    }

    fn launch(
        &mut self,
        kernel: &str,
        grid: Dim3,
        block: Dim3,
        _shared_bytes: u32,
        stream: u32,
        args: &[u8],
    ) -> CudaResult<()> {
        self.ctx()?.launch(kernel, grid, block, args, stream)
    }

    fn thread_synchronize(&mut self) -> CudaResult<()> {
        self.ctx()?.synchronize()
    }

    fn finalize(&mut self) -> CudaResult<()> {
        self.ctx = None;
        Ok(())
    }
}

impl CudaRuntimeAsyncExt for LocalRuntime {
    fn stream_create(&mut self) -> CudaResult<u32> {
        self.ctx()?.stream_create()
    }

    fn stream_synchronize(&mut self, stream: u32) -> CudaResult<()> {
        self.ctx()?.stream_synchronize(stream)
    }

    fn stream_destroy(&mut self, stream: u32) -> CudaResult<()> {
        self.ctx()?.stream_destroy(stream)
    }

    fn memcpy_h2d_async(&mut self, dst: DevicePtr, data: &[u8], stream: u32) -> CudaResult<()> {
        self.ctx()?.memcpy_h2d_async(dst, data, stream)
    }

    fn memcpy_d2h_async(&mut self, src: DevicePtr, size: u32, stream: u32) -> CudaResult<Vec<u8>> {
        self.ctx()?.memcpy_d2h_async(src, size, stream)
    }

    fn memcpy_d2h_async_into(
        &mut self,
        src: DevicePtr,
        buf: &mut [u8],
        stream: u32,
    ) -> CudaResult<()> {
        self.ctx()?.memcpy_d2h_async_into(src, buf, stream)
    }

    fn event_create(&mut self) -> CudaResult<u32> {
        self.ctx()?.event_create()
    }

    fn event_record(&mut self, event: u32, stream: u32) -> CudaResult<()> {
        self.ctx()?.event_record(event, stream)
    }

    fn event_synchronize(&mut self, event: u32) -> CudaResult<()> {
        self.ctx()?.event_synchronize(event)
    }

    fn event_elapsed_ms(&mut self, start: u32, end: u32) -> CudaResult<f32> {
        self.ctx()?.event_elapsed_ms(start, end)
    }

    fn event_destroy(&mut self, event: u32) -> CudaResult<()> {
        self.ctx()?.event_destroy(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::time::{virtual_clock, wall_clock};
    use rcuda_core::{ArgPack, Clock as _};
    use rcuda_gpu::module::build_module;

    fn functional() -> LocalRuntime {
        LocalRuntime::new(GpuDevice::tesla_c1060_functional(), wall_clock())
    }

    #[test]
    fn calls_before_initialize_fail() {
        let mut rt = functional();
        assert_eq!(rt.malloc(16), Err(CudaError::InitializationError));
        assert_eq!(rt.thread_synchronize(), Err(CudaError::InitializationError));
    }

    #[test]
    fn vec_add_end_to_end() {
        let mut rt = functional();
        rt.initialize(&build_module(&["vec_add"], 0)).unwrap();
        let a = rt.malloc(16).unwrap();
        let b = rt.malloc(16).unwrap();
        let c = rt.malloc(16).unwrap();
        rt.memcpy_h2d(a, &f32s(&[1.0, 2.0, 3.0, 4.0])).unwrap();
        rt.memcpy_h2d(b, &f32s(&[4.0, 3.0, 2.0, 1.0])).unwrap();
        let args = ArgPack::new()
            .push_ptr(a)
            .push_ptr(b)
            .push_ptr(c)
            .push_u32(4)
            .into_bytes();
        rt.launch("vec_add", Dim3::x(1), Dim3::x(4), 0, 0, &args)
            .unwrap();
        let out = rt.memcpy_d2h(c, 16).unwrap();
        assert_eq!(out, f32s(&[5.0; 4]));
        for p in [a, b, c] {
            rt.free(p).unwrap();
        }
        rt.finalize().unwrap();
        assert_eq!(rt.malloc(4), Err(CudaError::InitializationError));
    }

    #[test]
    fn local_runtime_pays_context_init_on_virtual_clock() {
        let clock = virtual_clock();
        let mut rt = LocalRuntime::new_phantom(GpuDevice::tesla_c1060(), clock.clone());
        rt.initialize(&build_module(&["vec_add"], 0)).unwrap();
        assert!(
            clock.now().as_secs_f64() > 0.1,
            "local apps pay the CUDA init the daemon pre-pays"
        );
    }

    #[test]
    fn memcpy_d2h_into_matches_owned_read() {
        let mut rt = functional();
        rt.initialize(&build_module(&[], 0)).unwrap();
        let p = rt.malloc(8).unwrap();
        rt.memcpy_h2d(p, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let mut buf = [0u8; 8];
        rt.memcpy_d2h_into(p, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
        let s = rt.stream_create().unwrap();
        let mut async_buf = [0u8; 8];
        rt.memcpy_d2h_async_into(p, &mut async_buf, s).unwrap();
        rt.stream_synchronize(s).unwrap();
        assert_eq!(async_buf, buf);
    }

    #[test]
    fn properties_report_the_c1060() {
        let mut rt = functional();
        rt.initialize(&build_module(&[], 0)).unwrap();
        let p = rt.device_properties().unwrap();
        assert_eq!((p.cc_major, p.cc_minor), (1, 3));
    }

    fn f32s(v: &[f32]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }
}
