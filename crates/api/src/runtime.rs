//! The [`CudaRuntime`] trait: the API surface the paper remotes.
//!
//! The surface is split in two. [`CudaRuntime`] is the paper-faithful
//! synchronous API — the operations of Table I plus the small synchronous
//! extensions (`memset`, device-to-device copies, device queries) — which is
//! everything the case studies and the estimation model need.
//! [`CudaRuntimeAsyncExt`] layers the stream/event/async-memcpy extension on
//! top (the paper's declared future work); code that only drives the
//! synchronous surface never sees it.

use rcuda_core::{CudaResult, DeviceProperties, DevicePtr, Dim3};

/// The CUDA Runtime API subset used by the paper's case studies.
///
/// Methods map 1:1 onto the operations of Table I:
///
/// | method | CUDA call | Table I row |
/// |---|---|---|
/// | [`initialize`](CudaRuntime::initialize) | module registration | Initialization |
/// | [`malloc`](CudaRuntime::malloc) | `cudaMalloc` | cudaMalloc |
/// | [`memcpy_h2d`](CudaRuntime::memcpy_h2d) | `cudaMemcpy(H→D)` | cudaMemcpy (to device) |
/// | [`memcpy_d2h`](CudaRuntime::memcpy_d2h) | `cudaMemcpy(D→H)` | cudaMemcpy (to host) |
/// | [`launch`](CudaRuntime::launch) | `cudaLaunch` | cudaLaunch |
/// | [`free`](CudaRuntime::free) | `cudaFree` | cudaFree |
/// | [`finalize`](CudaRuntime::finalize) | — | Finalization stage |
pub trait CudaRuntime {
    /// Initialization stage: establish the session and ship the GPU module
    /// (kernels + statically allocated variables).
    fn initialize(&mut self, module: &[u8]) -> CudaResult<()>;

    /// `cudaGetDeviceProperties`.
    fn device_properties(&mut self) -> CudaResult<DeviceProperties>;

    /// `cudaMalloc(size)`.
    fn malloc(&mut self, size: u32) -> CudaResult<DevicePtr>;

    /// `cudaFree(ptr)`.
    fn free(&mut self, ptr: DevicePtr) -> CudaResult<()>;

    /// Synchronous `cudaMemcpy`, host → device.
    fn memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) -> CudaResult<()>;

    /// Synchronous `cudaMemcpy`, device → host.
    fn memcpy_d2h(&mut self, src: DevicePtr, size: u32) -> CudaResult<Vec<u8>>;

    /// Synchronous `cudaMemcpy`, device → host, straight into a
    /// caller-provided buffer (`buf.len()` is the transfer size) — the
    /// closest analogue of the real `cudaMemcpy` signature, where the host
    /// pointer is the application's own.
    ///
    /// Prefer this in loops: implementations override it to land the bytes
    /// without any intermediate allocation, so a steady-state transfer loop
    /// touches the heap zero times. The default just wraps
    /// [`memcpy_d2h`](CudaRuntime::memcpy_d2h) for implementors that have
    /// no cheaper path.
    fn memcpy_d2h_into(&mut self, src: DevicePtr, buf: &mut [u8]) -> CudaResult<()> {
        let data = self.memcpy_d2h(src, buf.len() as u32)?;
        buf.copy_from_slice(&data);
        Ok(())
    }

    /// Synchronous `cudaMemcpy`, device → device.
    fn memcpy_d2d(&mut self, dst: DevicePtr, src: DevicePtr, size: u32) -> CudaResult<()>;

    /// `cudaMemset(dst, value, size)`.
    fn memset(&mut self, dst: DevicePtr, value: u8, size: u32) -> CudaResult<()>;

    /// `cudaLaunch` with its configuration (grid, block, dynamic shared
    /// memory, stream) and the packed argument block.
    fn launch(
        &mut self,
        kernel: &str,
        grid: Dim3,
        block: Dim3,
        shared_bytes: u32,
        stream: u32,
        args: &[u8],
    ) -> CudaResult<()>;

    /// `cudaThreadSynchronize`.
    fn thread_synchronize(&mut self) -> CudaResult<()>;

    /// Finalization stage: release the session's resources.
    fn finalize(&mut self) -> CudaResult<()>;
}

/// The stream/event/async-memcpy extension — the paper's declared future
/// work ("providing the application with the whole CUDA Runtime API,
/// including ... asynchronous functions", §VII).
///
/// Split from [`CudaRuntime`] so the paper-faithful synchronous surface
/// stands alone: the seven-phase executors, the estimation model and the
/// batching pipeline only require the base trait, while overlap studies
/// opt into this one.
pub trait CudaRuntimeAsyncExt: CudaRuntime {
    /// `cudaStreamCreate`.
    fn stream_create(&mut self) -> CudaResult<u32>;

    /// `cudaStreamSynchronize`.
    fn stream_synchronize(&mut self, stream: u32) -> CudaResult<()>;

    /// `cudaStreamDestroy`.
    fn stream_destroy(&mut self, stream: u32) -> CudaResult<()>;

    /// Asynchronous `cudaMemcpy` host → device on a stream.
    fn memcpy_h2d_async(&mut self, dst: DevicePtr, data: &[u8], stream: u32) -> CudaResult<()>;

    /// Asynchronous `cudaMemcpy` device → host on a stream.
    ///
    /// Functional simplification: the bytes are returned immediately but are
    /// only guaranteed meaningful after the stream synchronizes (matching
    /// CUDA's contract that the host buffer is undefined until then).
    fn memcpy_d2h_async(&mut self, src: DevicePtr, size: u32, stream: u32) -> CudaResult<Vec<u8>>;

    /// Asynchronous `cudaMemcpy` device → host on a stream, straight into a
    /// caller-provided buffer (same completion contract as
    /// [`memcpy_d2h_async`](CudaRuntimeAsyncExt::memcpy_d2h_async), without
    /// the intermediate allocation when overridden).
    fn memcpy_d2h_async_into(
        &mut self,
        src: DevicePtr,
        buf: &mut [u8],
        stream: u32,
    ) -> CudaResult<()> {
        let data = self.memcpy_d2h_async(src, buf.len() as u32, stream)?;
        buf.copy_from_slice(&data);
        Ok(())
    }

    /// `cudaEventCreate`.
    fn event_create(&mut self) -> CudaResult<u32>;

    /// `cudaEventRecord(event, stream)`.
    fn event_record(&mut self, event: u32, stream: u32) -> CudaResult<()>;

    /// `cudaEventSynchronize(event)`.
    fn event_synchronize(&mut self, event: u32) -> CudaResult<()>;

    /// `cudaEventElapsedTime(start, end)` in milliseconds.
    fn event_elapsed_ms(&mut self, start: u32, end: u32) -> CudaResult<f32>;

    /// `cudaEventDestroy(event)`.
    fn event_destroy(&mut self, event: u32) -> CudaResult<()>;
}
