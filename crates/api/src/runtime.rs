//! The [`CudaRuntime`] trait: the API surface the paper remotes.

use rcuda_core::{CudaResult, DeviceProperties, DevicePtr, Dim3};

/// The CUDA Runtime API subset used by the paper's case studies, plus the
/// stream/async extension (the paper's declared future work).
///
/// Methods map 1:1 onto the operations of Table I:
///
/// | method | CUDA call | Table I row |
/// |---|---|---|
/// | [`initialize`](CudaRuntime::initialize) | module registration | Initialization |
/// | [`malloc`](CudaRuntime::malloc) | `cudaMalloc` | cudaMalloc |
/// | [`memcpy_h2d`](CudaRuntime::memcpy_h2d) | `cudaMemcpy(H→D)` | cudaMemcpy (to device) |
/// | [`memcpy_d2h`](CudaRuntime::memcpy_d2h) | `cudaMemcpy(D→H)` | cudaMemcpy (to host) |
/// | [`launch`](CudaRuntime::launch) | `cudaLaunch` | cudaLaunch |
/// | [`free`](CudaRuntime::free) | `cudaFree` | cudaFree |
/// | [`finalize`](CudaRuntime::finalize) | — | Finalization stage |
pub trait CudaRuntime {
    /// Initialization stage: establish the session and ship the GPU module
    /// (kernels + statically allocated variables).
    fn initialize(&mut self, module: &[u8]) -> CudaResult<()>;

    /// `cudaGetDeviceProperties`.
    fn device_properties(&mut self) -> CudaResult<DeviceProperties>;

    /// `cudaMalloc(size)`.
    fn malloc(&mut self, size: u32) -> CudaResult<DevicePtr>;

    /// `cudaFree(ptr)`.
    fn free(&mut self, ptr: DevicePtr) -> CudaResult<()>;

    /// Synchronous `cudaMemcpy`, host → device.
    fn memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) -> CudaResult<()>;

    /// Synchronous `cudaMemcpy`, device → host.
    fn memcpy_d2h(&mut self, src: DevicePtr, size: u32) -> CudaResult<Vec<u8>>;

    /// Synchronous `cudaMemcpy`, device → device.
    fn memcpy_d2d(&mut self, dst: DevicePtr, src: DevicePtr, size: u32) -> CudaResult<()>;

    /// `cudaMemset(dst, value, size)`.
    fn memset(&mut self, dst: DevicePtr, value: u8, size: u32) -> CudaResult<()>;

    /// `cudaLaunch` with its configuration (grid, block, dynamic shared
    /// memory, stream) and the packed argument block.
    fn launch(
        &mut self,
        kernel: &str,
        grid: Dim3,
        block: Dim3,
        shared_bytes: u32,
        stream: u32,
        args: &[u8],
    ) -> CudaResult<()>;

    /// `cudaThreadSynchronize`.
    fn thread_synchronize(&mut self) -> CudaResult<()>;

    /// `cudaStreamCreate` (extension).
    fn stream_create(&mut self) -> CudaResult<u32>;

    /// `cudaStreamSynchronize` (extension).
    fn stream_synchronize(&mut self, stream: u32) -> CudaResult<()>;

    /// `cudaStreamDestroy` (extension).
    fn stream_destroy(&mut self, stream: u32) -> CudaResult<()>;

    /// Asynchronous `cudaMemcpy` host → device on a stream (extension).
    fn memcpy_h2d_async(&mut self, dst: DevicePtr, data: &[u8], stream: u32) -> CudaResult<()>;

    /// Asynchronous `cudaMemcpy` device → host on a stream (extension).
    ///
    /// Functional simplification: the bytes are returned immediately but are
    /// only guaranteed meaningful after the stream synchronizes (matching
    /// CUDA's contract that the host buffer is undefined until then).
    fn memcpy_d2h_async(&mut self, src: DevicePtr, size: u32, stream: u32) -> CudaResult<Vec<u8>>;

    /// `cudaEventCreate` (extension).
    fn event_create(&mut self) -> CudaResult<u32>;

    /// `cudaEventRecord(event, stream)` (extension).
    fn event_record(&mut self, event: u32, stream: u32) -> CudaResult<()>;

    /// `cudaEventSynchronize(event)` (extension).
    fn event_synchronize(&mut self, event: u32) -> CudaResult<()>;

    /// `cudaEventElapsedTime(start, end)` in milliseconds (extension).
    fn event_elapsed_ms(&mut self, start: u32, end: u32) -> CudaResult<f32>;

    /// `cudaEventDestroy(event)` (extension).
    fn event_destroy(&mut self, event: u32) -> CudaResult<()>;

    /// Finalization stage: release the session's resources.
    fn finalize(&mut self) -> CudaResult<()>;
}
