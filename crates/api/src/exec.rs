//! The paper's seven execution phases, generic over any [`CudaRuntime`].
//!
//! §III enumerates the phases of a remote kernel execution (Fig. 2 shows
//! them for the matrix product): initialization, memory allocation, input
//! transfer, kernel execution, output transfer, memory release,
//! finalization. Implementing them once against the trait means the same
//! driver produces the paper's "GPU" (local) and "GigaE"/"40GI" (remote)
//! measurements — only the runtime behind the trait changes.

use rcuda_core::{ArgPack, Clock, CudaResult, Dim3, SimTime};
use rcuda_gpu::module::{build_module, fft_module, mm_module};

use crate::runtime::CudaRuntime;

/// Result of a phased execution: the output payload plus per-phase timings
/// sampled from the caller's clock (wall or virtual).
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Output bytes (the C matrix, or the transformed batch).
    pub output: Vec<u8>,
    /// `(phase name, duration)` in execution order.
    pub phases: Vec<(&'static str, SimTime)>,
}

impl ExecReport {
    /// Total time across all phases.
    pub fn total(&self) -> SimTime {
        self.phases.iter().map(|&(_, d)| d).sum()
    }

    /// Duration of a named phase (0 if absent).
    pub fn phase(&self, name: &str) -> SimTime {
        self.phases
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, d)| d)
            .unwrap_or(SimTime::ZERO)
    }
}

struct PhaseTimer<'a> {
    clock: &'a dyn Clock,
    last: SimTime,
    phases: Vec<(&'static str, SimTime)>,
}

impl<'a> PhaseTimer<'a> {
    fn new(clock: &'a dyn Clock) -> Self {
        PhaseTimer {
            last: clock.now(),
            clock,
            phases: Vec::new(),
        }
    }

    fn lap(&mut self, name: &'static str) {
        let now = self.clock.now();
        self.phases.push((name, now.saturating_sub(self.last)));
        self.last = now;
    }
}

/// Volkov's SGEMM works on 64×16 C tiles with 16×4 thread blocks; reproduce
/// that launch geometry.
fn mm_geometry(m: u32) -> (Dim3, Dim3) {
    let grid = Dim3::xy(m.div_ceil(64).max(1), m.div_ceil(16).max(1));
    let block = Dim3::xy(16, 4);
    (grid, block)
}

/// One 512-point FFT per thread block of 64 threads.
fn fft_geometry(batch: u32) -> (Dim3, Dim3) {
    (Dim3::x(batch.max(1)), Dim3::x(64))
}

/// Run the MM case study (`C = A · B`, square `m×m`, row-major f32 bytes)
/// through the seven phases. `a` and `b` must each hold `4·m²` bytes.
pub fn run_matmul_bytes(
    rt: &mut dyn CudaRuntime,
    clock: &dyn Clock,
    m: u32,
    a: &[u8],
    b: &[u8],
) -> CudaResult<ExecReport> {
    let bytes = m * m * 4;
    assert_eq!(a.len() as u32, bytes, "A must be 4·m² bytes");
    assert_eq!(b.len() as u32, bytes, "B must be 4·m² bytes");
    let mut t = PhaseTimer::new(clock);

    rt.initialize(&mm_module())?;
    t.lap("initialization");

    let pa = rt.malloc(bytes)?;
    let pb = rt.malloc(bytes)?;
    let pc = rt.malloc(bytes)?;
    t.lap("allocation");

    rt.memcpy_h2d(pa, a)?;
    rt.memcpy_h2d(pb, b)?;
    t.lap("input transfer");

    let (grid, block) = mm_geometry(m);
    let args = ArgPack::new()
        .push_ptr(pa)
        .push_ptr(pb)
        .push_ptr(pc)
        .push_u32(m)
        .push_u32(m)
        .push_u32(m)
        .into_bytes();
    rt.launch("sgemmNN", grid, block, 0, 0, &args)?;
    rt.thread_synchronize()?;
    t.lap("kernel");

    let output = rt.memcpy_d2h(pc, bytes)?;
    t.lap("output transfer");

    rt.free(pa)?;
    rt.free(pb)?;
    rt.free(pc)?;
    t.lap("release");

    rt.finalize()?;
    t.lap("finalization");

    Ok(ExecReport {
        output,
        phases: t.phases,
    })
}

/// Run the FFT case study (`batch` in-place 512-point transforms; `input`
/// must hold `4096·batch` bytes of complex data) through the seven phases.
pub fn run_fft_bytes(
    rt: &mut dyn CudaRuntime,
    clock: &dyn Clock,
    batch: u32,
    input: &[u8],
) -> CudaResult<ExecReport> {
    let bytes = batch * 512 * 8;
    assert_eq!(input.len() as u32, bytes, "input must be 4096·batch bytes");
    let mut t = PhaseTimer::new(clock);

    rt.initialize(&fft_module())?;
    t.lap("initialization");

    let p = rt.malloc(bytes)?;
    t.lap("allocation");

    rt.memcpy_h2d(p, input)?;
    t.lap("input transfer");

    let (grid, block) = fft_geometry(batch);
    let args = ArgPack::new().push_ptr(p).push_u32(batch).into_bytes();
    rt.launch("fft512_batch", grid, block, 0, 0, &args)?;
    rt.thread_synchronize()?;
    t.lap("kernel");

    let output = rt.memcpy_d2h(p, bytes)?;
    t.lap("output transfer");

    rt.free(p)?;
    t.lap("release");

    rt.finalize()?;
    t.lap("finalization");

    Ok(ExecReport {
        output,
        phases: t.phases,
    })
}

/// Run the N-body workload (`n` bodies, packed 4-f32 layout; `input` must
/// hold `16·n` bytes) through the seven phases — the third workload family
/// (paper future work: "a wide range of applications").
pub fn run_nbody_bytes(
    rt: &mut dyn CudaRuntime,
    clock: &dyn Clock,
    n: u32,
    input: &[u8],
    softening: f32,
) -> CudaResult<ExecReport> {
    assert_eq!(input.len() as u32, 16 * n, "input must be 16·n bytes");
    let mut t = PhaseTimer::new(clock);

    rt.initialize(&build_module(&["nbody_accel"], 0))?;
    t.lap("initialization");

    let bodies = rt.malloc(16 * n)?;
    let accel = rt.malloc(12 * n)?;
    t.lap("allocation");

    rt.memcpy_h2d(bodies, input)?;
    t.lap("input transfer");

    let args = ArgPack::new()
        .push_ptr(bodies)
        .push_ptr(accel)
        .push_u32(n)
        .push_f32(softening)
        .into_bytes();
    rt.launch(
        "nbody_accel",
        Dim3::x(n.div_ceil(256).max(1)),
        Dim3::x(256),
        0,
        0,
        &args,
    )?;
    rt.thread_synchronize()?;
    t.lap("kernel");

    let output = rt.memcpy_d2h(accel, 12 * n)?;
    t.lap("output transfer");

    rt.free(bodies)?;
    rt.free(accel)?;
    t.lap("release");

    rt.finalize()?;
    t.lap("finalization");

    Ok(ExecReport {
        output,
        phases: t.phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalRuntime;
    use rcuda_core::time::{virtual_clock, wall_clock};
    use rcuda_gpu::GpuDevice;
    use rcuda_kernels::complex::{bytes_to_complex, complex_to_bytes};
    use rcuda_kernels::fft::fft_batch_512;
    use rcuda_kernels::matrix::sgemm_naive;
    use rcuda_kernels::workload::{fft_input, matrix_pair};

    fn f32s(v: &[f32]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    #[test]
    fn matmul_phases_produce_reference_result() {
        let clock = wall_clock();
        let mut rt = LocalRuntime::new(GpuDevice::tesla_c1060_functional(), clock.clone());
        let m = 32;
        let (a, b) = matrix_pair(m, 3);
        let report = run_matmul_bytes(
            &mut rt,
            &*clock,
            m as u32,
            &f32s(a.as_slice()),
            &f32s(b.as_slice()),
        )
        .unwrap();
        assert_eq!(report.phases.len(), 7, "seven phases, §III");
        let mut expect = vec![0.0f32; m * m];
        sgemm_naive(m, m, m, a.as_slice(), b.as_slice(), &mut expect);
        let got: Vec<f32> = report
            .output
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let diff = got
            .iter()
            .zip(&expect)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-3, "diff {diff}");
    }

    #[test]
    fn fft_phases_produce_reference_result() {
        let clock = wall_clock();
        let mut rt = LocalRuntime::new(GpuDevice::tesla_c1060_functional(), clock.clone());
        let batch = 3usize;
        let input = fft_input(batch, 9);
        let report =
            run_fft_bytes(&mut rt, &*clock, batch as u32, &complex_to_bytes(&input)).unwrap();
        let got = bytes_to_complex(&report.output).unwrap();
        let mut expect = input;
        fft_batch_512(&mut expect);
        assert_eq!(got, expect, "local GPU result must be bit-identical");
    }

    #[test]
    fn simulated_timing_attributes_kernel_and_transfers() {
        let clock = virtual_clock();
        let mut rt = LocalRuntime::new_phantom(GpuDevice::tesla_c1060(), clock.clone());
        let m = 4096u32;
        let zeros = vec![0u8; (m * m * 4) as usize];
        let report = run_matmul_bytes(&mut rt, &*clock, m, &zeros, &zeros).unwrap();
        // Kernel: 2·4096³ / 375e9 ≈ 0.367 s.
        let k = report.phase("kernel").as_secs_f64();
        assert!((k - 0.367).abs() < 0.01, "kernel {k}");
        // Input transfer: 2 × 64 MiB over PCIe at 5743 MiB/s ≈ 22.3 ms.
        let i = report.phase("input transfer").as_millis_f64();
        assert!((i - 22.3).abs() < 0.5, "input {i}");
        // Initialization pays the CUDA context init (local runtime).
        assert!(report.phase("initialization").as_secs_f64() > 0.1);
        // The total adds up.
        assert_eq!(report.total(), clock.now());
    }

    #[test]
    fn nbody_phases_produce_reference_result() {
        use rcuda_kernels::nbody::{nbody_accelerations, nbody_input};
        let clock = wall_clock();
        let mut rt = LocalRuntime::new(GpuDevice::tesla_c1060_functional(), clock.clone());
        let n = 24u32;
        let bodies = nbody_input(n as usize, 5);
        let report = run_nbody_bytes(&mut rt, &*clock, n, &f32s(&bodies), 0.05).unwrap();
        assert_eq!(report.phases.len(), 7);
        let got: Vec<f32> = report
            .output
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut expect = vec![0.0f32; 3 * n as usize];
        nbody_accelerations(&bodies, &mut expect, 0.05);
        assert_eq!(got, expect);
    }

    #[test]
    fn geometry_covers_the_problem() {
        let (grid, block) = mm_geometry(4096);
        assert_eq!(grid, Dim3::xy(64, 256));
        assert_eq!(block, Dim3::xy(16, 4));
        // Remainders round up.
        let (grid, _) = mm_geometry(100);
        assert_eq!(grid, Dim3::xy(2, 7));
        let (grid, block) = fft_geometry(2048);
        assert_eq!(grid, Dim3::x(2048));
        assert_eq!(block, Dim3::x(64));
    }
}
