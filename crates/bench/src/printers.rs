//! Text renderers: one function per table/figure of the paper, each
//! returning the regenerated artifact as a printable string.

use rcuda_core::{CaseStudy, Family};
use rcuda_model::chart::ascii_chart;
use rcuda_model::figures::{execution_figure, latency_figure};
use rcuda_model::render::{millis, millis1, percent, secs, TextTable};
use rcuda_model::tables::{
    table2, table3, table4, table5, table5_compressed, table6, table6_compressed,
};
use rcuda_model::SimulatedTestbed;
use rcuda_netsim::{Compressibility, NetworkId};
use rcuda_proto::sizes::OpKind;

/// Time/size formatting convention per family: MM rows print seconds,
/// FFT rows print milliseconds (as the paper does).
fn fmt_time(family: Family, t: rcuda_core::SimTime) -> String {
    match family {
        Family::MatMul => secs(t),
        Family::Fft => millis(t),
    }
}

fn family_label(family: Family) -> &'static str {
    match family {
        Family::MatMul => "MM (times in s)",
        Family::Fft => "FFT (times in ms)",
    }
}

fn size_header(family: Family) -> &'static str {
    match family {
        Family::MatMul => "Dim",
        Family::Fft => "Batch",
    }
}

/// Table I: breakdown of the remote API messages.
pub fn print_table1() -> String {
    let mut out = String::from("Table I — Breakdown of some remote API messages\n\n");
    let mut table = TextTable::new(vec![
        "Operation",
        "Field",
        "Send (bytes)",
        "Receive (bytes)",
    ]);
    for op in OpKind::ALL {
        for (i, row) in op.fields().iter().enumerate() {
            table.row(vec![
                if i == 0 {
                    op.name().to_string()
                } else {
                    String::new()
                },
                row.field.to_string(),
                row.send.map(|s| s.to_string()).unwrap_or_default(),
                row.recv.map(|s| s.to_string()).unwrap_or_default(),
            ]);
        }
        let totals = op.totals();
        table.row(vec![
            String::new(),
            "Total".to_string(),
            totals.send.to_string(),
            totals.recv.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Table II: estimated transfer times for the remote API calls.
pub fn print_table2() -> String {
    let mut out = String::from("Table II — Estimated transfer times for the remote API calls\n");
    out.push_str(
        "(payload slopes in ns per unit, intercepts in µs; unit is m² for MM, n for FFT)\n\n",
    );
    for family in Family::ALL {
        let t = table2(family);
        let unit = match family {
            Family::MatMul => "m²",
            Family::Fft => "n",
        };
        out.push_str(&format!("{}:\n", family_label(family)));
        let mut table = TextTable::new(vec![
            "Operation",
            "Send (bytes)",
            "Recv (bytes)",
            "GigaE send (µs)",
            "GigaE recv (µs)",
            "40GI send (µs)",
            "40GI recv (µs)",
        ]);
        for row in &t.rows {
            table.row(vec![
                row.op.clone(),
                row.send_bytes.render(unit),
                row.recv_bytes.render(unit),
                row.gigae.0.render(unit),
                row.gigae.1.render(unit),
                row.ib40.0.render(unit),
                row.ib40.1.render(unit),
            ]);
        }
        table.row(vec![
            "Total".to_string(),
            String::new(),
            String::new(),
            t.total_gigae.0.render(unit),
            t.total_gigae.1.render(unit),
            t.total_ib40.0.render(unit),
            t.total_ib40.1.render(unit),
        ]);
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Tables III / V: per-memcpy payload transfer times.
fn print_transfer_table(title: &str, nets: &[NetworkId]) -> String {
    let mut out = format!("{title}\n\n");
    for family in Family::ALL {
        let rows = match nets.len() {
            2 => table3(family),
            _ => table5(family),
        };
        out.push_str(&format!(
            "{}:\n",
            match family {
                Family::MatMul => "MM",
                Family::Fft => "FFT",
            }
        ));
        let mut headers = vec![size_header(family).to_string(), "Data (MiB)".to_string()];
        headers.extend(nets.iter().map(|n| format!("{n} (ms)")));
        let mut table = TextTable::new(headers);
        for row in rows {
            let mut cells = vec![row.case.size().to_string(), format!("{:.0}", row.data_mib)];
            cells.extend(row.times.iter().map(|(_, t)| millis1(*t)));
            table.row(cells);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Table III: the measured networks.
pub fn print_table3() -> String {
    print_transfer_table(
        "Table III — Estimated transfer times for each memory copy on our networks",
        &NetworkId::MEASURED,
    )
}

/// Table V: the projected HPC networks.
pub fn print_table5() -> String {
    print_transfer_table(
        "Table V — Estimated transfer times for each memory copy on the target networks",
        &NetworkId::TARGETS,
    )
}

/// Table V′: the Table III/V transfer arithmetic with payload
/// compressibility as an extra axis, over all seven networks.
pub fn print_table5c() -> String {
    let mut out = String::from(
        "Table V' — Estimated transfer times with the adaptive codec, by compressibility\n\
         (dense random reproduces Tables III/V; only GigaE crosses the codec break-even)\n\n",
    );
    for family in Family::ALL {
        let rows = table5_compressed(family);
        out.push_str(&format!(
            "{}:\n",
            match family {
                Family::MatMul => "MM",
                Family::Fft => "FFT",
            }
        ));
        let mut headers = vec![
            size_header(family).to_string(),
            "Data (MiB)".to_string(),
            "Scenario".to_string(),
        ];
        headers.extend(NetworkId::ALL.iter().map(|n| format!("{n} (ms)")));
        let mut table = TextTable::new(headers);
        for row in rows {
            for (j, scenario) in Compressibility::ALL.iter().enumerate() {
                let mut cells = vec![
                    if j == 0 {
                        row.case.size().to_string()
                    } else {
                        String::new()
                    },
                    if j == 0 {
                        format!("{:.0}", row.data_mib)
                    } else {
                        String::new()
                    },
                    scenario.label().to_string(),
                ];
                cells.extend(row.times.iter().map(|(_, t)| millis1(t[j])));
                table.row(cells);
            }
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Table IV: cross-validation of both estimation models.
pub fn print_table4(testbed: &SimulatedTestbed) -> String {
    let mut out = String::from(
        "Table IV — Cross-validation of both estimation models (simulated testbed)\n\n",
    );
    for family in Family::ALL {
        let rows = table4(family, testbed);
        out.push_str(&format!("{}:\n", family_label(family)));
        let mut table = TextTable::new(vec![
            size_header(family),
            "Meas GigaE",
            "Fixed",
            "Est 40GI",
            "Error",
            "Meas 40GI",
            "Fixed",
            "Est GigaE",
            "Error",
        ]);
        for row in rows {
            table.row(vec![
                row.case.size().to_string(),
                fmt_time(family, row.gigae_model.measured_src),
                fmt_time(family, row.gigae_model.fixed),
                fmt_time(family, row.gigae_model.estimated_dst),
                percent(row.gigae_model.error),
                fmt_time(family, row.ib40_model.measured_src),
                fmt_time(family, row.ib40_model.fixed),
                fmt_time(family, row.ib40_model.estimated_dst),
                percent(row.ib40_model.error),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Table VI: measured vs estimated execution times over all networks.
pub fn print_table6(testbed: &SimulatedTestbed) -> String {
    let mut out = String::from(
        "Table VI — Measured vs. estimated execution times over several networks\n\
         (10GE/10GI columns printed in bandwidth order; the paper's print swaps them)\n\n",
    );
    for family in Family::ALL {
        let rows = table6(family, testbed);
        out.push_str(&format!("{}:\n", family_label(family)));
        let mut headers = vec![
            size_header(family).to_string(),
            "CPU".to_string(),
            "GPU".to_string(),
            "GigaE".to_string(),
            "40GI".to_string(),
        ];
        for model in ["GE-model", "IB-model"] {
            for net in NetworkId::TARGETS {
                headers.push(format!("{net} ({model})"));
            }
        }
        let mut table = TextTable::new(headers);
        for row in &rows {
            let mut cells = vec![
                row.case.size().to_string(),
                fmt_time(family, row.cpu),
                fmt_time(family, row.gpu),
                fmt_time(family, row.gigae),
                fmt_time(family, row.ib40),
            ];
            for (_, t) in &row.est_gigae_model {
                cells.push(fmt_time(family, *t));
            }
            for (_, t) in &row.est_ib40_model {
                cells.push(fmt_time(family, *t));
            }
            table.row(cells);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Table VI′: the GigaE-model execution projection with the adaptive
/// codec enabled, one row per compressibility scenario.
pub fn print_table6c(testbed: &SimulatedTestbed) -> String {
    let mut out = String::from(
        "Table VI' — Estimated execution times with the adaptive codec, by compressibility\n\
         (GigaE-derived fixed times; control traffic never compresses, only the bulk term moves)\n\n",
    );
    for family in Family::ALL {
        let rows = table6_compressed(family, testbed);
        out.push_str(&format!("{}:\n", family_label(family)));
        let mut headers = vec![size_header(family).to_string(), "Scenario".to_string()];
        headers.extend(NetworkId::ALL.iter().map(|n| n.to_string()));
        let mut table = TextTable::new(headers);
        for row in &rows {
            let mut cells = vec![
                if row.scenario == Compressibility::ALL[0] {
                    row.case.size().to_string()
                } else {
                    String::new()
                },
                row.scenario.label().to_string(),
            ];
            for (_, t) in &row.est {
                cells.push(fmt_time(family, *t));
            }
            table.row(cells);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Uncertainty report: Table IV error bars under measurement noise
/// (Monte-Carlo over noisy testbed realizations — the error-propagation
/// analysis the paper's stddev reporting implies but does not carry out).
pub fn print_uncertainty(noise_rel: f64, realizations: u64) -> String {
    use rcuda_model::montecarlo::error_bar;
    let mut out = format!(
        "Cross-validation error bars under {:.1}% measurement noise \
         ({realizations} realizations)\n\n",
        noise_rel * 100.0
    );
    for family in Family::ALL {
        out.push_str(&format!("{}:\n", family_label(family)));
        let mut table = TextTable::new(vec![
            size_header(family),
            "GigaE-model error",
            "40GI-model error",
        ]);
        for case in CaseStudy::standard_grid(family) {
            let ge = error_bar(
                case,
                NetworkId::GigaE,
                NetworkId::Ib40G,
                noise_rel,
                realizations,
            );
            let ib = error_bar(
                case,
                NetworkId::Ib40G,
                NetworkId::GigaE,
                noise_rel,
                realizations,
            );
            let fmt = |d: &rcuda_model::montecarlo::Distribution| {
                format!("{:+.2}% ± {:.2}pp", d.mean * 100.0, d.stddev * 100.0)
            };
            table.row(vec![
                case.size().to_string(),
                fmt(&ge.error),
                fmt(&ib.error),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(
        "reading: the error bars (from measurement noise) are tiny compared \
         with the FFT/GigaE biases - those are systematic, the TCP-window \
         effect, not noise - while the MM biases sit within a percent. The \
         paper's Table IV interpretation, now with uncertainty attached.\n",
    );
    out
}

/// Pipelined-submission ablation table: round trips removed per case study
/// when deferred calls batch into the in-flight window (depth 4), priced on
/// both measured networks.
pub fn print_pipeline_table(depth: usize) -> String {
    use rcuda_model::pipeline::estimate_pipelined;
    let mut out = format!(
        "Pipelined call submission — network flushes per execution \
         (window depth {depth})\n\n"
    );
    for family in Family::ALL {
        out.push_str(&format!("{}:\n", family_label(family)));
        let mut table = TextTable::new(vec![
            size_header(family).to_string(),
            "Calls".to_string(),
            "Flushes".to_string(),
            "RTs removed".to_string(),
            "GigaE per-call".to_string(),
            "GigaE pipelined".to_string(),
            "GigaE saved".to_string(),
            "40GI saved".to_string(),
        ]);
        for case in CaseStudy::standard_grid(family) {
            let ge = estimate_pipelined(case, NetworkId::GigaE, depth);
            let ib = estimate_pipelined(case, NetworkId::Ib40G, depth);
            table.row(vec![
                case.size().to_string(),
                ge.calls.to_string(),
                ge.flushes.to_string(),
                ge.round_trips_removed.to_string(),
                fmt_time(family, ge.time_per_call),
                fmt_time(family, ge.time_pipelined),
                fmt_time(family, ge.saved),
                fmt_time(family, ib.saved),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(
        "reading: every removed round trip is pure fixed cost, so the win \
         is relative to the small-payload runs — the FFT-on-GigaE regime the \
         paper singles out (§IV-B). At depth ≥ 4 the FFT case study crosses \
         in half the flushes of the per-call protocol.\n",
    );
    out
}

/// Figures 3 / 4: ping-pong latency series plus the recovered regression.
pub fn print_latency_figure(net: NetworkId, seed: u64) -> String {
    let fig = latency_figure(net, seed);
    let number = if net == NetworkId::GigaE { 3 } else { 4 };
    let mut out = format!(
        "Figure {number} — End-to-end latency on the {net} network (simulated ping-pong)\n\n"
    );
    out.push_str("Left (small payloads, average of 250):\n");
    let mut small = TextTable::new(vec!["Payload (B)", "Latency (µs)", "Stddev (µs)"]);
    for p in &fig.small {
        small.row(vec![
            p.payload.to_string(),
            format!("{:.1}", p.latency.as_micros_f64()),
            format!("{:.1}", p.stddev_us),
        ]);
    }
    out.push_str(&small.render());
    out.push_str("\nRight (large payloads, minimum of 100):\n");
    let mut large = TextTable::new(vec!["Payload (MiB)", "Latency (ms)"]);
    for p in &fig.large {
        large.row(vec![
            format!("{}", p.payload >> 20),
            format!("{:.1}", p.latency.as_millis_f64()),
        ]);
    }
    out.push_str(&large.render());
    let (name, var) = if net == NetworkId::GigaE {
        ("f", "n")
    } else {
        ("g", "n")
    };
    out.push_str(&format!(
        "\nlinear regression: {name}({var}) = {:.2}·{var} {} {:.2}  (correlation {:.4})\n",
        fig.fit.slope,
        if fig.fit.intercept >= 0.0 { "+" } else { "−" },
        fig.fit.intercept.abs(),
        fig.fit.correlation
    ));
    out
}

/// Figures 5 / 6: execution-time series for both case studies.
pub fn print_execution_figure(model_source: NetworkId, testbed: &SimulatedTestbed) -> String {
    let number = if model_source == NetworkId::GigaE {
        5
    } else {
        6
    };
    let mut out = format!(
        "Figure {number} — Processing times, estimates based on the {model_source} model\n\n"
    );
    for family in Family::ALL {
        let fig = execution_figure(family, model_source, testbed);
        out.push_str(&format!("{}:\n", family_label(family)));
        let sizes: Vec<u32> = CaseStudy::standard_grid(family)
            .iter()
            .map(|c| c.size())
            .collect();
        let mut headers = vec!["Series".to_string()];
        headers.extend(sizes.iter().map(|s| s.to_string()));
        let mut table = TextTable::new(headers);
        for s in &fig.series {
            let mut cells = vec![s.label.clone()];
            cells.extend(s.points.iter().map(|&(_, t)| fmt_time(family, t)));
            table.row(cells);
        }
        out.push_str(&table.render());
        // The plot itself (log-y: the GigaE and A-HT series differ by an
        // order of magnitude on FFT).
        let series: Vec<(String, Vec<(f64, f64)>)> = fig
            .series
            .iter()
            .map(|s| {
                (
                    s.label.clone(),
                    s.points
                        .iter()
                        .map(|&(x, t)| (x as f64, t.as_secs_f64()))
                        .collect(),
                )
            })
            .collect();
        out.push('\n');
        out.push_str(&ascii_chart(&series, 64, 16, true));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_printer_produces_nonempty_output() {
        let tb = SimulatedTestbed::new();
        for s in [
            print_table1(),
            print_table2(),
            print_table3(),
            print_table4(&tb),
            print_table5(),
            print_table6(&tb),
            print_latency_figure(NetworkId::GigaE, 42),
            print_latency_figure(NetworkId::Ib40G, 42),
            print_execution_figure(NetworkId::GigaE, &tb),
            print_execution_figure(NetworkId::Ib40G, &tb),
        ] {
            assert!(s.len() > 200, "suspiciously short artifact:\n{s}");
        }
    }

    #[test]
    fn table1_contains_the_canonical_rows() {
        let s = print_table1();
        assert!(s.contains("cudaMalloc"));
        assert!(s.contains("x + 44")); // cudaLaunch send total
        assert!(s.contains("x + 20")); // memcpy-to-device send total
        assert!(s.contains("Compute capability"));
    }

    #[test]
    fn table2_prints_paper_coefficients() {
        let s = print_table2();
        assert!(s.contains("36454.4n"), "FFT GigaE slope");
        assert!(s.contains("2867.2n"), "FFT 40GI slope");
        assert!(s.contains("872.8"), "MM GigaE send intercept");
    }

    #[test]
    fn figure3_prints_f_regression() {
        let s = print_latency_figure(NetworkId::GigaE, 42);
        assert!(s.contains("f(n) = 8.9"), "{s}");
    }
}
