//! Paper-vs-reproduction comparison: the machine-generated backbone of
//! EXPERIMENTS.md.
//!
//! Every row pairs one quantity the paper prints with the value our
//! pipeline regenerates. "Measured" quantities test the calibration
//! (they should be close by construction); "estimated" quantities test the
//! whole methodology end-to-end (calibrated testbed → fixed-time
//! extraction → projection).

use rcuda_core::{CaseStudy, Family};
use rcuda_model::figures::latency_figure;
use rcuda_model::paperdata::{
    FFT_ROWS, MM_ROWS, TABLE4_FFT_ERRORS, TABLE4_MM_ERRORS, TABLE6_FFT_GIGAE_MODEL,
    TABLE6_FFT_IB40_MODEL, TABLE6_MM_GIGAE_MODEL, TABLE6_MM_IB40_MODEL,
};
use rcuda_model::tables::{table4, table6};
use rcuda_model::SimulatedTestbed;
use rcuda_netsim::NetworkId;

/// One compared quantity.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Which paper artifact (e.g. `Table IV`, `Fig. 3`).
    pub experiment: &'static str,
    /// Which cell (free-form label).
    pub cell: String,
    /// The paper's printed value.
    pub paper: f64,
    /// Our regenerated value.
    pub ours: f64,
}

impl Comparison {
    /// Relative deviation, ours vs paper.
    pub fn rel_dev(&self) -> f64 {
        if self.paper == 0.0 {
            return if self.ours == 0.0 { 0.0 } else { f64::INFINITY };
        }
        (self.ours - self.paper) / self.paper
    }
}

/// Generate the full comparison set.
pub fn full_report(testbed: &SimulatedTestbed) -> Vec<Comparison> {
    let mut out = Vec::new();

    // ---- Figures 3/4: recovered regression coefficients.
    let f = latency_figure(NetworkId::GigaE, 42).fit;
    out.push(Comparison {
        experiment: "Fig. 3",
        cell: "f slope (ms/MiB)".into(),
        paper: 8.9,
        ours: f.slope,
    });
    let g = latency_figure(NetworkId::Ib40G, 42).fit;
    out.push(Comparison {
        experiment: "Fig. 4",
        cell: "g slope (ms/MiB)".into(),
        paper: 0.7,
        ours: g.slope,
    });

    // ---- Simulated-testbed measured columns vs the paper's (calibration).
    for r in MM_ROWS {
        let case = CaseStudy::MatMul { dim: r.dim };
        for (label, paper, ours) in [
            ("CPU", r.cpu_s, testbed.measured_cpu(case).as_secs_f64()),
            ("GPU", r.gpu_s, testbed.measured_gpu(case).as_secs_f64()),
            (
                "GigaE",
                r.gigae_s,
                testbed
                    .measured_remote(case, NetworkId::GigaE)
                    .as_secs_f64(),
            ),
            (
                "40GI",
                r.ib40_s,
                testbed
                    .measured_remote(case, NetworkId::Ib40G)
                    .as_secs_f64(),
            ),
        ] {
            out.push(Comparison {
                experiment: "Table VI (measured, MM)",
                cell: format!("m={} {label} (s)", r.dim),
                paper,
                ours,
            });
        }
    }
    for r in FFT_ROWS {
        let case = CaseStudy::Fft { batch: r.batch };
        for (label, paper, ours) in [
            ("CPU", r.cpu_ms, testbed.measured_cpu(case).as_millis_f64()),
            ("GPU", r.gpu_ms, testbed.measured_gpu(case).as_millis_f64()),
            (
                "GigaE",
                r.gigae_ms,
                testbed
                    .measured_remote(case, NetworkId::GigaE)
                    .as_millis_f64(),
            ),
            (
                "40GI",
                r.ib40_ms,
                testbed
                    .measured_remote(case, NetworkId::Ib40G)
                    .as_millis_f64(),
            ),
        ] {
            out.push(Comparison {
                experiment: "Table VI (measured, FFT)",
                cell: format!("n={} {label} (ms)", r.batch),
                paper,
                ours,
            });
        }
    }

    // ---- Table IV error columns (methodology end-to-end).
    let mm4 = table4(Family::MatMul, testbed);
    for (row, (pe_ge, pe_ib)) in mm4.iter().zip(TABLE4_MM_ERRORS) {
        out.push(Comparison {
            experiment: "Table IV (MM)",
            cell: format!("m={} GigaE-model error (%)", row.case.size()),
            paper: pe_ge,
            ours: row.gigae_model.error * 100.0,
        });
        out.push(Comparison {
            experiment: "Table IV (MM)",
            cell: format!("m={} 40GI-model error (%)", row.case.size()),
            paper: pe_ib,
            ours: row.ib40_model.error * 100.0,
        });
    }
    let fft4 = table4(Family::Fft, testbed);
    for (row, (pe_ge, pe_ib)) in fft4.iter().zip(TABLE4_FFT_ERRORS) {
        out.push(Comparison {
            experiment: "Table IV (FFT)",
            cell: format!("n={} GigaE-model error (%)", row.case.size()),
            paper: pe_ge,
            ours: row.gigae_model.error * 100.0,
        });
        out.push(Comparison {
            experiment: "Table IV (FFT)",
            cell: format!("n={} 40GI-model error (%)", row.case.size()),
            paper: pe_ib,
            ours: row.ib40_model.error * 100.0,
        });
    }

    // ---- Table VI estimate columns. The paper's print swaps 10GE/10GI
    // (see paperdata docs); compare after un-swapping.
    let unswap = |printed: [f64; 5]| [printed[1], printed[0], printed[2], printed[3], printed[4]];
    let mm6 = table6(Family::MatMul, testbed);
    for (i, row) in mm6.iter().enumerate() {
        for (model, est, printed) in [
            (
                "GE-model",
                &row.est_gigae_model,
                unswap(TABLE6_MM_GIGAE_MODEL[i]),
            ),
            (
                "IB-model",
                &row.est_ib40_model,
                unswap(TABLE6_MM_IB40_MODEL[i]),
            ),
        ] {
            for (j, (net, t)) in est.iter().enumerate() {
                out.push(Comparison {
                    experiment: "Table VI (estimates, MM)",
                    cell: format!("m={} {net} {model} (s)", row.case.size()),
                    paper: printed[j],
                    ours: t.as_secs_f64(),
                });
            }
        }
    }
    let fft6 = table6(Family::Fft, testbed);
    for (i, row) in fft6.iter().enumerate() {
        for (model, est, printed) in [
            (
                "GE-model",
                &row.est_gigae_model,
                unswap(TABLE6_FFT_GIGAE_MODEL[i]),
            ),
            (
                "IB-model",
                &row.est_ib40_model,
                unswap(TABLE6_FFT_IB40_MODEL[i]),
            ),
        ] {
            for (j, (net, t)) in est.iter().enumerate() {
                out.push(Comparison {
                    experiment: "Table VI (estimates, FFT)",
                    cell: format!("n={} {net} {model} (ms)", row.case.size()),
                    paper: printed[j],
                    ours: t.as_millis_f64(),
                });
            }
        }
    }

    out
}

/// Aggregate statistics over a comparison set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub count: usize,
    /// Maximum |relative deviation| over value comparisons.
    pub max_abs_rel_dev: f64,
    /// Mean |relative deviation|.
    pub mean_abs_rel_dev: f64,
}

/// Summarize value comparisons (Table IV error rows are percentage-point
/// quantities and are excluded from relative statistics).
pub fn summarize(report: &[Comparison]) -> Summary {
    let vals: Vec<f64> = report
        .iter()
        .filter(|c| !c.experiment.starts_with("Table IV"))
        .map(|c| c.rel_dev().abs())
        .collect();
    Summary {
        count: report.len(),
        max_abs_rel_dev: vals.iter().cloned().fold(0.0, f64::max),
        mean_abs_rel_dev: vals.iter().sum::<f64>() / vals.len() as f64,
    }
}

/// Render the report as a Markdown table (EXPERIMENTS.md body).
pub fn render_markdown(report: &[Comparison]) -> String {
    let mut out = String::new();
    out.push_str("| Experiment | Cell | Paper | Ours | Δ |\n");
    out.push_str("|---|---|---:|---:|---:|\n");
    let mut last = "";
    for c in report {
        let exp = if c.experiment == last {
            ""
        } else {
            c.experiment
        };
        last = c.experiment;
        let delta = if c.experiment.starts_with("Table IV") {
            // Percentage-point quantities: show the absolute difference.
            format!("{:+.2} pp", c.ours - c.paper)
        } else {
            format!("{:+.1}%", c.rel_dev() * 100.0)
        };
        out.push_str(&format!(
            "| {exp} | {} | {:.2} | {:.2} | {delta} |\n",
            c.cell, c.paper, c.ours
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_every_experiment_family() {
        let tb = SimulatedTestbed::new();
        let report = full_report(&tb);
        for exp in [
            "Fig. 3",
            "Fig. 4",
            "Table VI (measured, MM)",
            "Table VI (measured, FFT)",
            "Table IV (MM)",
            "Table IV (FFT)",
            "Table VI (estimates, MM)",
            "Table VI (estimates, FFT)",
        ] {
            assert!(report.iter().any(|c| c.experiment == exp), "missing {exp}");
        }
        // 2 fits + 60 measured + 30 table4 + 80 + 70 table6 estimates.
        assert!(report.len() > 200, "only {} comparisons", report.len());
    }

    /// The headline acceptance criterion: all value reproductions within a
    /// few percent of the paper, errors within a few percentage points.
    #[test]
    fn reproduction_quality_bounds() {
        let tb = SimulatedTestbed::new();
        let report = full_report(&tb);
        let summary = summarize(&report);
        assert!(
            summary.max_abs_rel_dev < 0.06,
            "worst value deviation {:.1}%",
            summary.max_abs_rel_dev * 100.0
        );
        assert!(
            summary.mean_abs_rel_dev < 0.02,
            "mean deviation {:.1}%",
            summary.mean_abs_rel_dev * 100.0
        );
        for c in report
            .iter()
            .filter(|c| c.experiment.starts_with("Table IV"))
        {
            assert!(
                (c.ours - c.paper).abs() < 6.0,
                "{}: ours {:.2} vs paper {:.2}",
                c.cell,
                c.ours,
                c.paper
            );
        }
    }

    #[test]
    fn markdown_renders_one_row_per_comparison() {
        let tb = SimulatedTestbed::new();
        let report = full_report(&tb);
        let md = render_markdown(&report);
        assert_eq!(md.lines().count(), report.len() + 2);
    }
}
