//! Shared harness code for the `tables` binary and the Criterion benches:
//! the printers that regenerate each of the paper's tables and figures from
//! the live models, and the paper-comparison report behind EXPERIMENTS.md.

pub mod compare;
pub mod json;
pub mod phases;
pub mod printers;
