//! Regenerate the paper's tables and figures from the live models.
//!
//! ```sh
//! cargo run -p rcuda-bench --bin tables            # everything
//! cargo run -p rcuda-bench --bin tables -- table4  # one artifact
//! cargo run -p rcuda-bench --bin tables -- compare # paper-vs-ours report
//! ```
//!
//! Artifacts: `table1 table2 table3 table4 table5 table5c table6 table6c
//! fig3 fig4 fig5 fig6 pipeline compare`. Pass `--json` for
//! machine-readable output.

use rcuda_bench::compare::{full_report, render_markdown, summarize};
use rcuda_bench::json::artifact_json;
use rcuda_bench::phases::print_phase_profile;
use rcuda_bench::printers::*;
use rcuda_model::SimulatedTestbed;
use rcuda_netsim::NetworkId;

const SEED: u64 = 42;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        true
    } else {
        false
    };
    let wanted: Vec<&str> = if args.is_empty() {
        vec![
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table5c",
            "table6",
            "table6c",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "pipeline",
            "phases",
            "uncertainty",
            "compare",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    let testbed = SimulatedTestbed::new();
    for what in wanted {
        if json {
            match artifact_json(what, &testbed) {
                Some(s) => println!("{s}"),
                None => {
                    eprintln!("unknown artifact `{what}`");
                    std::process::exit(2);
                }
            }
            continue;
        }
        let artifact = match what {
            "table1" => print_table1(),
            "table2" => print_table2(),
            "table3" => print_table3(),
            "table4" => print_table4(&testbed),
            "table5" => print_table5(),
            "table5c" => print_table5c(),
            "table6" => print_table6(&testbed),
            "table6c" => print_table6c(&testbed),
            "fig3" => print_latency_figure(NetworkId::GigaE, SEED),
            "fig4" => print_latency_figure(NetworkId::Ib40G, SEED),
            "fig5" => print_execution_figure(NetworkId::GigaE, &testbed),
            "fig6" => print_execution_figure(NetworkId::Ib40G, &testbed),
            "pipeline" => print_pipeline_table(4),
            "phases" => print_phase_profile(4096, 2048),
            "uncertainty" => print_uncertainty(0.01, 100),
            "compare" => {
                let report = full_report(&testbed);
                let summary = summarize(&report);
                format!(
                    "Paper vs. reproduction ({} comparisons)\n\
                     max |deviation| {:.2}%  mean |deviation| {:.2}% \
                     (value cells; Table IV rows compared in percentage points)\n\n{}",
                    summary.count,
                    summary.max_abs_rel_dev * 100.0,
                    summary.mean_abs_rel_dev * 100.0,
                    render_markdown(&report)
                )
            }
            other => {
                eprintln!("unknown artifact `{other}`; see --help text in the module docs");
                std::process::exit(2);
            }
        };
        println!("{artifact}");
        println!("{}", "=".repeat(78));
    }
}
