//! Per-phase execution profiles: where a remote execution's time goes.
//!
//! §III enumerates seven phases (Fig. 2); this artifact runs the *actual
//! middleware* (client → protocol → simulated link → server → simulated
//! GPU, phantom memory, virtual clock) for both case studies on every
//! network and prints the per-phase split. It is the microscopic view the
//! paper's tables aggregate away — and a direct validation that the
//! transfer phases, not the protocol chatter, carry the network cost.

use rcuda_api::{run_fft_bytes, run_matmul_bytes, ExecReport};
use rcuda_client::RemoteRuntime;
use rcuda_core::time::virtual_clock;
use rcuda_core::{Family, SharedClock};
use rcuda_gpu::GpuDevice;
use rcuda_model::render::TextTable;
use rcuda_netsim::NetworkId;
use rcuda_server::{serve_connection, ServerConfig};
use rcuda_transport::sim_pair;
use std::sync::Arc;

/// The seven phase names, in execution order (must match `rcuda-api::exec`).
pub const PHASES: [&str; 7] = [
    "initialization",
    "allocation",
    "input transfer",
    "kernel",
    "output transfer",
    "release",
    "finalization",
];

/// Run one case study remotely over `net` (phantom memory) and return the
/// phase report.
pub fn profile(family: Family, size: u32, net: NetworkId) -> ExecReport {
    let clock = virtual_clock();
    let shared: SharedClock = clock.clone();
    let (client_side, server_side) = sim_pair(Arc::from(net.model()), shared.clone());
    let device = GpuDevice::tesla_c1060();
    let config = ServerConfig {
        preinitialize_context: true,
        phantom_memory: true,
        ..Default::default()
    };
    let server_clock = shared.clone();
    let server = std::thread::spawn(move || {
        let _ = serve_connection(server_side, &device, server_clock, &config);
    });
    let mut rt = RemoteRuntime::new(client_side, shared);
    let report = match family {
        Family::MatMul => {
            let bytes = vec![0u8; (size * size * 4) as usize];
            run_matmul_bytes(&mut rt, &*clock, size, &bytes, &bytes).unwrap()
        }
        Family::Fft => {
            let bytes = vec![0u8; (size * 512 * 8) as usize];
            run_fft_bytes(&mut rt, &*clock, size, &bytes).unwrap()
        }
    };
    drop(rt);
    let _ = server.join();
    report
}

/// Render the phase-profile artifact for both case studies.
pub fn print_phase_profile(mm_dim: u32, fft_batch: u32) -> String {
    let mut out = format!(
        "Phase profile — where simulated remote executions spend their time\n\
         (middleware run end-to-end on a virtual clock; MM m = {mm_dim}, \
         FFT n = {fft_batch}; times in ms)\n\n"
    );
    for (family, size) in [(Family::MatMul, mm_dim), (Family::Fft, fft_batch)] {
        out.push_str(&format!(
            "{}:\n",
            match family {
                Family::MatMul => "MM",
                Family::Fft => "FFT",
            }
        ));
        let mut headers = vec!["Network".to_string()];
        headers.extend(PHASES.iter().map(|p| p.to_string()));
        headers.push("total".to_string());
        let mut table = TextTable::new(headers);
        for net in NetworkId::ALL {
            let report = profile(family, size, net);
            let mut cells = vec![net.to_string()];
            for phase in PHASES {
                cells.push(format!("{:.2}", report.phase(phase).as_millis_f64()));
            }
            cells.push(format!("{:.2}", report.total().as_millis_f64()));
            table.row(cells);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(
        "reading: only the transfer phases vary with the network — the §V\n\
         premise that control-message chatter is negligible, observed on the\n\
         live middleware rather than assumed.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_produces_seven_phases() {
        let report = profile(Family::MatMul, 512, NetworkId::Ib40G);
        assert_eq!(report.phases.len(), 7);
        for phase in PHASES {
            // Every phase exists (possibly sub-ms, never negative/absent).
            let _ = report.phase(phase);
        }
    }

    #[test]
    fn network_cost_lands_in_the_transfer_phases() {
        let slow = profile(Family::MatMul, 2048, NetworkId::GigaE);
        let fast = profile(Family::MatMul, 2048, NetworkId::AsicHt);
        // Kernel phase is network-independent.
        let k_slow = slow.phase("kernel").as_millis_f64();
        let k_fast = fast.phase("kernel").as_millis_f64();
        assert!(
            (k_slow - k_fast).abs() / k_fast < 0.05,
            "kernel: {k_slow} vs {k_fast}"
        );
        // Input transfer dominates the difference.
        let in_slow = slow.phase("input transfer").as_millis_f64();
        let in_fast = fast.phase("input transfer").as_millis_f64();
        assert!(in_slow > 10.0 * in_fast, "input: {in_slow} vs {in_fast}");
    }

    #[test]
    fn artifact_renders_for_small_sizes() {
        let s = print_phase_profile(512, 128);
        assert!(s.contains("GigaE"));
        assert!(s.contains("A-HT"));
        assert!(s.lines().count() > 20);
    }
}
