//! Machine-readable (JSON) emitters for the regenerated artifacts — for
//! plotting scripts and downstream analysis.

use rcuda_core::Family;
use rcuda_model::figures::{execution_figure, latency_figure};
use rcuda_model::tables::{
    table2, table3, table4, table5, table5_compressed, table6, table6_compressed,
};
use rcuda_model::SimulatedTestbed;
use rcuda_netsim::NetworkId;
use rcuda_proto::sizes::OpKind;
use serde_json::json;

/// Serialize one artifact as pretty JSON; `None` for unknown names.
pub fn artifact_json(what: &str, testbed: &SimulatedTestbed) -> Option<String> {
    let value = match what {
        "table1" => {
            let ops: Vec<_> = OpKind::ALL
                .iter()
                .map(|op| {
                    let totals = op.totals();
                    json!({
                        "operation": op.name(),
                        "fields": op.fields().iter().map(|f| json!({
                            "field": f.field,
                            "send": f.send.map(|s| s.to_string()),
                            "recv": f.recv.map(|s| s.to_string()),
                        })).collect::<Vec<_>>(),
                        "total_send": totals.send.to_string(),
                        "total_recv": totals.recv.to_string(),
                    })
                })
                .collect();
            json!({ "table": 1, "operations": ops })
        }
        "table2" => json!({
            "table": 2,
            "mm": table2(Family::MatMul),
            "fft": table2(Family::Fft),
        }),
        "table3" => json!({
            "table": 3,
            "mm": table3(Family::MatMul),
            "fft": table3(Family::Fft),
        }),
        "table4" => json!({
            "table": 4,
            "mm": table4(Family::MatMul, testbed),
            "fft": table4(Family::Fft, testbed),
        }),
        "table5" => json!({
            "table": 5,
            "mm": table5(Family::MatMul),
            "fft": table5(Family::Fft),
        }),
        "table5c" => json!({
            "table": "5c",
            "mm": table5_compressed(Family::MatMul),
            "fft": table5_compressed(Family::Fft),
        }),
        "table6" => json!({
            "table": 6,
            "mm": table6(Family::MatMul, testbed),
            "fft": table6(Family::Fft, testbed),
        }),
        "table6c" => json!({
            "table": "6c",
            "mm": table6_compressed(Family::MatMul, testbed),
            "fft": table6_compressed(Family::Fft, testbed),
        }),
        "fig3" => json!({ "figure": 3, "data": latency_figure(NetworkId::GigaE, 42) }),
        "fig4" => json!({ "figure": 4, "data": latency_figure(NetworkId::Ib40G, 42) }),
        "fig5" => json!({
            "figure": 5,
            "mm": execution_figure(Family::MatMul, NetworkId::GigaE, testbed),
            "fft": execution_figure(Family::Fft, NetworkId::GigaE, testbed),
        }),
        "fig6" => json!({
            "figure": 6,
            "mm": execution_figure(Family::MatMul, NetworkId::Ib40G, testbed),
            "fft": execution_figure(Family::Fft, NetworkId::Ib40G, testbed),
        }),
        "pipeline" => {
            use rcuda_core::CaseStudy;
            use rcuda_model::pipeline::estimate_pipelined;
            let grid = |family: Family| -> Vec<_> {
                CaseStudy::standard_grid(family)
                    .into_iter()
                    .flat_map(|case| {
                        [NetworkId::GigaE, NetworkId::Ib40G]
                            .map(|net| estimate_pipelined(case, net, 4))
                    })
                    .collect()
            };
            json!({
                "table": "pipeline",
                "depth": 4,
                "mm": grid(Family::MatMul),
                "fft": grid(Family::Fft),
            })
        }
        "compare" => {
            let report = crate::compare::full_report(testbed);
            json!({
                "comparisons": report.iter().map(|c| json!({
                    "experiment": c.experiment,
                    "cell": c.cell,
                    "paper": c.paper,
                    "ours": c.ours,
                    "rel_dev": c.rel_dev(),
                })).collect::<Vec<_>>(),
            })
        }
        _ => return None,
    };
    Some(serde_json::to_string_pretty(&value).expect("artifacts serialize"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_artifact_emits_valid_json() {
        let tb = SimulatedTestbed::new();
        for what in [
            "table1", "table2", "table3", "table4", "table5", "table5c", "table6", "table6c",
            "fig3", "fig4", "fig5", "fig6", "pipeline", "compare",
        ] {
            let s = artifact_json(what, &tb).unwrap_or_else(|| panic!("missing {what}"));
            let v: serde_json::Value = serde_json::from_str(&s).expect(what);
            assert!(v.is_object(), "{what}");
        }
        assert!(artifact_json("nonsense", &tb).is_none());
    }

    #[test]
    fn table6_json_carries_the_grid() {
        let tb = SimulatedTestbed::new();
        let s = artifact_json("table6", &tb).unwrap();
        let v: serde_json::Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v["mm"].as_array().unwrap().len(), 8);
        assert_eq!(v["fft"].as_array().unwrap().len(), 7);
    }
}
