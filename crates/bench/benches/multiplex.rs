//! Head-of-line blocking, measured: small-call p99 latency with and
//! without a concurrent 16 MiB transfer on the same connection, mux on
//! and off, over live loopback TCP.
//!
//! Single-stream, two logical users sharing one session must serialize
//! whole calls — a small call queues behind the entire in-flight bulk
//! memcpy. On a multiplexed trunk each user gets a sub-stream and bulk
//! payloads interleave at 64 KiB chunk granularity, so the small call's
//! frames wait for at most one chunk per direction.
//!
//! Always writes `target/BENCH_multiplex.json` (override with
//! `BENCH_MULTIPLEX_OUT`): the four p99s, the measured improvement
//! ratio, and the `rcuda-netsim` HOL model's prediction on the
//! measurement-calibrated loopback link, so CI can diff the HOL win run
//! over run.

use criterion::{criterion_group, criterion_main, Criterion};
use rcuda::session::{Endpoint, Session};
use rcuda_api::CudaRuntime;
use rcuda_gpu::module::build_module;
use rcuda_gpu::GpuDevice;
use rcuda_netsim::{HolModel, NetworkModel};
use rcuda_server::RcudaDaemon;
use rcuda_workloads::calibrate_loopback;
use serde_json::json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The concurrent bulk payload of the acceptance criterion.
const BULK_BYTES: usize = 16 << 20;
/// Small-call samples per arm (at 200 the p99 is the 198th, so one
/// scheduler hiccup cannot set it).
const SMALL_ITERS: usize = 200;
/// Warm calls excluded from every arm's samples.
const WARMUP: usize = 4;
/// Pause between successive bulk transfers in the contended arms — the
/// measured scenario is a small call racing one in-flight 16 MiB
/// transfer, not a permanently saturated trunk (identical in both arms).
const BULK_GAP: Duration = Duration::from_millis(1);

fn p99_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let idx = ((samples.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
    samples[idx]
}

/// One small call: a malloc/free pair, timed in microseconds.
fn small_call(rt: &mut impl CudaRuntime) -> f64 {
    let t0 = Instant::now();
    let p = rt.malloc(64).unwrap();
    rt.free(p).unwrap();
    t0.elapsed().as_secs_f64() * 1e6
}

fn connect(addr: std::net::SocketAddr, mux: bool) -> Session {
    let mut sess = Session::builder()
        .mux(mux)
        .connect(Endpoint::Tcp(addr))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap();
    sess
}

/// Small-call p99 on an otherwise idle connection.
fn idle_p99(addr: std::net::SocketAddr, mux: bool) -> f64 {
    let mut sess = connect(addr, mux);
    for _ in 0..WARMUP {
        small_call(&mut *sess);
    }
    let samples = (0..SMALL_ITERS).map(|_| small_call(&mut *sess)).collect();
    sess.finalize().unwrap();
    sess.finish();
    p99_us(samples)
}

/// Single-stream contention: both users share one session behind a lock,
/// so each small call waits for the bulk memcpy in flight — the ordered
/// byte stream admits nothing finer than whole-call interleaving.
fn single_stream_bulk_p99(addr: std::net::SocketAddr) -> f64 {
    let mut sess = connect(addr, false);
    let dev = sess.malloc(BULK_BYTES as u32).unwrap();
    let sess = Mutex::new(sess);
    let stop = AtomicBool::new(false);
    let data = vec![0x5au8; BULK_BYTES];

    let mut samples = Vec::with_capacity(SMALL_ITERS);
    std::thread::scope(|s| {
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                sess.lock().unwrap().memcpy_h2d(dev, &data).unwrap();
                // Successive transfers, not a saturated pipe: the scenario
                // is a small call racing one in-flight bulk transfer.
                std::thread::sleep(BULK_GAP);
            }
        });
        for i in 0..WARMUP + SMALL_ITERS {
            std::thread::sleep(Duration::from_micros(500));
            let t0 = Instant::now();
            {
                let mut rt = sess.lock().unwrap();
                let p = rt.malloc(64).unwrap();
                rt.free(p).unwrap();
            }
            if i >= WARMUP {
                samples.push(t0.elapsed().as_secs_f64() * 1e6);
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    let mut sess = sess.into_inner().unwrap();
    sess.free(dev).unwrap();
    sess.finalize().unwrap();
    sess.finish();
    p99_us(samples)
}

/// Muxed contention: the same two users ride one trunk on separate
/// sub-streams — the bulk memcpy streams continuously while the small
/// caller's frames interleave between its chunks.
fn mux_bulk_p99(addr: std::net::SocketAddr) -> f64 {
    let conn = Session::builder()
        .mux(true)
        .connector(Endpoint::Tcp(addr))
        .unwrap();
    let mut bulk = conn.open().unwrap();
    bulk.initialize(&build_module(&[], 0)).unwrap();
    let mut small = conn.open().unwrap();
    small.initialize(&build_module(&[], 0)).unwrap();
    let dev = bulk.malloc(BULK_BYTES as u32).unwrap();
    let stop = AtomicBool::new(false);
    let data = vec![0x5au8; BULK_BYTES];

    let mut samples = Vec::with_capacity(SMALL_ITERS);
    std::thread::scope(|s| {
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                bulk.memcpy_h2d(dev, &data).unwrap();
                std::thread::sleep(BULK_GAP);
            }
            bulk.free(dev).unwrap();
            bulk.finalize().unwrap();
        });
        for i in 0..WARMUP + SMALL_ITERS {
            std::thread::sleep(Duration::from_micros(500));
            let us = small_call(&mut *small);
            if i >= WARMUP {
                samples.push(us);
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    small.finalize().unwrap();
    small.finish();
    conn.finish();
    p99_us(samples)
}

fn write_artifact() {
    // Two reactor shards so the trunk's sub-streams land on separate
    // shard threads (round-robin assignment) — otherwise one shard
    // serializes the small call behind the 16 MiB dispatch and measures
    // server scheduling, not transport head-of-line blocking.
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .shards(2)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();

    let single_idle = idle_p99(addr, false);
    let mux_idle = idle_p99(addr, true);
    let single_bulk = single_stream_bulk_p99(addr);
    let mux_bulk = mux_bulk_p99(addr);
    let improvement = single_bulk / mux_bulk.max(f64::EPSILON);

    // The netsim HOL model on the measurement-calibrated loopback link.
    let link = calibrate_loopback(addr, 3).unwrap();
    let model = HolModel {
        chunk_bytes: rcuda_proto::mux::CHUNK as u64,
        ..HolModel::new(BULK_BYTES as u64, 8, 8)
    };
    let predicted = model.improvement(&link);

    println!(
        "  small-call p99 (µs): idle single {single_idle:.0}, idle mux {mux_idle:.0}, \
         under 16 MiB bulk single {single_bulk:.0}, mux {mux_bulk:.0}"
    );
    println!("  HOL improvement: measured {improvement:.1}x, model predicts {predicted:.1}x");

    let p99s = json!({
        "single_idle": single_idle,
        "mux_idle": mux_idle,
        "single_bulk": single_bulk,
        "mux_bulk": mux_bulk,
    });
    let model_json = json!({
        "link": link.name(),
        "predicted_improvement": predicted,
        "single_stream_us": model.small_call_single_stream(&link).as_micros_f64(),
        "muxed_us": model.small_call_muxed(&link).as_micros_f64(),
    });
    let artifact = json!({
        "bench": "multiplex",
        "transport": "loopback-tcp",
        "bulk_bytes": BULK_BYTES,
        "small_iters": SMALL_ITERS,
        "p99_us": p99s,
        "improvement": improvement,
        "model": model_json,
    });
    let path = std::env::var("BENCH_MULTIPLEX_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_multiplex.json"
        )
        .to_string()
    });
    std::fs::write(&path, serde_json::to_string_pretty(&artifact).unwrap()).unwrap();
    println!("  wrote {path}");
    daemon.shutdown();
}

fn bench_multiplex(c: &mut Criterion) {
    write_artifact();

    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();

    let mut g = c.benchmark_group("multiplex");
    let mut single = connect(addr, false);
    g.bench_function("small_call/single_idle", |b| {
        b.iter(|| small_call(&mut *single))
    });
    let mut muxed = connect(addr, true);
    g.bench_function("small_call/mux_idle", |b| {
        b.iter(|| small_call(&mut *muxed))
    });
    g.finish();

    single.finalize().unwrap();
    single.finish();
    muxed.finalize().unwrap();
    muxed.finish();
    daemon.shutdown();
}

criterion_group!(benches, bench_multiplex);
criterion_main!(benches);
