//! AI-inference workload suite: closed-loop §V model validation.
//!
//! Runs the `rcuda-workloads` harness — transformer block, batched small
//! calls, multi-tenant traffic — through both validation loops (simulated
//! GigaE→40GI cross-network and loopback TCP against a live daemon),
//! asserts every row's relative error under its bound, and writes the
//! paper-style artifact to `target/BENCH_workloads.json` (override with
//! `BENCH_WORKLOADS_OUT`). Set `RCUDA_WORKLOADS_FAST=1` for CI-sized
//! shapes; the artifact keeps both transports either way.

use criterion::{criterion_group, criterion_main, Criterion};
use rcuda_obs::ObsHandle;
use rcuda_workloads::{
    channel_session, run_suite, run_transformer, SuiteConfig, TransformerConfig,
};

/// Master seed for the artifact run: inputs, payload draws, and tenant
/// schedules all derive from it, so reruns see identical traffic.
const SEED: u64 = 42;

fn write_artifact() {
    let cfg = SuiteConfig::from_env(SEED);
    let report = run_suite(&cfg).expect("workload suite");
    report.assert_bounds();
    print!("{}", report.table());

    let path = std::env::var("BENCH_WORKLOADS_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_workloads.json"
        )
        .to_string()
    });
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report.to_json()).unwrap(),
    )
    .unwrap();
    println!("  wrote {path}");
}

fn bench_workloads(c: &mut Criterion) {
    write_artifact();

    // Criterion timing: one transformer block over the in-process channel
    // session — the per-inference cost the suite's TCP rows pay per client.
    let cfg = TransformerConfig::small(SEED);
    let mut g = c.benchmark_group("workloads");
    g.bench_function("transformer_block_channel", |b| {
        b.iter(|| {
            let mut sess = channel_session(ObsHandle::none(), 0);
            let clock = sess.clock.clone();
            run_transformer(&mut sess.runtime, &*clock, &ObsHandle::none(), &cfg).unwrap();
            sess.finish();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
