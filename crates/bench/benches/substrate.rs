//! Criterion microbenches of the substrates: wire protocol, kernels,
//! device-memory allocator, and network-model evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcuda_core::DevicePtr;
use rcuda_gpu::alloc::DeviceAllocator;
use rcuda_kernels::fft::{fft_batch_512, Fft};
use rcuda_kernels::matrix::{sgemm_blocked, sgemm_naive, sgemm_tiled_gpu, CpuSgemm};
use rcuda_kernels::workload::{fft_input, matrix_pair};
use rcuda_netsim::{GigaEModel, NetworkModel};
use rcuda_proto::ids::MemcpyKind;
use rcuda_proto::Request;
use std::hint::black_box;
use std::io::Cursor;

fn bench_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("proto");
    for payload in [0usize, 1024, 64 * 1024, 1 << 20] {
        let req = Request::Memcpy {
            dst: 0x1000,
            src: 0,
            size: payload as u32,
            kind: MemcpyKind::HostToDevice,
            data: Some(vec![0xAB; payload].into()),
        };
        g.throughput(Throughput::Bytes(req.wire_bytes()));
        g.bench_with_input(
            BenchmarkId::new("encode_memcpy", payload),
            &req,
            |b, req| {
                let mut buf = Vec::with_capacity(payload + 64);
                b.iter(|| {
                    buf.clear();
                    req.write(&mut buf).unwrap();
                    black_box(buf.len())
                });
            },
        );
        let mut encoded = Vec::new();
        req.write(&mut encoded).unwrap();
        g.bench_with_input(
            BenchmarkId::new("decode_memcpy", payload),
            &encoded,
            |b, enc| {
                b.iter(|| black_box(Request::read(&mut Cursor::new(enc)).unwrap()));
            },
        );
    }
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    // SGEMM variants at a fixed, cache-interesting size.
    let m = 192usize;
    let (a, b) = matrix_pair(m, 7);
    let mut cmat = vec![0.0f32; m * m];
    g.throughput(Throughput::Elements((2 * m * m * m) as u64));
    g.bench_function(BenchmarkId::new("sgemm_naive", m), |bch| {
        bch.iter(|| sgemm_naive(m, m, m, a.as_slice(), b.as_slice(), black_box(&mut cmat)))
    });
    g.bench_function(BenchmarkId::new("sgemm_blocked", m), |bch| {
        bch.iter(|| sgemm_blocked(m, m, m, a.as_slice(), b.as_slice(), black_box(&mut cmat)))
    });
    g.bench_function(BenchmarkId::new("sgemm_tiled_gpu", m), |bch| {
        bch.iter(|| sgemm_tiled_gpu(m, m, m, a.as_slice(), b.as_slice(), black_box(&mut cmat)))
    });
    let mkl = CpuSgemm::new(8);
    g.bench_function(BenchmarkId::new("sgemm_threaded8", m), |bch| {
        bch.iter(|| mkl.run(m, m, m, a.as_slice(), b.as_slice(), black_box(&mut cmat)))
    });

    // FFT: planned vs unplanned, batched.
    let batch = 64usize;
    let input = fft_input(batch, 3);
    g.throughput(Throughput::Elements((batch * 512) as u64));
    g.bench_function("fft_batch_512x64", |bch| {
        let mut data = input.clone();
        bch.iter(|| {
            data.copy_from_slice(&input);
            fft_batch_512(black_box(&mut data));
        })
    });
    g.bench_function("fft_planned_512x64", |bch| {
        let plan = Fft::plan(512);
        let mut data = input.clone();
        bch.iter(|| {
            data.copy_from_slice(&input);
            plan.forward_batch(black_box(&mut data));
        })
    });
    g.finish();
}

fn bench_allocator(c: &mut Criterion) {
    // Policy ablation: first-fit scans less, best-fit packs tighter.
    for policy in [
        rcuda_gpu::alloc::AllocPolicy::FirstFit,
        rcuda_gpu::alloc::AllocPolicy::BestFit,
    ] {
        c.bench_function(format!("allocator_churn_256_{policy:?}"), |b| {
            b.iter(|| {
                let mut a = DeviceAllocator::with_policy(64 << 20, policy);
                let mut live: Vec<DevicePtr> = Vec::with_capacity(256);
                for i in 0..256u32 {
                    live.push(a.alloc(4096 + i * 16).unwrap());
                    if i % 3 == 0 {
                        let victim = live.swap_remove((i as usize * 7) % live.len());
                        a.free(victim).unwrap();
                    }
                }
                for p in live {
                    a.free(p).unwrap();
                }
                black_box(a.largest_free_block())
            })
        });
    }
    c.bench_function("allocator_churn_256", |b| {
        b.iter(|| {
            let mut a = DeviceAllocator::new(64 << 20);
            let mut live: Vec<DevicePtr> = Vec::with_capacity(256);
            for i in 0..256u32 {
                live.push(a.alloc(4096 + i * 16).unwrap());
                if i % 3 == 0 {
                    let victim = live.swap_remove((i as usize * 7) % live.len());
                    a.free(victim).unwrap();
                }
            }
            for p in live {
                a.free(p).unwrap();
            }
            black_box(a.free_bytes())
        })
    });
}

fn bench_netmodel(c: &mut Criterion) {
    let net = GigaEModel::new();
    c.bench_function("gige_one_way_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for bytes in [8u64, 64, 1024, 21_490, 1 << 20, 64 << 20] {
                acc += net.one_way(black_box(bytes)).as_nanos();
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_protocol,
    bench_kernels,
    bench_allocator,
    bench_netmodel
);
criterion_main!(benches);
