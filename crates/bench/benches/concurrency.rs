//! Session-concurrency throughput of the sharded reactor, measured: full
//! session lifecycles per second and per-call p50/p99 round-trip latency
//! with 100, 1 000 and 10 000 concurrent sessions multiplexed onto a
//! fixed shard pool.
//!
//! Sessions are opened through `RcudaDaemon::connect_in_process` so the
//! bench exercises the reactor core (admission, registration, decode,
//! dispatch, finalize) without consuming 10 000 file descriptors. Beyond
//! the criterion timings, the bench always writes a machine-readable
//! artifact — `target/BENCH_concurrency.json` (override with
//! `BENCH_CONCURRENCY_OUT`) — so CI can diff scheduler regressions run
//! over run without parsing criterion's output directory.

use criterion::{criterion_group, criterion_main, Criterion};
use rcuda_gpu::module::build_module;
use rcuda_proto::{Request, Response};
use rcuda_server::{DaemonBuilder, RcudaDaemon};
use serde_json::json;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Concurrent-session levels from the acceptance bar: two orders of
/// magnitude past the point where thread-per-connection stops scaling.
const LEVELS: [usize; 3] = [100, 1_000, 10_000];
/// Client threads driving each level (the daemon side stays at its fixed
/// shard pool regardless).
const DRIVERS: usize = 8;
const SHARDS: usize = 4;

fn daemon() -> RcudaDaemon {
    DaemonBuilder::new()
        .phantom_memory(true)
        .shards(SHARDS)
        .bind("127.0.0.1:0")
        .unwrap()
}

/// `sorted` ascending; classic nearest-rank percentile.
fn pctl(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run `n` concurrent sessions through open → init → malloc → free → quit,
/// returning `(total_secs, per-call latencies in seconds)`.
fn run_level(daemon: &RcudaDaemon, n: usize) -> (f64, Vec<f64>) {
    let module = build_module(&[], 0);
    let begun = Instant::now();
    let mut latencies: Vec<f64> = Vec::with_capacity(n * 2);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..DRIVERS)
            .map(|d| {
                let module = &module;
                s.spawn(move || {
                    let share = n / DRIVERS + usize::from(d < n % DRIVERS);
                    let mut conns = Vec::with_capacity(share);
                    let mut cc = [0u8; 8];
                    for _ in 0..share {
                        let mut t = daemon.connect_in_process();
                        t.read_exact(&mut cc).expect("compute-capability hello");
                        conns.push(t);
                    }
                    // Handshakes pipelined: every session becomes live.
                    let init = Request::Init {
                        module: module.clone(),
                    };
                    for t in &mut conns {
                        init.write(t).unwrap();
                        t.flush().unwrap();
                    }
                    for t in &mut conns {
                        Response::read(t, &init).unwrap().into_ack().unwrap();
                    }
                    // Latency probes: synchronous round trips, one in
                    // flight per session, while the other ~n sessions stay
                    // registered on the same shards.
                    let mut lat = Vec::with_capacity(share * 2);
                    let malloc = Request::Malloc { size: 4096 };
                    for t in &mut conns {
                        let t0 = Instant::now();
                        malloc.write(t).unwrap();
                        t.flush().unwrap();
                        let ptr = Response::read(t, &malloc).unwrap().into_malloc().unwrap();
                        lat.push(t0.elapsed().as_secs_f64());
                        let free = Request::Free { ptr };
                        let t0 = Instant::now();
                        free.write(t).unwrap();
                        t.flush().unwrap();
                        Response::read(t, &free).unwrap().into_ack().unwrap();
                        lat.push(t0.elapsed().as_secs_f64());
                    }
                    for t in &mut conns {
                        Request::Quit.write(t).unwrap();
                        t.flush().unwrap();
                    }
                    for t in &mut conns {
                        Response::read(t, &Request::Quit)
                            .unwrap()
                            .into_ack()
                            .unwrap();
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().unwrap());
        }
    });
    let total = begun.elapsed().as_secs_f64();
    (total, latencies)
}

fn write_artifact() {
    let mut levels = Vec::new();
    let mut served_before = 0u64;
    let daemon = daemon();
    for n in LEVELS {
        let (total, mut lat) = run_level(&daemon, n);
        assert!(
            daemon.wait_for_sessions(served_before + n as u64, Duration::from_secs(120)),
            "level {n}: all sessions complete"
        );
        served_before += n as u64;
        lat.sort_by(|a, b| a.total_cmp(b));
        let p50 = pctl(&lat, 0.50) * 1e6;
        let p99 = pctl(&lat, 0.99) * 1e6;
        let rate = n as f64 / total;
        println!(
            "  {n} concurrent sessions on {SHARDS} shards: \
             {rate:.0} sessions/s, call latency p50 {p50:.0} µs, p99 {p99:.0} µs"
        );
        levels.push(json!({
            "sessions": n,
            "shards": SHARDS,
            "drivers": DRIVERS,
            "total_secs": total,
            "sessions_per_sec": rate,
            "calls": lat.len(),
            "call_p50_us": p50,
            "call_p99_us": p99,
            "call_max_us": lat.last().copied().unwrap_or(0.0) * 1e6,
        }));
    }
    let health = daemon.health();
    assert_eq!(health.rejected, 0, "no level was shed");
    assert_eq!(health.panics, 0);

    let artifact = json!({
        "bench": "concurrency",
        "transport": "in-process-channel",
        "levels": levels,
    });
    // Benches run with the package dir as cwd; anchor the default to the
    // workspace target dir so the artifact lands where CI looks for it.
    let path = std::env::var("BENCH_CONCURRENCY_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_concurrency.json"
        )
        .to_string()
    });
    std::fs::write(&path, serde_json::to_string_pretty(&artifact).unwrap()).unwrap();
    println!("  wrote {path}");
}

fn bench_concurrency(c: &mut Criterion) {
    write_artifact();

    // Criterion timing: one full session lifecycle against a warm daemon
    // (the per-session cost the levels above pay n times concurrently).
    let daemon = daemon();
    let module = build_module(&[], 0);
    let mut g = c.benchmark_group("concurrency");
    g.bench_function("session_lifecycle", |b| {
        b.iter(|| {
            let mut t = daemon.connect_in_process();
            let mut cc = [0u8; 8];
            t.read_exact(&mut cc).unwrap();
            let init = Request::Init {
                module: module.clone(),
            };
            init.write(&mut t).unwrap();
            t.flush().unwrap();
            Response::read(&mut t, &init).unwrap().into_ack().unwrap();
            Request::Quit.write(&mut t).unwrap();
            t.flush().unwrap();
            Response::read(&mut t, &Request::Quit)
                .unwrap()
                .into_ack()
                .unwrap();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_concurrency);
criterion_main!(benches);
