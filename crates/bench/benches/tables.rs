//! Criterion benches: cost of regenerating each paper artifact.
//!
//! One benchmark per table/figure (the brief's "one bench per
//! table/figure"), timing the full generation pipeline — calibration fits,
//! testbed evaluation, estimation, rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use rcuda_bench::printers::*;
use rcuda_core::Family;
use rcuda_model::tables::{table4, table6};
use rcuda_model::{Calibration, SimulatedTestbed};
use rcuda_netsim::NetworkId;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("artifacts");
    let tb = SimulatedTestbed::new();

    g.bench_function("table1", |b| b.iter(|| black_box(print_table1())));
    g.bench_function("table2", |b| b.iter(|| black_box(print_table2())));
    g.bench_function("table3", |b| b.iter(|| black_box(print_table3())));
    g.bench_function("table4", |b| b.iter(|| black_box(print_table4(&tb))));
    g.bench_function("table5", |b| b.iter(|| black_box(print_table5())));
    g.bench_function("table6", |b| b.iter(|| black_box(print_table6(&tb))));
    g.bench_function("fig3", |b| {
        b.iter(|| black_box(print_latency_figure(NetworkId::GigaE, 42)))
    });
    g.bench_function("fig4", |b| {
        b.iter(|| black_box(print_latency_figure(NetworkId::Ib40G, 42)))
    });
    g.bench_function("fig5", |b| {
        b.iter(|| black_box(print_execution_figure(NetworkId::GigaE, &tb)))
    });
    g.bench_function("fig6", |b| {
        b.iter(|| black_box(print_execution_figure(NetworkId::Ib40G, &tb)))
    });
    g.finish();
}

fn bench_model_internals(c: &mut Criterion) {
    let mut g = c.benchmark_group("model");
    g.bench_function("calibration_fit", |b| {
        b.iter(|| black_box(Calibration::paper()))
    });
    let tb = SimulatedTestbed::new();
    g.bench_function("table4_mm_rows", |b| {
        b.iter(|| black_box(table4(Family::MatMul, &tb)))
    });
    g.bench_function("table6_fft_rows", |b| {
        b.iter(|| black_box(table6(Family::Fft, &tb)))
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_model_internals);
criterion_main!(benches);
