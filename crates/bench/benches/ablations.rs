//! Ablation studies of the design choices DESIGN.md calls out, reported in
//! *simulated* time (wall-clock benching is meaningless for virtual-clock
//! quantities, so this is a custom `harness = false` report, not Criterion).
//!
//! 1. **Nagle's algorithm** on/off (the paper disables it, §IV-A);
//! 2. **context pre-initialization** on/off (§VI-B);
//! 3. **synchronous vs asynchronous** transfers (paper future work);
//! 4. **multi-client contention** on the server link (paper future work).

use rcuda_api::run_matmul_bytes;
use rcuda_client::RemoteRuntime;
use rcuda_core::time::virtual_clock;
use rcuda_core::{CaseStudy, Clock as _, SimTime};
use rcuda_gpu::{GpuDevice, NullCostModel};
use rcuda_netsim::{GigaEModel, NetworkId, NetworkModel, SharedLink};
use rcuda_server::{serve_connection, ServerConfig};
use rcuda_transport::sim_pair;
use std::sync::Arc;

fn main() {
    // Keep `cargo bench -- --list`-style invocations happy.
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        println!("ablations: bench");
        return;
    }
    nagle_ablation();
    preinit_ablation();
    async_overlap_ablation();
    contention_ablation();
}

/// Simulated MM execution over a given GigaE variant and server config.
fn simulated_mm(
    m: u32,
    net: Arc<dyn NetworkModel>,
    config: ServerConfig,
    device: Arc<GpuDevice>,
) -> SimTime {
    let clock = virtual_clock();
    let shared: rcuda_core::SharedClock = clock.clone();
    let (client_side, server_side) = sim_pair(net, shared.clone());
    let server_clock = shared.clone();
    let server = std::thread::spawn(move || {
        let _ = serve_connection(server_side, &device, server_clock, &config);
    });
    let mut rt = RemoteRuntime::new(client_side, shared);
    let bytes = vec![0u8; (m * m * 4) as usize];
    run_matmul_bytes(&mut rt, &*clock, m, &bytes, &bytes).unwrap();
    let t = clock.now();
    drop(rt);
    let _ = server.join();
    t
}

fn phantom_cfg() -> ServerConfig {
    ServerConfig {
        preinitialize_context: true,
        phantom_memory: true,
        ..Default::default()
    }
}

fn nagle_ablation() {
    println!("== Ablation 1: Nagle's algorithm (paper §IV-A disables it) ==");
    let m = 2048u32;
    let off = simulated_mm(
        m,
        Arc::new(GigaEModel::new()),
        phantom_cfg(),
        GpuDevice::tesla_c1060(),
    );
    let on = simulated_mm(
        m,
        Arc::new(GigaEModel::with_nagle()),
        phantom_cfg(),
        GpuDevice::tesla_c1060(),
    );
    println!(
        "  MM m={m} over GigaE, Nagle off: {:.1} ms",
        off.as_millis_f64()
    );
    println!(
        "  MM m={m} over GigaE, Nagle on : {:.1} ms",
        on.as_millis_f64()
    );
    println!(
        "  penalty: {:+.1} ms across {} control messages (~40 ms delayed-ACK stall each)\n",
        on.as_millis_f64() - off.as_millis_f64(),
        10
    );
    assert!(on > off);
}

fn preinit_ablation() {
    println!("== Ablation 2: daemon context pre-initialization (paper §VI-B) ==");
    let m = 4096u32;
    let warm = simulated_mm(
        m,
        Arc::from(NetworkId::Ib40G.model()),
        phantom_cfg(),
        GpuDevice::tesla_c1060(),
    );
    let cold_cfg = ServerConfig {
        preinitialize_context: false,
        phantom_memory: true,
        ..Default::default()
    };
    let cold = simulated_mm(
        m,
        Arc::from(NetworkId::Ib40G.model()),
        cold_cfg,
        GpuDevice::tesla_c1060(),
    );
    println!(
        "  MM m={m} over 40GI, warm context: {:.2} s",
        warm.as_secs_f64()
    );
    println!(
        "  MM m={m} over 40GI, cold context: {:.2} s",
        cold.as_secs_f64()
    );
    println!(
        "  pre-initialization saves {:.2} s — why remote 40GI beats the local GPU at m=4096\n",
        cold.as_secs_f64() - warm.as_secs_f64()
    );
    assert!(cold > warm);
}

fn async_overlap_ablation() {
    println!("== Ablation 3: synchronous vs asynchronous input transfers ==");
    // Two input buffers copied to the device: synchronously (serial PCIe
    // charges on the caller) vs asynchronously on two streams (overlapped).
    let device = GpuDevice::tesla_c1060();
    let size = 64u32 << 20;
    let payload = vec![0u8; size as usize];

    let run = |use_async: bool| -> SimTime {
        let clock = virtual_clock();
        let mut ctx = device.create_phantom_context(clock.clone(), true);
        ctx.load_module(&rcuda_gpu::module::mm_module()).unwrap();
        let a = ctx.malloc(size).unwrap();
        let b = ctx.malloc(size).unwrap();
        if use_async {
            let s1 = ctx.stream_create().unwrap();
            let s2 = ctx.stream_create().unwrap();
            ctx.memcpy_h2d_async(a, &payload, s1).unwrap();
            ctx.memcpy_h2d_async(b, &payload, s2).unwrap();
            ctx.synchronize().unwrap();
        } else {
            ctx.memcpy_h2d(a, &payload).unwrap();
            ctx.memcpy_h2d(b, &payload).unwrap();
        }
        clock.now()
    };
    let sync = run(false);
    let overlapped = run(true);
    println!(
        "  2 × 64 MiB H2D, synchronous : {:.1} ms",
        sync.as_millis_f64()
    );
    println!(
        "  2 × 64 MiB H2D, async (2 streams): {:.1} ms",
        overlapped.as_millis_f64()
    );
    println!(
        "  overlap saves {:.1} ms (the extension the paper defers to future work)\n",
        sync.as_millis_f64() - overlapped.as_millis_f64()
    );
    assert!(overlapped < sync);
}

fn contention_ablation() {
    println!("== Ablation 4: multi-client contention on the server link ==");
    let case = CaseStudy::MatMul { dim: 8192 };
    let link = SharedLink::new(Arc::from(NetworkId::Ib40G.model()));
    for k in [1u32, 2, 4, 8] {
        let t = link.transfer_with_flows(case.memcpy_bytes().as_bytes(), k);
        println!(
            "  {k} concurrent clients: per-client transfer {:.1} ms ({}x solo)",
            t.as_millis_f64() * case.memcpy_count() as f64,
            k
        );
    }
    println!();
    // Silence the "unused" device/cost-model imports when assertions are
    // compiled out.
    let _ = NullCostModel;
}
