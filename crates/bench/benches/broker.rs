//! Broker-path costs: placement decision latency and the
//! failover-to-first-successful-call time a client pays when its daemon
//! dies mid-session.
//!
//! Placement is the broker's hot path — every (re)connect in cluster mode
//! asks the directory for an ordered candidate list — so its latency is
//! measured pure, against an in-memory [`Directory`] at several pool
//! sizes. Failover is measured end to end over live loopback TCP: a
//! two-daemon pool behind a broker, the session's owner shot, and the
//! clock runs from the kill to the first call that completes on the
//! survivor (dial through broker + verified journal replay included).
//!
//! Always writes `target/BENCH_broker.json` (override with
//! `BENCH_BROKER_OUT`): placement p50/p99 per pool size and the failover
//! recovery-time samples.

use criterion::{criterion_group, criterion_main, Criterion};
use rcuda::session::{Endpoint, Session};
use rcuda_api::CudaRuntime;
use rcuda_broker::{Broker, BrokerBuilder, Directory, HealthPolicy, PlacementPolicy};
use rcuda_gpu::module::build_module;
use rcuda_obs::ObsHandle;
use rcuda_proto::broker::Heartbeat;
use rcuda_server::RcudaDaemon;
use serde_json::json;
use std::time::{Duration, Instant};

/// Placement timing samples per pool size.
const PLACE_ITERS: usize = 2000;
/// End-to-end failover repetitions (each builds a fresh cluster).
const FAILOVER_ITERS: usize = 3;

fn pct_us(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let idx = ((samples.len() as f64 * q).ceil() as usize).max(1) - 1;
    samples[idx]
}

/// A directory with `n` heartbeating daemons, loads staggered so the
/// sort actually works.
fn populated_directory(n: usize) -> Directory {
    let mut dir = Directory::new(
        PlacementPolicy::LeastLoaded,
        HealthPolicy::default(),
        ObsHandle::none(),
    );
    let t = Instant::now();
    for i in 0..n {
        let id = dir.register(&format!("10.0.0.{i}:8000"), 4 << 30, t);
        dir.heartbeat(
            id,
            &Heartbeat {
                live_sessions: (i % 7) as u32,
                parked: 0,
                free_bytes: (4u64 << 30) - (i as u64) * (64 << 20),
                served: i as u64,
                draining: false,
                sessions: vec![i as u64 + 1000],
            },
            t,
        );
    }
    dir
}

/// Microseconds per placement decision at pool size `n`.
fn placement_samples(n: usize) -> Vec<f64> {
    let mut dir = populated_directory(n);
    (0..PLACE_ITERS)
        .map(|i| {
            let t0 = Instant::now();
            let addrs = dir.place(i as u64);
            let us = t0.elapsed().as_secs_f64() * 1e6;
            assert_eq!(addrs.len(), n);
            us
        })
        .collect()
}

fn fast_broker() -> Broker {
    BrokerBuilder::new()
        .health(HealthPolicy {
            suspect_after: Duration::from_millis(100),
            down_after: Duration::from_millis(300),
            recover_heartbeats: 2,
        })
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap()
}

fn daemon(broker: &Broker) -> RcudaDaemon {
    RcudaDaemon::builder()
        .broker(broker.addr())
        .broker_heartbeat_interval(Duration::from_millis(20))
        .bind("127.0.0.1:0")
        .unwrap()
}

/// Seconds from daemon kill to the first call that completes on the
/// survivor.
fn failover_recovery_secs() -> f64 {
    let broker = fast_broker();
    let mut daemons = vec![daemon(&broker), daemon(&broker)];
    assert!(broker.wait_for_daemons(2, Duration::from_secs(5)));

    let mut sess = Session::builder()
        .deadline(Duration::from_secs(2))
        .retries(3)
        .connect(Endpoint::Broker(broker.addr()))
        .unwrap();
    sess.initialize(&build_module(&[], 0)).unwrap();
    let p = sess.malloc(4096).unwrap();
    sess.memcpy_h2d(p, &[0x42u8; 4096]).unwrap();
    let token = sess.session_token().expect("broker session has a token");

    // Find the owner and shoot it.
    let deadline = Instant::now() + Duration::from_secs(5);
    let owner = loop {
        if let Some(i) = (0..daemons.len()).find(|&i| daemons[i].session_tokens().contains(&token))
        {
            break i;
        }
        assert!(Instant::now() < deadline, "no daemon reported the session");
        std::thread::sleep(Duration::from_millis(5));
    };
    let mut dead = daemons.remove(owner);
    let t0 = Instant::now();
    dead.shutdown();
    drop(dead);

    // First successful call after the kill: the client sees the broken
    // connection, re-places through the broker, and replays its journal.
    let bytes = sess
        .memcpy_d2h(p, 4096)
        .expect("failover must recover the session");
    let recovered = t0.elapsed().as_secs_f64();
    assert_eq!(bytes, vec![0x42u8; 4096], "replayed state is bit-identical");

    sess.free(p).unwrap();
    sess.finalize().unwrap();
    sess.finish();
    for mut d in daemons {
        d.shutdown();
    }
    recovered
}

fn write_artifact() {
    let mut placement = Vec::new();
    for n in [3usize, 16, 64] {
        let mut samples = placement_samples(n);
        let p50 = pct_us(&mut samples, 0.50);
        let p99 = pct_us(&mut samples, 0.99);
        println!("  placement over {n:>2} daemons: p50 {p50:.1} µs, p99 {p99:.1} µs");
        placement.push((n.to_string(), json!({ "p50_us": p50, "p99_us": p99 })));
    }
    let placement = serde_json::Value::Map(placement);

    let recoveries: Vec<f64> = (0..FAILOVER_ITERS)
        .map(|_| failover_recovery_secs())
        .collect();
    let worst = recoveries.iter().copied().fold(0.0f64, f64::max);
    println!(
        "  failover to first successful call: {:?} (worst {worst:.3} s)",
        recoveries
            .iter()
            .map(|s| format!("{s:.3}s"))
            .collect::<Vec<_>>()
    );

    let artifact = json!({
        "bench": "broker",
        "transport": "loopback-tcp",
        "placement_iters": PLACE_ITERS,
        "placement_us": placement,
        "failover_recovery_s": recoveries,
        "failover_worst_s": worst,
    });
    let path = std::env::var("BENCH_BROKER_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_broker.json"
        )
        .to_string()
    });
    std::fs::write(&path, serde_json::to_string_pretty(&artifact).unwrap()).unwrap();
    println!("  wrote {path}");
}

fn bench_broker(c: &mut Criterion) {
    write_artifact();

    let mut g = c.benchmark_group("broker");
    let mut dir = populated_directory(16);
    let mut i = 0u64;
    g.bench_function("place/16_daemons", |b| {
        b.iter(|| {
            i += 1;
            dir.place(i)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_broker);
criterion_main!(benches);
