//! The zero-copy data plane's price, measured: memcpy throughput through
//! the borrowed fast path over live loopback TCP, owned vs. into-buffer
//! D2H, at sizes straddling `VECTORED_WRITE_MIN`.
//!
//! Beyond the criterion timings, the bench always writes a machine-readable
//! artifact — `target/BENCH_memcpy.json` (override with `BENCH_MEMCPY_OUT`)
//! — with per-size throughput and both sides' buffer-pool counters, so CI
//! can diff data-plane regressions run over run without parsing criterion's
//! output directory.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcuda_api::CudaRuntime;
use rcuda_client::RemoteRuntime;
use rcuda_core::time::wall_clock;
use rcuda_core::DevicePtr;
use rcuda_gpu::GpuDevice;
use rcuda_server::RcudaDaemon;
use rcuda_transport::TcpTransport;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

/// Payload sizes: under, at, and well past the vectored-write threshold.
const SIZES: [usize; 3] = [4 * 1024, 64 * 1024, 1024 * 1024];
/// Iterations per size for the artifact's throughput numbers.
const ARTIFACT_ITERS: usize = 64;

struct Rig {
    daemon: RcudaDaemon,
    rt: RemoteRuntime<TcpTransport>,
}

fn rig() -> Rig {
    let daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let transport = TcpTransport::connect(daemon.local_addr()).unwrap();
    let mut rt = RemoteRuntime::new(transport, wall_clock());
    rt.initialize(&rcuda_gpu::module::build_module(&["fill"], 0))
        .unwrap();
    Rig { daemon, rt }
}

fn gbps(bytes: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / secs / 1e9
}

/// Time `iters` round trips of `f`, returning throughput in Gbit/s.
fn measure(iters: usize, bytes_per_iter: usize, mut f: impl FnMut()) -> f64 {
    // One warm pass so pools and stream buffers are grown before timing.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    gbps(
        (iters * bytes_per_iter) as u64,
        start.elapsed().as_secs_f64(),
    )
}

/// The before/after-comparable artifact: per-size H2D, owned-D2H and
/// into-D2H throughput plus both pools' hit/miss counters.
fn write_artifact() {
    let Rig { mut daemon, mut rt } = rig();
    let mut sizes = Vec::new();
    for size in SIZES {
        let dev = rt.malloc(size as u32).unwrap();
        let data = vec![0x5au8; size];
        let mut out = vec![0u8; size];
        let h2d = measure(ARTIFACT_ITERS, size, || {
            rt.memcpy_h2d(dev, &data).unwrap();
        });
        let d2h_owned = measure(ARTIFACT_ITERS, size, || {
            black_box(rt.memcpy_d2h(dev, size as u32).unwrap());
        });
        let d2h_into = measure(ARTIFACT_ITERS, size, || {
            rt.memcpy_d2h_into(dev, &mut out).unwrap();
        });
        assert_eq!(out, data, "transfers must round-trip bit-exactly");
        println!(
            "  memcpy {size} B over loopback TCP: H2D {h2d:.2} Gb/s, \
             D2H(owned) {d2h_owned:.2} Gb/s, D2H(into) {d2h_into:.2} Gb/s"
        );
        sizes.push(json!({
            "bytes": size,
            "iters": ARTIFACT_ITERS,
            "h2d_gbps": h2d,
            "d2h_owned_gbps": d2h_owned,
            "d2h_into_gbps": d2h_into,
        }));
        rt.free(dev).unwrap();
    }

    let pool_json = |p: &rcuda_obs::PoolStats| {
        json!({
            "hits": p.hits,
            "misses": p.misses,
            "returns": p.returns,
            "discards": p.discards,
            "pooled": p.pooled,
            "pooled_bytes": p.pooled_bytes,
            "hit_rate": p.hit_rate(),
        })
    };
    let client_pool = rt.pool_stats();
    let metrics = rt.metrics();
    rt.finalize().unwrap();
    drop(rt);
    assert!(daemon.wait_for_sessions(1, std::time::Duration::from_secs(5)));
    daemon.shutdown();
    let reports = daemon.session_reports();

    let artifact = json!({
        "bench": "memcpy_path",
        "transport": "loopback-tcp",
        "sizes": sizes,
        "client_pool": pool_json(&client_pool),
        "server_pool": pool_json(&reports[0].pool),
        "bytes_sent": metrics.bytes_sent,
        "bytes_received": metrics.bytes_received,
    });
    // Benches run with the package dir as cwd; anchor the default to the
    // workspace target dir so the artifact lands where CI looks for it.
    let path = std::env::var("BENCH_MEMCPY_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_memcpy.json"
        )
        .to_string()
    });
    std::fs::write(&path, serde_json::to_string_pretty(&artifact).unwrap()).unwrap();
    println!("  wrote {path}");
}

fn bench_memcpy_path(c: &mut Criterion) {
    write_artifact();

    let Rig { mut daemon, mut rt } = rig();
    let mut devs: Vec<(usize, DevicePtr)> = Vec::new();
    for size in SIZES {
        devs.push((size, rt.malloc(size as u32).unwrap()));
    }

    let mut g = c.benchmark_group("memcpy_path");
    for (size, dev) in devs {
        let data = vec![0x5au8; size];
        let mut out = vec![0u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("h2d/{size}"), |b| {
            b.iter(|| rt.memcpy_h2d(dev, black_box(&data)).unwrap())
        });
        g.bench_function(format!("d2h_owned/{size}"), |b| {
            b.iter(|| black_box(rt.memcpy_d2h(dev, size as u32).unwrap()))
        });
        g.bench_function(format!("d2h_into/{size}"), |b| {
            b.iter(|| rt.memcpy_d2h_into(dev, black_box(&mut out)).unwrap())
        });
    }
    g.finish();
    drop(rt);
    daemon.shutdown();
}

criterion_group!(benches, bench_memcpy_path);
criterion_main!(benches);
