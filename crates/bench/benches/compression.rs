//! The adaptive wire codec, measured end to end — and validated against the
//! §V compression model closed-loop.
//!
//! Three experiments, all through the real middleware:
//!
//! 1. **Per-class ratio/goodput** — fresh codec sessions over simulated
//!    GigaE (`CodecMode::Always`) push dense-random, sparse and structured
//!    payloads at 4 KiB / 64 KiB / 1 MiB; the virtual clock charges exactly
//!    the bytes that cross the wire, so effective goodput and achieved
//!    ratio fall out per class, along with the codec's decision counters.
//! 2. **Acceptance gates** — compressible 1 MiB payloads over simulated
//!    GigaE must move at ≥ 1.5× the raw link; incompressible random floats
//!    over loopback TCP with the *adaptive* codec must cost ≤ 3% versus a
//!    codec-less session (the policy must decline, cheaply).
//! 3. **Closed-loop model check** — the measured sparse-1 MiB virtual time
//!    must match `app_transfer(head + enc_len)` + ack arithmetic built from
//!    the codec's own achieved ratio, tying `rcuda_netsim::CompressionModel`
//!    to the running system.
//!
//! Always writes `target/BENCH_compression.json` (override with
//! `BENCH_COMPRESSION_OUT`) so CI can diff codec regressions run over run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::{rngs::StdRng, RngCore, SeedableRng};
use rcuda::api::CudaRuntime;
use rcuda::core::Clock as _;
use rcuda::netsim::{Compressibility, NetworkId};
use rcuda::proto::{BufferPool, Codec, CodecMode};
use rcuda::session::{Endpoint, Session};
use rcuda_client::RemoteRuntime;
use rcuda_core::time::wall_clock;
use rcuda_gpu::GpuDevice;
use rcuda_server::RcudaDaemon;
use rcuda_transport::TcpTransport;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 3] = [4 * 1024, 64 * 1024, 1024 * 1024];
const SIM_ITERS: usize = 8;
const TCP_ITERS: usize = 48;
const TCP_ROUNDS: usize = 3;

#[derive(Clone, Copy)]
enum Kind {
    Dense,
    Sparse,
    Structured,
}

impl Kind {
    const ALL: [Kind; 3] = [Kind::Dense, Kind::Sparse, Kind::Structured];

    fn label(self) -> &'static str {
        match self {
            Kind::Dense => "dense-random-f32",
            Kind::Sparse => "sparse-zero-runs",
            Kind::Structured => "structured-records",
        }
    }

    /// Deterministic payload of this class.
    fn payload(self, len: usize) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(0x5eed ^ len as u64);
        match self {
            // Full-entropy bytes: what a dense random f32 matrix looks like
            // to a byte-level matcher.
            Kind::Dense => {
                let mut buf = vec![0u8; len];
                rng.fill_bytes(&mut buf);
                buf
            }
            // ~90% zero runs with scattered nonzero words (iterative-solver
            // style sparsity).
            Kind::Sparse => {
                let mut buf = vec![0u8; len];
                let mut i = 0;
                while i + 4 <= len {
                    let mut word = [0u8; 4];
                    rng.fill_bytes(&mut word);
                    buf[i..i + 4].copy_from_slice(&word);
                    i += 40; // one live word per ten
                }
                buf
            }
            // A 64-byte record with a random half and a fixed half,
            // repeated — record streams, padded tensors.
            Kind::Structured => {
                let mut record = [0u8; 64];
                rng.fill_bytes(&mut record[..32]);
                let mut buf = vec![0u8; len];
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = record[i % 64];
                }
                // Perturb every record's first byte so the stream is not one
                // giant match.
                let mut i = 0;
                while i < len {
                    buf[i] = buf[i].wrapping_add((i / 64) as u8);
                    i += 64;
                }
                buf
            }
        }
    }
}

fn gbps(bytes: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / secs / 1e9
}

/// Push `iters` H2D copies of `data` through a fresh codec session over
/// simulated GigaE; return (virtual seconds, codec stats, decisions json).
fn simulated_run(data: &[u8], mode: CodecMode) -> (f64, rcuda::proto::CodecStats) {
    let mut sess = Session::builder()
        .codec(true)
        .connect(Endpoint::Simulated(NetworkId::GigaE))
        .expect("simulated session");
    sess.set_codec_mode(mode);
    sess.initialize(&rcuda_gpu::module::build_module(&["fill"], 0))
        .unwrap();
    assert!(sess.codec_active(), "server must advertise the codec");
    let dev = sess.malloc(data.len() as u32).unwrap();
    // Warm pass: module init, malloc and pool growth stay out of the
    // measured window.
    sess.memcpy_h2d(dev, data).unwrap();
    let start = sess.clock().now();
    for _ in 0..SIM_ITERS {
        sess.memcpy_h2d(dev, data).unwrap();
    }
    let elapsed = (sess.clock().now() - start).as_secs_f64();
    let stats = sess.codec_stats().expect("codec enabled");
    sess.free(dev).unwrap();
    sess.finish();
    (elapsed, stats)
}

/// Loopback-TCP H2D goodput for 1 MiB dense-random floats, max of
/// `TCP_ROUNDS` rounds (max is robust against scheduler noise).
fn loopback_goodput(codec: bool) -> (f64, Option<rcuda::proto::CodecStats>) {
    let mut daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let transport = TcpTransport::connect(daemon.local_addr()).unwrap();
    let mut rt = RemoteRuntime::new(transport, wall_clock());
    rt.set_codec(codec);
    rt.initialize(&rcuda_gpu::module::build_module(&["fill"], 0))
        .unwrap();
    if codec {
        assert!(rt.codec_active(), "daemon must advertise the codec");
    }
    let size = 1 << 20;
    let data = Kind::Dense.payload(size);
    let dev = rt.malloc(size as u32).unwrap();
    rt.memcpy_h2d(dev, &data).unwrap(); // warm
    let mut best = 0.0f64;
    for _ in 0..TCP_ROUNDS {
        let start = Instant::now();
        for _ in 0..TCP_ITERS {
            rt.memcpy_h2d(dev, &data).unwrap();
        }
        best = best.max(gbps(
            (TCP_ITERS * size) as u64,
            start.elapsed().as_secs_f64(),
        ));
    }
    let stats = rt.codec_stats();
    rt.free(dev).unwrap();
    rt.finalize().unwrap();
    drop(rt);
    daemon.shutdown();
    (best, stats)
}

fn decisions_json(s: &rcuda::proto::CodecStats) -> serde_json::Value {
    json!({
        "compressed": s.compressed,
        "raw_small": s.raw_small,
        "raw_entropy": s.raw_entropy,
        "raw_policy": s.raw_policy,
        "raw_expanded": s.raw_expanded,
    })
}

fn write_artifact() {
    let gige = NetworkId::GigaE.model();
    let raw_link_gbps = gbps(1 << 20, gige.bulk_transfer(1 << 20).as_secs_f64());

    // 1. Per-class ratio and effective goodput over simulated GigaE.
    let mut classes = Vec::new();
    for kind in Kind::ALL {
        for size in SIZES {
            let data = kind.payload(size);
            let (secs, stats) = simulated_run(&data, CodecMode::Always);
            let eff = gbps((SIM_ITERS * size) as u64, secs);
            println!(
                "  {:<20} {:>8} B: ratio {:.3}, effective {:>7.3} Gb/s (raw link {:.3})",
                kind.label(),
                size,
                stats.ratio(),
                eff,
                raw_link_gbps,
            );
            let decisions = decisions_json(&stats);
            classes.push(json!({
                "kind": kind.label(),
                "bytes": size,
                "iters": SIM_ITERS,
                "ratio": stats.ratio(),
                "effective_gbps": eff,
                "decisions": decisions,
            }));
        }
    }

    // 2a. Gate: compressible 1 MiB over simulated GigaE ≥ 1.5× raw link.
    let sparse = Kind::Sparse.payload(1 << 20);
    let (secs, sparse_stats) = simulated_run(&sparse, CodecMode::Always);
    let sparse_eff = gbps((SIM_ITERS as u64) << 20, secs);
    let speedup = sparse_eff / raw_link_gbps;
    assert!(
        speedup >= 1.5,
        "compressible 1 MiB over simulated GigaE: {sparse_eff:.3} Gb/s is only \
         {speedup:.2}x the {raw_link_gbps:.3} Gb/s raw link (gate: 1.5x)"
    );
    assert!(sparse_stats.compressed > 0, "sparse payloads must compress");

    // 2b. Gate: incompressible random floats over loopback TCP, adaptive
    // codec ≤ 3% behind a codec-less session.
    let (base_gbps, _) = loopback_goodput(false);
    let (codec_gbps, codec_stats) = loopback_goodput(true);
    let codec_stats = codec_stats.expect("codec session has stats");
    let regression = (base_gbps - codec_gbps) / base_gbps;
    println!(
        "  loopback incompressible: baseline {base_gbps:.2} Gb/s, adaptive codec \
         {codec_gbps:.2} Gb/s ({:+.2}%)",
        regression * 100.0
    );
    assert!(
        regression <= 0.03,
        "adaptive codec on incompressible data costs {:.1}% over loopback (gate: 3%)",
        regression * 100.0
    );
    assert_eq!(
        codec_stats.compressed, 0,
        "adaptive policy must decline incompressible floats: {codec_stats:?}"
    );
    assert!(
        codec_stats.raw_entropy + codec_stats.raw_policy > 0,
        "declines must be recorded: {codec_stats:?}"
    );

    // 3. Closed-loop model check: rebuild the sparse-1 MiB per-copy time
    // from the codec's achieved ratio and the GigaE model. One H2D copy is
    // one flushed request message (20-byte head + 4-byte enc_len + encoded
    // body) plus a 4-byte ack the other way.
    let enc_per_copy = sparse_stats.bytes_enc as f64 / sparse_stats.compressed as f64;
    let predicted = gige
        .app_transfer(24 + enc_per_copy.ceil() as u64)
        .as_secs_f64()
        + gige.app_transfer(4).as_secs_f64();
    let measured = secs / SIM_ITERS as f64;
    let rel_err = (measured - predicted) / predicted;
    println!(
        "  closed loop (sparse 1 MiB): measured {:.3} ms/copy vs model {:.3} ms/copy \
         ({:+.1}%)",
        measured * 1e3,
        predicted * 1e3,
        rel_err * 100.0
    );
    assert!(
        rel_err.abs() < 0.10,
        "simulated codec session deviates {:.1}% from the compression model",
        rel_err * 100.0
    );

    // Analytic scenario predictions for context: the netsim model's adaptive
    // goodput per scenario on GigaE (includes its calibrated CPU terms).
    let model_scenarios: Vec<_> = Compressibility::ALL
        .iter()
        .map(|c| {
            json!({
                "scenario": c.label(),
                "ratio": c.ratio(),
                "model_speedup": c.model().speedup(gige.as_ref()),
            })
        })
        .collect();

    let gates = json!({
        "compressible_speedup": speedup,
        "compressible_floor": 1.5,
        "incompressible_regression": regression,
        "incompressible_ceiling": 0.03,
    });
    let closed_loop = json!({
        "measured_ms_per_copy": measured * 1e3,
        "predicted_ms_per_copy": predicted * 1e3,
        "rel_err": rel_err,
    });
    let artifact = json!({
        "bench": "compression",
        "raw_link_gbps": raw_link_gbps,
        "classes": classes,
        "gates": gates,
        "closed_loop": closed_loop,
        "model_scenarios": model_scenarios,
    });
    let path = std::env::var("BENCH_COMPRESSION_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_compression.json"
        )
        .to_string()
    });
    std::fs::write(&path, serde_json::to_string_pretty(&artifact).unwrap()).unwrap();
    println!("  wrote {path}");
}

fn bench_compression(c: &mut Criterion) {
    write_artifact();

    // Raw codec throughput, wall clock: what the netsim calibration
    // constants claim to approximate.
    let pool = BufferPool::new();
    let codec = Codec::with_mode(pool.clone(), CodecMode::Always);
    let mut g = c.benchmark_group("codec");
    for kind in [Kind::Sparse, Kind::Structured] {
        let data = kind.payload(1 << 20);
        g.throughput(Throughput::Bytes(1 << 20));
        g.bench_function(format!("encode/{}", kind.label()), |b| {
            b.iter(|| black_box(codec.encode(black_box(&data))))
        });
        let mut wire = Vec::new();
        codec.write_block(&mut wire, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        g.bench_function(format!("decode/{}", kind.label()), |b| {
            b.iter(|| {
                codec
                    .read_block_into(&mut std::io::Cursor::new(&wire), &mut out)
                    .unwrap()
            })
        });
        assert_eq!(out, data, "decode must round-trip");
    }
    // Adaptive decline on dense data — the cost the 3% gate bounds.
    let dense = Kind::Dense.payload(1 << 20);
    let adaptive = Codec::new(pool);
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("decline/dense-random", |b| {
        b.iter(|| black_box(adaptive.encode(black_box(&dense))))
    });
    g.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
