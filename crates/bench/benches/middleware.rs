//! Criterion benches of the middleware itself: call round-trip latency and
//! memcpy throughput through the full client → protocol → transport →
//! server → device path (in-process channel transport, so the numbers are
//! the middleware's own overhead, not a kernel's).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcuda_api::CudaRuntime;
use rcuda_client::RemoteRuntime;
use rcuda_core::time::wall_clock;
use rcuda_gpu::module::build_module;
use rcuda_gpu::GpuDevice;
use rcuda_server::{serve_connection, ServerConfig};
use rcuda_transport::channel_pair;
use std::hint::black_box;
use std::thread::JoinHandle;

/// Stand up an in-process client/server pair over channels.
fn session() -> (
    RemoteRuntime<rcuda_transport::ChannelTransport>,
    JoinHandle<()>,
) {
    let (client_side, server_side) = channel_pair();
    let device = GpuDevice::tesla_c1060_functional();
    let cfg = ServerConfig::default();
    let server = std::thread::spawn(move || {
        let _ = serve_connection(server_side, &device, wall_clock(), &cfg);
    });
    let mut rt = RemoteRuntime::new(client_side, wall_clock());
    rt.initialize(&build_module(&["fill", "vec_add"], 0))
        .unwrap();
    (rt, server)
}

fn bench_call_latency(c: &mut Criterion) {
    let (mut rt, server) = session();
    c.bench_function("remote_malloc_free_roundtrip", |b| {
        b.iter(|| {
            let p = rt.malloc(black_box(4096)).unwrap();
            rt.free(p).unwrap();
        })
    });
    rt.finalize().unwrap();
    drop(rt);
    let _ = server.join();
}

fn bench_memcpy_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("remote_memcpy");
    for size in [4u32 << 10, 256 << 10, 4 << 20] {
        let (mut rt, server) = session();
        let p = rt.malloc(size).unwrap();
        let data = vec![0x5Au8; size as usize];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("h2d", size), &data, |b, data| {
            b.iter(|| rt.memcpy_h2d(black_box(p), data).unwrap())
        });
        g.bench_function(BenchmarkId::new("d2h", size), |b| {
            b.iter(|| black_box(rt.memcpy_d2h(p, size).unwrap()))
        });
        rt.free(p).unwrap();
        rt.finalize().unwrap();
        drop(rt);
        let _ = server.join();
    }
    g.finish();
}

fn bench_remote_kernel(c: &mut Criterion) {
    let (mut rt, server) = session();
    let n = 1024u32;
    let p = rt.malloc(n * 4).unwrap();
    let args = rcuda_core::ArgPack::new()
        .push_ptr(p)
        .push_u32(n)
        .push_f32(1.0)
        .into_bytes();
    c.bench_function("remote_fill_launch", |b| {
        b.iter(|| {
            rt.launch(
                "fill",
                rcuda_core::Dim3::x(n / 64),
                rcuda_core::Dim3::x(64),
                0,
                0,
                black_box(&args),
            )
            .unwrap()
        })
    });
    rt.free(p).unwrap();
    rt.finalize().unwrap();
    drop(rt);
    let _ = server.join();
}

criterion_group!(
    benches,
    bench_call_latency,
    bench_memcpy_throughput,
    bench_remote_kernel
);
criterion_main!(benches);
