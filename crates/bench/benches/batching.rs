//! Batched vs. per-call submission — the small-message coalescing ablation
//! DESIGN.md §5 calls for, over both substrates:
//!
//! * **SimTransport** (virtual clock): flush counts and simulated execution
//!   time of the FFT case study at paper scale;
//! * **loopback TCP** (wall clock, criterion-timed): a functional FFT
//!   session against a live daemon, per-call vs. pipelined.
//!
//! The flush-count evidence is asserted, not just printed: at window depth
//! ≥ 4 the pipelined FFT run crosses the network in at most half the
//! flushes of the synchronous per-call protocol, with bit-identical output.

use criterion::{criterion_group, criterion_main, Criterion};
use rcuda_api::run_fft_bytes;
use rcuda_client::RemoteRuntime;
use rcuda_core::time::{virtual_clock, wall_clock};
use rcuda_core::{Clock as _, SimTime};
use rcuda_gpu::GpuDevice;
use rcuda_kernels::complex::complex_to_bytes;
use rcuda_kernels::workload::fft_input;
use rcuda_netsim::NetworkId;
use rcuda_server::{serve_connection, RcudaDaemon, ServerConfig};
use rcuda_transport::sim_pair;
use std::hint::black_box;
use std::sync::Arc;

/// Simulated FFT execution over `net` at the given pipeline depth; returns
/// (simulated time, client flush count).
fn simulated_fft(batch: u32, net: NetworkId, depth: usize) -> (SimTime, u64) {
    let clock = virtual_clock();
    let shared: rcuda_core::SharedClock = clock.clone();
    let (client_side, server_side) = sim_pair(Arc::from(net.model()), shared.clone());
    let device = GpuDevice::tesla_c1060();
    let config = ServerConfig {
        preinitialize_context: true,
        phantom_memory: true,
        ..Default::default()
    };
    let server_clock = shared.clone();
    let server = std::thread::spawn(move || {
        let _ = serve_connection(server_side, &device, server_clock, &config);
    });
    let mut rt = RemoteRuntime::new(client_side, shared);
    rt.set_pipeline_depth(depth).unwrap();
    let input = vec![0u8; (batch * 512 * 8) as usize];
    run_fft_bytes(&mut rt, &*clock, batch, &input).unwrap();
    let flushes = rt.metrics().messages_sent;
    let t = clock.now();
    drop(rt);
    let _ = server.join();
    (t, flushes)
}

/// Functional FFT over loopback TCP; returns (output bytes, flush count).
fn tcp_fft(addr: std::net::SocketAddr, batch: u32, input: &[u8], depth: usize) -> (Vec<u8>, u64) {
    let transport = rcuda_transport::TcpTransport::connect(addr).unwrap();
    let mut rt = RemoteRuntime::new(transport, wall_clock());
    rt.set_pipeline_depth(depth).unwrap();
    let clock = wall_clock();
    let report = run_fft_bytes(&mut rt, &*clock, batch, input).unwrap();
    (report.output, rt.metrics().messages_sent)
}

fn flush_count_evidence() {
    println!("== Ablation 5: batched vs. per-call submission (FFT case study) ==");
    for depth in [2usize, 4, 8] {
        let (t_pipe, f_pipe) = simulated_fft(2048, NetworkId::GigaE, depth);
        let (t_sync, f_sync) = simulated_fft(2048, NetworkId::GigaE, 0);
        println!(
            "  FFT batch=2048 over GigaE, depth {depth}: {f_pipe} flushes \
             ({f_sync} per-call), {:.2} ms vs {:.2} ms",
            t_pipe.as_millis_f64(),
            t_sync.as_millis_f64(),
        );
        assert!(
            f_pipe < f_sync,
            "pipelining must issue strictly fewer flushes"
        );
        if depth >= 4 {
            assert!(
                f_sync >= 2 * f_pipe,
                "depth {depth}: expected ≥2× fewer flushes, got {f_pipe} vs {f_sync}"
            );
            assert!(t_pipe < t_sync, "fewer round trips must cost less time");
        }
    }
    println!();
}

fn bench_batching(c: &mut Criterion) {
    flush_count_evidence();

    let mut g = c.benchmark_group("batching");

    // Simulated substrate: paper-scale FFT on GigaE.
    g.bench_function("sim/per-call", |b| {
        b.iter(|| black_box(simulated_fft(2048, NetworkId::GigaE, 0)))
    });
    g.bench_function("sim/depth-4", |b| {
        b.iter(|| black_box(simulated_fft(2048, NetworkId::GigaE, 4)))
    });

    // Loopback TCP substrate: small functional batch against a live daemon.
    let daemon = RcudaDaemon::builder()
        .device(GpuDevice::tesla_c1060_functional())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = daemon.local_addr();
    let batch = 16u32;
    let input = complex_to_bytes(&fft_input(batch as usize, 7));

    // Bit-identical evidence across modes before timing anything.
    let (sync_out, sync_flushes) = tcp_fft(addr, batch, &input, 0);
    let (pipe_out, pipe_flushes) = tcp_fft(addr, batch, &input, 4);
    assert_eq!(pipe_out, sync_out, "batched output must be bit-identical");
    assert!(
        sync_flushes >= 2 * pipe_flushes,
        "TCP: expected ≥2× fewer flushes, got {pipe_flushes} vs {sync_flushes}"
    );
    println!(
        "  FFT batch={batch} over loopback TCP: {pipe_flushes} flushes \
         (depth 4) vs {sync_flushes} (per-call), outputs identical\n"
    );

    g.bench_function("tcp/per-call", |b| {
        b.iter(|| black_box(tcp_fft(addr, batch, &input, 0)))
    });
    g.bench_function("tcp/depth-4", |b| {
        b.iter(|| black_box(tcp_fft(addr, batch, &input, 4)))
    });
    g.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
