//! Cluster GPU-capacity planning — the question the paper's conclusion
//! poses for future work: "to be able to determine the exact amount of GPUs
//! necessary in each particular case" (§VII).
//!
//! First-order model. A cluster has `nodes` application nodes, each issuing
//! remote executions of one case study at some rate. One execution occupies
//! its GPU server for
//!
//! ```text
//! service(G) = gpu_busy + k · transfer(net) · max(1, concurrent(G))
//! ```
//!
//! where `gpu_busy` is the local-GPU execution time (kernel + PCIe +
//! per-session overheads, from the calibration) and the transfer term is
//! inflated by fair-share link contention when more than one client is
//! concurrently active per server (`rcuda-netsim`'s [`SharedLink`] model).
//! The planner picks the smallest GPU count `G` whose per-GPU utilization
//! stays under a target, solving the service-time/contention fixed point by
//! iteration.
//!
//! [`SharedLink`]: rcuda_netsim::SharedLink

use rcuda_core::{CaseStudy, SimTime};
use rcuda_netsim::NetworkId;

use crate::calib::Calibration;
use crate::estimate::total_transfer_time;

/// What the cluster looks like and how hard it drives the GPUs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Application nodes (all assumed GPU-less).
    pub nodes: u32,
    /// Executions per second issued by each node.
    pub per_node_rate_hz: f64,
    /// The workload being offloaded.
    pub case: CaseStudy,
    /// The cluster interconnect.
    pub network: NetworkId,
    /// Maximum acceptable per-GPU utilization (0, 1], e.g. 0.7.
    pub utilization_target: f64,
}

/// The planner's answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPlan {
    /// GPUs (= GPU servers) needed.
    pub gpus: u32,
    /// Expected per-GPU utilization at that count.
    pub utilization: f64,
    /// Expected service time per execution, including contention.
    pub service_time: SimTime,
    /// Expected concurrently-active clients per server.
    pub concurrency: f64,
    /// GPUs saved versus the GPU-per-node configuration the paper argues
    /// against.
    pub gpus_saved: u32,
}

/// Size the GPU pool for a cluster.
///
/// Returns `None` if even one GPU per node cannot meet the utilization
/// target (the workload saturates dedicated hardware).
pub fn plan_capacity(spec: &ClusterSpec, calib: &Calibration) -> Option<CapacityPlan> {
    assert!(spec.nodes > 0, "a cluster has nodes");
    assert!(
        spec.utilization_target > 0.0 && spec.utilization_target <= 1.0,
        "utilization target must be in (0, 1]"
    );
    assert!(spec.per_node_rate_hz >= 0.0);

    let gpu_busy = calib.gpu_time(spec.case).as_secs_f64();
    let base_transfer = total_transfer_time(spec.case, spec.network).as_secs_f64();
    let offered_rate = spec.nodes as f64 * spec.per_node_rate_hz; // executions/s

    for gpus in 1..=spec.nodes {
        // Fixed point: concurrency -> service time -> concurrency.
        let mut concurrency = 1.0f64;
        let mut service = gpu_busy + base_transfer;
        for _ in 0..32 {
            service = gpu_busy + base_transfer * concurrency.max(1.0);
            // Little's law per server: active = arrival rate × service time.
            concurrency = offered_rate / gpus as f64 * service;
        }
        let utilization = offered_rate * service / gpus as f64;
        if utilization <= spec.utilization_target {
            return Some(CapacityPlan {
                gpus,
                utilization,
                service_time: SimTime::from_secs_f64(service),
                concurrency,
                gpus_saved: spec.nodes - gpus,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(nodes: u32, rate: f64) -> ClusterSpec {
        ClusterSpec {
            nodes,
            per_node_rate_hz: rate,
            case: CaseStudy::MatMul { dim: 8192 },
            network: NetworkId::Ib40G,
            utilization_target: 0.7,
        }
    }

    #[test]
    fn light_load_needs_one_gpu() {
        // 32 nodes each running one m=8192 MM every 20 minutes: a single
        // shared GPU loafs.
        let c = Calibration::paper();
        let plan = plan_capacity(&spec(32, 1.0 / 1200.0), &c).unwrap();
        assert_eq!(plan.gpus, 1);
        assert!(plan.utilization < 0.3, "{}", plan.utilization);
        assert_eq!(plan.gpus_saved, 31);
    }

    #[test]
    fn heavier_load_scales_gpu_count() {
        let c = Calibration::paper();
        let light = plan_capacity(&spec(32, 1.0 / 1200.0), &c).unwrap();
        let heavy = plan_capacity(&spec(32, 1.0 / 60.0), &c).unwrap();
        assert!(heavy.gpus > light.gpus, "{heavy:?} vs {light:?}");
        assert!(heavy.gpus < 32, "still saves hardware");
        assert!(heavy.utilization <= 0.7);
    }

    #[test]
    fn saturating_load_returns_none() {
        // Nodes continuously issuing back-to-back executions: the GPU busy
        // time alone exceeds what a GPU per node can absorb at the target.
        let c = Calibration::paper();
        let gpu_busy = c.gpu_time(CaseStudy::MatMul { dim: 8192 }).as_secs_f64();
        let rate = 2.0 / gpu_busy; // 2× oversubscribed per node
        assert_eq!(plan_capacity(&spec(4, rate), &c), None);
    }

    #[test]
    fn slower_network_needs_more_gpus_under_contention() {
        let c = Calibration::paper();
        let rate = 1.0 / 120.0;
        let ib = plan_capacity(
            &ClusterSpec {
                network: NetworkId::Ib40G,
                ..spec(64, rate)
            },
            &c,
        )
        .unwrap();
        let ge = plan_capacity(
            &ClusterSpec {
                network: NetworkId::GigaE,
                ..spec(64, rate)
            },
            &c,
        )
        .unwrap();
        assert!(
            ge.gpus >= ib.gpus,
            "GigaE ({}) should not need fewer GPUs than 40GI ({})",
            ge.gpus,
            ib.gpus
        );
        assert!(ge.service_time > ib.service_time);
    }

    #[test]
    fn utilization_respects_target_monotonically() {
        let c = Calibration::paper();
        for rate_div in [2400.0, 600.0, 120.0] {
            if let Some(plan) = plan_capacity(&spec(32, 1.0 / rate_div), &c) {
                assert!(plan.utilization <= 0.7 + 1e-9, "rate 1/{rate_div}");
                assert!(plan.gpus + plan.gpus_saved == 32);
            }
        }
    }

    #[test]
    #[should_panic(expected = "utilization target")]
    fn bad_target_panics() {
        let c = Calibration::paper();
        let mut s = spec(4, 0.001);
        s.utilization_target = 1.5;
        plan_capacity(&s, &c);
    }
}
