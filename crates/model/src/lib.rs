//! The paper's performance-estimation model (its primary contribution) and
//! everything needed to regenerate Tables II–VI and Figures 3–6.
//!
//! ## Methodology being reproduced (§V)
//!
//! For a case study whose execution moves `k` bulk copies of `d` bytes each
//! (`k = 3` for MM, `k = 2` for FFT):
//!
//! ```text
//! transfer(net)    = d / bandwidth(net)                 (Tables III and V)
//! fixed            = measured(src net) − k·transfer(src net)
//! estimate(dst)    = fixed + k·transfer(dst net)        (Tables IV and VI)
//! error            = (estimate − measured(dst)) / measured(dst)
//! ```
//!
//! ## Calibration
//!
//! No Tesla C1060 or InfiniBand fabric exists here, so "measured" values
//! come from a [`testbed::SimulatedTestbed`] whose component models are
//! least-squares fitted ([`calib`]) to the paper's own reported
//! measurements, using physically motivated bases (`a·m³ + b·m² + c` for
//! MM — kernel, memory-bound work, constant overhead; interpolation through
//! the noisier FFT points) plus an `α/d + β` TCP-window distortion for
//! GigaE application transfers.
//! The embedded ground truth lives in [`paperdata`]; golden tests assert the
//! fits reproduce the paper's columns to within a few percent, and all
//! *derived* tables are then produced by running the paper's methodology on
//! the simulator's output — not by copying the paper's numbers.

pub mod calib;
pub mod capacity;
pub mod chart;
pub mod compare;
pub mod estimate;
pub mod figures;
pub mod montecarlo;
pub mod overlap;
pub mod paperdata;
pub mod pipeline;
pub mod placement;
pub mod render;
pub mod tables;
pub mod testbed;
pub mod workloads;

pub use calib::{Calibration, PolyFit};
pub use capacity::{plan_capacity, CapacityPlan, ClusterSpec};
pub use compare::{compare_report, CompareReport, PhaseRow};
pub use estimate::{
    cross_validate, estimate, estimate_compressed, fixed_time, transfer_time,
    transfer_time_compressed, CrossValidationRow,
};
pub use montecarlo::{default_error_bar, error_bar, Distribution, ErrorBar};
pub use overlap::{estimate_async, overlap_benefit};
pub use pipeline::{estimate_pipelined, estimate_pipelined_with, PipelineEstimate};
pub use placement::{
    compare_strategies, predict_placement, random_max_load_bound, PlacementForecast,
    PlacementStrategy,
};
pub use testbed::SimulatedTestbed;
pub use workloads::{
    closed_loop_wait, estimate_workload, fixed_time_workload, open_loop_wait, PhaseKind,
    PhaseShape, WorkloadShape,
};
