//! Extended §V estimator for phase-structured workloads.
//!
//! The paper's model (see [`crate::estimate`]) prices an execution as a
//! network-independent fixed time plus `k` *bulk* copies at the target
//! network's effective bandwidth — valid for MM/FFT because they move "few,
//! large messages". The AI-inference workloads in `rcuda-workloads` break
//! that assumption two ways:
//!
//! 1. **Call-rate-bound phases.** Thousands of sub-4 KiB launches/memcpys
//!    spend their time in per-message latency, not bandwidth. Pricing them
//!    with `bytes / bandwidth` underestimates by orders of magnitude; the
//!    extension charges `n · round_trip(avg_request, avg_response)` instead.
//! 2. **Queueing under concurrency.** An open/closed-loop tenant mix
//!    contends for the daemon's shards; the extension adds an M/D/c-style
//!    wait term on top of the per-client service estimate.
//!
//! The original single-phase model stays untouched in [`crate::estimate`] —
//! regression tests below pin its MM/FFT outputs to their pre-extension
//! values so the paper's Tables IV–VI are provably undisturbed.

use rcuda_core::SimTime;
use rcuda_netsim::NetworkModel;
use serde::Serialize;

/// How a phase's network share scales when re-priced onto another network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PhaseKind {
    /// Few large messages: the paper's regime. Priced as one application
    /// transfer per direction on the phase's byte totals.
    BulkTransfer,
    /// Many small synchronous exchanges: priced per call as a full round
    /// trip of the average request/response — the per-call latency floor
    /// the paper's bandwidth-only arithmetic cannot see.
    CallRate,
    /// No network share at all (pure GPU/CPU time): contributes only to the
    /// fixed time.
    Fixed,
}

/// The network-relevant shape of one workload phase, as measured by
/// `Report::phase_rows` (or declared a priori for planning).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PhaseShape {
    pub name: &'static str,
    pub kind: PhaseKind,
    /// Synchronous exchanges in the phase (round trips in pipelined mode:
    /// one per flush, not one per deferred call).
    pub calls: u64,
    /// Request bytes summed over the phase.
    pub bytes_sent: u64,
    /// Response bytes summed over the phase.
    pub bytes_received: u64,
}

impl PhaseShape {
    /// A bulk-transfer phase (the paper's regime).
    pub fn bulk(name: &'static str, calls: u64, sent: u64, received: u64) -> Self {
        PhaseShape {
            name,
            kind: PhaseKind::BulkTransfer,
            calls,
            bytes_sent: sent,
            bytes_received: received,
        }
    }

    /// A call-rate-bound phase (many small exchanges).
    pub fn call_rate(name: &'static str, calls: u64, sent: u64, received: u64) -> Self {
        PhaseShape {
            name,
            kind: PhaseKind::CallRate,
            calls,
            bytes_sent: sent,
            bytes_received: received,
        }
    }

    /// A network-free phase.
    pub fn fixed(name: &'static str) -> Self {
        PhaseShape {
            name,
            kind: PhaseKind::Fixed,
            calls: 0,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    /// The phase's network share on `net` under its pricing rule.
    pub fn network_time(&self, net: &dyn NetworkModel) -> SimTime {
        match self.kind {
            PhaseKind::BulkTransfer => {
                net.app_transfer(self.bytes_sent) + net.app_transfer(self.bytes_received)
            }
            PhaseKind::CallRate => {
                if self.calls == 0 {
                    return SimTime::ZERO;
                }
                net.round_trip(
                    self.bytes_sent / self.calls,
                    self.bytes_received / self.calls,
                ) * self.calls
            }
            PhaseKind::Fixed => SimTime::ZERO,
        }
    }
}

/// A workload as a sequence of phases — the unit the extended model
/// re-prices across networks.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadShape {
    pub name: &'static str,
    pub phases: Vec<PhaseShape>,
}

impl WorkloadShape {
    /// Summed network share of every phase on `net`.
    pub fn network_time(&self, net: &dyn NetworkModel) -> SimTime {
        self.phases
            .iter()
            .map(|p| p.network_time(net))
            .fold(SimTime::ZERO, |a, b| a + b)
    }
}

/// Extract the network-independent fixed time from a measurement on `src`:
/// the multi-phase generalization of [`crate::estimate::fixed_time`].
/// Saturates at zero when the model over-accounts the network share.
pub fn fixed_time_workload(
    measured: SimTime,
    shape: &WorkloadShape,
    src: &dyn NetworkModel,
) -> SimTime {
    measured.saturating_sub(shape.network_time(src))
}

/// Re-price a fixed time onto `dst`: the multi-phase generalization of
/// [`crate::estimate::estimate`].
pub fn estimate_workload(fixed: SimTime, shape: &WorkloadShape, dst: &dyn NetworkModel) -> SimTime {
    fixed + shape.network_time(dst)
}

/// Mean extra wait per request in a *closed* loop: `n` always-on clients
/// sharing `c` servers, each request holding a server for `service`.
///
/// With `n ≤ c` nobody waits; beyond that each request queues behind
/// `⌈n/c⌉ − 1` peers on its server in the steady round-robin state, so the
/// wait is `service · (⌈n/c⌉ − 1)` — the deterministic-service analogue of
/// the machine-repairman model, and exact for identical deterministic
/// clients.
pub fn closed_loop_wait(service: SimTime, clients: u64, servers: u64) -> SimTime {
    assert!(servers > 0, "at least one server");
    let depth = clients.div_ceil(servers).saturating_sub(1);
    service * depth
}

/// Mean wait in an *open* M/D/1 loop at utilization `rho = λ·service`:
/// the Pollaczek–Khinchine mean `W = ρ·s / (2(1 − ρ))` for deterministic
/// service. Returns `None` when the queue is unstable (`ρ ≥ 1`).
pub fn open_loop_wait(service: SimTime, rho: f64) -> Option<SimTime> {
    if !(0.0..1.0).contains(&rho) {
        return None;
    }
    Some(SimTime::from_secs_f64(
        rho * service.as_secs_f64() / (2.0 * (1.0 - rho)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{cross_validate, estimate, fixed_time};
    use rcuda_core::CaseStudy;
    use rcuda_netsim::NetworkId;

    fn net(id: NetworkId) -> Box<dyn NetworkModel> {
        id.model()
    }

    #[test]
    fn bulk_phase_prices_on_totals() {
        let g = net(NetworkId::GigaE);
        let p = PhaseShape::bulk("weights", 3, 64 << 20, 24);
        assert_eq!(
            p.network_time(g.as_ref()),
            g.app_transfer(64 << 20) + g.app_transfer(24)
        );
    }

    #[test]
    fn call_rate_phase_charges_the_latency_floor() {
        let g = net(NetworkId::GigaE);
        // 10_000 exchanges of 256 B each way.
        let calls = 10_000;
        let p = PhaseShape::call_rate("smallcalls", calls, calls * 256, calls * 256);
        let per_call = g.round_trip(256, 256);
        assert_eq!(p.network_time(g.as_ref()), per_call * calls);
        // The paper's bulk arithmetic sees only the bytes and misses the
        // per-message latency — the new term must dominate it.
        let bulk = PhaseShape::bulk("same-bytes", calls, calls * 256, calls * 256);
        assert!(
            p.network_time(g.as_ref()) > bulk.network_time(g.as_ref()) * 4,
            "latency floor {:?} should dwarf bulk pricing {:?}",
            p.network_time(g.as_ref()),
            bulk.network_time(g.as_ref())
        );
    }

    #[test]
    fn fixed_phase_is_free_on_every_network() {
        let p = PhaseShape::fixed("gpu-only");
        for id in [NetworkId::GigaE, NetworkId::Ib40G, NetworkId::AsicHt] {
            assert_eq!(p.network_time(net(id).as_ref()), SimTime::ZERO);
        }
        assert_eq!(
            PhaseShape::call_rate("empty", 0, 0, 0).network_time(net(NetworkId::GigaE).as_ref()),
            SimTime::ZERO
        );
    }

    #[test]
    fn estimating_the_source_network_is_the_identity() {
        let g = net(NetworkId::GigaE);
        let shape = WorkloadShape {
            name: "transformer",
            phases: vec![
                PhaseShape::bulk("weights", 2, 32 << 20, 16),
                PhaseShape::call_rate("block", 500, 500 * 96, 500 * 8),
                PhaseShape::fixed("gpu"),
            ],
        };
        let measured = SimTime::from_secs_f64(4.0);
        let fixed = fixed_time_workload(measured, &shape, g.as_ref());
        assert_eq!(estimate_workload(fixed, &shape, g.as_ref()), measured);
    }

    #[test]
    fn faster_network_shrinks_the_estimate() {
        let g = net(NetworkId::GigaE);
        let ib = net(NetworkId::Ib40G);
        let shape = WorkloadShape {
            name: "transformer",
            phases: vec![
                PhaseShape::bulk("weights", 2, 32 << 20, 16),
                PhaseShape::call_rate("block", 500, 500 * 96, 500 * 8),
            ],
        };
        let fixed = SimTime::from_secs_f64(1.0);
        assert!(
            estimate_workload(fixed, &shape, ib.as_ref())
                < estimate_workload(fixed, &shape, g.as_ref())
        );
    }

    #[test]
    fn closed_loop_wait_covers_the_three_regimes() {
        let s = SimTime::from_millis_f64(10.0);
        // Fewer clients than servers: nobody waits.
        assert_eq!(closed_loop_wait(s, 2, 4), SimTime::ZERO);
        assert_eq!(closed_loop_wait(s, 4, 4), SimTime::ZERO);
        // 8 clients on 4 servers: one peer ahead.
        assert_eq!(closed_loop_wait(s, 8, 4), s);
        // 9 clients on 4 servers: ceil(9/4) = 3 deep.
        assert_eq!(closed_loop_wait(s, 9, 4), s * 2);
    }

    #[test]
    fn open_loop_wait_matches_pollaczek_khinchine() {
        let s = SimTime::from_millis_f64(10.0);
        // rho = 0.5 -> W = 0.5 * 10ms / (2 * 0.5) = 5 ms.
        let w = open_loop_wait(s, 0.5).unwrap();
        assert!((w.as_millis_f64() - 5.0).abs() < 1e-9, "{w:?}");
        assert_eq!(open_loop_wait(s, 0.0).unwrap(), SimTime::ZERO);
        assert!(open_loop_wait(s, 1.0).is_none(), "unstable queue");
        assert!(open_loop_wait(s, -0.1).is_none());
    }

    /// Regression pin (satellite S4): the *original* §V estimator's MM and
    /// FFT outputs, nanosecond-exact. The extended model above must never
    /// perturb these — it lives in new functions, and this test proves the
    /// old entry points still compute the paper's Tables IV–VI inputs
    /// bit-for-bit.
    #[test]
    fn paper_estimator_outputs_are_pinned_pre_extension() {
        let mm = CaseStudy::MatMul { dim: 4096 };
        let fft = CaseStudy::Fft { batch: 2048 };

        // MM 4096, Table IV row (GigaE model -> 40GI).
        let row = cross_validate(
            mm,
            NetworkId::GigaE,
            NetworkId::Ib40G,
            SimTime::from_secs_f64(3.64),
            SimTime::from_secs_f64(2.03),
        );
        assert_eq!(row.fixed.as_nanos(), 1_931_814_946);
        assert_eq!(row.estimated_dst.as_nanos(), 2_072_258_221);
        assert!(
            (row.error - 0.020_816_857).abs() < 1e-9,
            "error {}",
            row.error
        );

        // FFT 2048, same direction.
        let row = cross_validate(
            fft,
            NetworkId::GigaE,
            NetworkId::Ib40G,
            SimTime::from_millis_f64(183.0),
            SimTime::from_millis_f64(48.0),
        );
        assert_eq!(row.fixed.as_nanos(), 40_651_246);
        assert_eq!(row.estimated_dst.as_nanos(), 52_354_852);

        // And the raw fixed/estimate pair used by Table VI.
        let fixed = fixed_time(SimTime::from_secs_f64(3.0), mm, NetworkId::TenGigE);
        let est = estimate(fixed, mm, NetworkId::AsicHt);
        assert_eq!(
            (fixed.as_nanos(), est.as_nanos()),
            (2_781_818_181, 2_848_392_384)
        );
    }
}
