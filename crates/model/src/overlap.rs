//! Asynchronous-transfer extension of the estimation model.
//!
//! The paper's model covers synchronous copies only ("Note that only
//! applications making use of synchronous data transfers are covered by the
//! developed estimation model, leaving asynchronous transfers for future
//! work", §II). This module supplies that future work at the same level of
//! abstraction as the rest of the model.
//!
//! ## The overlap model
//!
//! Synchronously, a bulk copy costs `net + pcie` back to back (the PCIe leg
//! is inside the paper's "fixed" time, the network leg is the `k·transfer`
//! term). Streaming the copy in `c` chunks through a double-buffered relay
//! lets the network and PCIe legs overlap, so one direction's cost drops
//! from `net + pcie` to
//!
//! ```text
//! max(net, pcie) + min(net, pcie)/c        (pipeline fill + bottleneck)
//! ```
//!
//! Relative to the synchronous estimate, the *exposed* network time per
//! direction shrinks by `min(net, pcie)·(1 − 1/c)`:
//!
//! ```text
//! estimate_async = estimate_sync − Σ_direction min(net_d, pcie_d)·(1 − 1/c)
//! ```
//!
//! Kernels are not overlapped (MM cannot start before both inputs arrive;
//! this keeps the bound conservative for FFT, where chunk-level kernel
//! overlap would help further).

use rcuda_core::{CaseStudy, SimTime};
use rcuda_netsim::NetworkId;

use crate::estimate::{estimate, transfer_time};

/// Effective host↔device bandwidth of the paper's PCIe 2.0 x16 link, MiB/s.
pub const PCIE_MIB_S: f64 = 5743.0;

/// PCIe time for one direction's payload of a case study.
fn pcie_time_one_copy(case: CaseStudy) -> f64 {
    case.memcpy_bytes().as_mib() / PCIE_MIB_S
}

/// Network time saved by streaming one direction in `chunks` chunks.
fn direction_saving(case: CaseStudy, net: NetworkId, copies: u32, chunks: u32) -> f64 {
    let net_t = transfer_time(case, net).as_secs_f64() * copies as f64;
    let pcie_t = pcie_time_one_copy(case) * copies as f64;
    net_t.min(pcie_t) * (1.0 - 1.0 / chunks.max(1) as f64)
}

/// Asynchronous (chunk-streamed, double-buffered) execution-time estimate.
///
/// `fixed` is the same network-independent time the synchronous model uses;
/// `chunks` is the streaming granularity per copy (1 = no overlap, i.e. the
/// synchronous estimate exactly).
pub fn estimate_async(fixed: SimTime, case: CaseStudy, net: NetworkId, chunks: u32) -> SimTime {
    let sync = estimate(fixed, case, net).as_secs_f64();
    let saving = direction_saving(case, net, case.h2d_count(), chunks)
        + direction_saving(case, net, case.d2h_count(), chunks);
    SimTime::from_secs_f64(sync - saving)
}

/// The fraction of the synchronous remoting penalty (`estimate_sync −
/// fixed`) removed by asynchronous streaming.
pub fn overlap_benefit(fixed: SimTime, case: CaseStudy, net: NetworkId, chunks: u32) -> f64 {
    let sync = estimate(fixed, case, net).as_secs_f64();
    let async_ = estimate_async(fixed, case, net, chunks).as_secs_f64();
    let penalty = sync - fixed.as_secs_f64();
    if penalty <= 0.0 {
        0.0
    } else {
        (sync - async_) / penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Calibration;

    fn fixed(case: CaseStudy) -> SimTime {
        Calibration::paper().fixed_time(case)
    }

    #[test]
    fn one_chunk_is_the_synchronous_estimate() {
        let case = CaseStudy::MatMul { dim: 8192 };
        let f = fixed(case);
        for net in NetworkId::ALL {
            assert_eq!(estimate_async(f, case, net, 1), estimate(f, case, net));
        }
    }

    #[test]
    fn more_chunks_monotonically_help() {
        let case = CaseStudy::Fft { batch: 8192 };
        let f = fixed(case);
        let net = NetworkId::TenGigIb;
        let mut prev = estimate_async(f, case, net, 1);
        for chunks in [2, 4, 8, 32, 256] {
            let t = estimate_async(f, case, net, chunks);
            assert!(t <= prev, "chunks {chunks}");
            prev = t;
        }
    }

    #[test]
    fn overlap_saving_is_bounded_by_the_smaller_leg() {
        // On a network slower than PCIe, at most the PCIe time can hide;
        // the exposed network time cannot go below net − pcie.
        let case = CaseStudy::MatMul { dim: 8192 };
        let f = fixed(case);
        let net = NetworkId::GigaE; // 112 MiB/s ≪ 5743 MiB/s PCIe
        let sync = estimate(f, case, net).as_secs_f64();
        let asyncest = estimate_async(f, case, net, 1_000).as_secs_f64();
        let net_total = transfer_time(case, net).as_secs_f64() * 3.0;
        let pcie_total = 3.0 * case.memcpy_bytes().as_mib() / PCIE_MIB_S;
        assert!(asyncest >= sync - pcie_total - 1e-9);
        assert!(asyncest >= f.as_secs_f64() + net_total - pcie_total - 1e-9);
        // And the saving is small relative to the (huge) GigaE penalty.
        assert!(overlap_benefit(f, case, net, 1_000) < 0.05);
    }

    #[test]
    fn fast_networks_benefit_most() {
        // When net ≈ or < PCIe, nearly the whole smaller leg hides: the
        // overlap benefit fraction grows with network speed.
        let case = CaseStudy::MatMul { dim: 8192 };
        let f = fixed(case);
        let slow = overlap_benefit(f, case, NetworkId::GigaE, 64);
        let mid = overlap_benefit(f, case, NetworkId::TenGigIb, 64);
        let fast = overlap_benefit(f, case, NetworkId::AsicHt, 64);
        assert!(slow < mid && mid < fast, "{slow} {mid} {fast}");
        // A-HT (2884 MiB/s) is within 2× of PCIe: the hideable fraction is
        // pcie/net ≈ 2884/5743 ≈ 0.50 of the penalty.
        assert!(fast > 0.45, "{fast}");
    }

    #[test]
    fn async_never_beats_fixed_time() {
        // Overlap can hide transfers, not computation.
        let case = CaseStudy::Fft { batch: 2048 };
        let f = fixed(case);
        for net in NetworkId::ALL {
            for chunks in [1, 8, 1024] {
                assert!(estimate_async(f, case, net, chunks) >= f);
            }
        }
    }
}
