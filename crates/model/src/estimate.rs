//! The estimation model proper (§V).
//!
//! ```
//! use rcuda_core::CaseStudy;
//! use rcuda_netsim::NetworkId;
//! use rcuda_core::SimTime;
//! use rcuda_model::estimate::{fixed_time, estimate};
//!
//! // Paper Table IV, MM m = 4096: measured 3.64 s on GigaE...
//! let case = CaseStudy::MatMul { dim: 4096 };
//! let measured = SimTime::from_secs_f64(3.64);
//! // ...subtract 3 bulk copies at GigaE bandwidth -> fixed ≈ 1.93 s...
//! let fixed = fixed_time(measured, case, NetworkId::GigaE);
//! assert!((fixed.as_secs_f64() - 1.93).abs() < 0.01);
//! // ...and re-price for 40 Gbps InfiniBand -> ≈ 2.07 s (paper: 2.08).
//! let est = estimate(fixed, case, NetworkId::Ib40G);
//! assert!((est.as_secs_f64() - 2.07).abs() < 0.02);
//! ```

use rcuda_core::{CaseStudy, SimTime};
use rcuda_netsim::{Compressibility, NetworkId};
use serde::Serialize;

/// Per-copy payload transfer time on a network — the paper's Tables III
/// and V arithmetic (`data / effective one-way bandwidth`).
pub fn transfer_time(case: CaseStudy, net: NetworkId) -> SimTime {
    transfer_time_bytes(case.memcpy_bytes().as_bytes(), net)
}

/// The same arithmetic for a raw byte count — the workload-agnostic form
/// used by trace-driven planning (any application's traced bulk payload
/// can be re-priced this way, not just the paper's two case studies).
pub fn transfer_time_bytes(bytes: u64, net: NetworkId) -> SimTime {
    let mib = bytes as f64 / (1u64 << 20) as f64;
    SimTime::from_secs_f64(mib / net.bandwidth_mib_s())
}

/// Workload-agnostic fixed time: `measured − traced_payload / bw(src)`.
pub fn fixed_time_bytes(measured: SimTime, total_payload_bytes: u64, src: NetworkId) -> SimTime {
    measured.saturating_sub(transfer_time_bytes(total_payload_bytes, src))
}

/// Workload-agnostic projection: `fixed + traced_payload / bw(dst)`.
pub fn estimate_bytes(fixed: SimTime, total_payload_bytes: u64, dst: NetworkId) -> SimTime {
    fixed + transfer_time_bytes(total_payload_bytes, dst)
}

/// Total bulk-transfer time of an execution: `k` copies (3 for MM, 2 for
/// FFT) at the per-copy time.
pub fn total_transfer_time(case: CaseStudy, net: NetworkId) -> SimTime {
    transfer_time(case, net) * case.memcpy_count() as u64
}

/// Extract the network-independent fixed time from a measured execution:
/// `fixed = measured − k·transfer(src)`.
///
/// Returns zero (saturating) if the model over-accounts the transfers —
/// which the paper's FFT/GigaE rows nearly do at small sizes; callers see
/// that as the large estimation errors of Table IV.
pub fn fixed_time(measured: SimTime, case: CaseStudy, src: NetworkId) -> SimTime {
    measured.saturating_sub(total_transfer_time(case, src))
}

/// Project a fixed time onto a target network:
/// `estimate = fixed + k·transfer(dst)`.
pub fn estimate(fixed: SimTime, case: CaseStudy, dst: NetworkId) -> SimTime {
    fixed + total_transfer_time(case, dst)
}

/// Per-copy transfer time through the adaptive compression plane
/// (`rcuda-proto::codec`): the cheaper of the raw wire and the
/// compress–ship–decompress pipeline for the given compressibility
/// scenario. For [`Compressibility::DenseRandom`] this reduces exactly to
/// [`transfer_time`] — the codec declines on the paper's random matrices.
pub fn transfer_time_compressed(
    case: CaseStudy,
    net: NetworkId,
    scenario: Compressibility,
) -> SimTime {
    scenario
        .model()
        .adaptive_transfer(net.model().as_ref(), case.memcpy_bytes().as_bytes())
}

/// Total bulk-transfer time through the adaptive plane: `k` copies at the
/// compressed per-copy time.
pub fn total_transfer_time_compressed(
    case: CaseStudy,
    net: NetworkId,
    scenario: Compressibility,
) -> SimTime {
    transfer_time_compressed(case, net, scenario) * case.memcpy_count() as u64
}

/// Project a fixed time onto a target network with the adaptive codec
/// enabled: `estimate = fixed + k·transfer_compressed(dst)`. The fixed time
/// still comes from [`fixed_time`] on raw measurements — control traffic is
/// never compressed, so the codec only re-prices the bulk term.
pub fn estimate_compressed(
    fixed: SimTime,
    case: CaseStudy,
    dst: NetworkId,
    scenario: Compressibility,
) -> SimTime {
    fixed + total_transfer_time_compressed(case, dst, scenario)
}

/// One row of a Table IV-style cross-validation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CrossValidationRow {
    pub case: CaseStudy,
    /// Measured on the source network.
    pub measured_src: SimTime,
    /// Fixed time extracted from the source measurement.
    pub fixed: SimTime,
    /// Estimate for the destination network.
    pub estimated_dst: SimTime,
    /// Measured on the destination network.
    pub measured_dst: SimTime,
    /// Relative error of the estimate: `(est − meas) / meas`.
    pub error: f64,
}

/// Cross-validate the model built from `src` measurements against `dst`
/// measurements (§V / Table IV).
pub fn cross_validate(
    case: CaseStudy,
    src: NetworkId,
    dst: NetworkId,
    measured_src: SimTime,
    measured_dst: SimTime,
) -> CrossValidationRow {
    let fixed = fixed_time(measured_src, case, src);
    let estimated_dst = estimate(fixed, case, dst);
    let error =
        (estimated_dst.as_secs_f64() - measured_dst.as_secs_f64()) / measured_dst.as_secs_f64();
    CrossValidationRow {
        case,
        measured_src,
        fixed,
        estimated_dst,
        measured_dst,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_times_match_table3() {
        // Table III: MM 4096 -> GigaE 569.4 ms, 40GI 46.8 ms;
        //            FFT 2048 -> GigaE 71.2 ms, 40GI 5.9 ms.
        let mm = CaseStudy::MatMul { dim: 4096 };
        assert!((transfer_time(mm, NetworkId::GigaE).as_millis_f64() - 569.4).abs() < 0.1);
        assert!((transfer_time(mm, NetworkId::Ib40G).as_millis_f64() - 46.8).abs() < 0.1);
        let fft = CaseStudy::Fft { batch: 2048 };
        assert!((transfer_time(fft, NetworkId::GigaE).as_millis_f64() - 71.2).abs() < 0.05);
        assert!((transfer_time(fft, NetworkId::Ib40G).as_millis_f64() - 5.9).abs() < 0.06);
    }

    #[test]
    fn transfer_times_match_table5() {
        // Table V: MM 18432 (1296 MB): 1472.7 / 1336.1 / 1728.0 / 898.8 / 449.4 ms.
        let mm = CaseStudy::MatMul { dim: 18432 };
        let expect = [
            (NetworkId::TenGigE, 1472.7),
            (NetworkId::TenGigIb, 1336.1),
            (NetworkId::Myri10G, 1728.0),
            (NetworkId::FpgaHt, 898.8),
            (NetworkId::AsicHt, 449.4),
        ];
        for (net, ms) in expect {
            let t = transfer_time(mm, net).as_millis_f64();
            assert!((t - ms).abs() < 0.5, "{net}: {t} vs {ms}");
        }
    }

    #[test]
    fn total_transfer_multiplies_by_copy_count() {
        let mm = CaseStudy::MatMul { dim: 4096 };
        assert_eq!(
            total_transfer_time(mm, NetworkId::GigaE),
            transfer_time(mm, NetworkId::GigaE) * 3
        );
        let fft = CaseStudy::Fft { batch: 2048 };
        assert_eq!(
            total_transfer_time(fft, NetworkId::Ib40G),
            transfer_time(fft, NetworkId::Ib40G) * 2
        );
    }

    #[test]
    fn estimating_the_source_network_is_the_identity() {
        // fixed + k·transfer(src) must reconstruct the measurement exactly.
        let case = CaseStudy::MatMul { dim: 8192 };
        let measured = SimTime::from_secs_f64(15.60);
        let fixed = fixed_time(measured, case, NetworkId::GigaE);
        let back = estimate(fixed, case, NetworkId::GigaE);
        assert_eq!(back, measured);
    }

    #[test]
    fn paper_table4_row_reproduced_from_paper_inputs() {
        // MM 4096, GigaE model: measured GigaE 3.64 s, measured 40GI 2.03 s
        // -> fixed 1.93 s, estimate 2.07-2.08 s, error ≈ +2.2%.
        let case = CaseStudy::MatMul { dim: 4096 };
        let row = cross_validate(
            case,
            NetworkId::GigaE,
            NetworkId::Ib40G,
            SimTime::from_secs_f64(3.64),
            SimTime::from_secs_f64(2.03),
        );
        assert!((row.fixed.as_secs_f64() - 1.93).abs() < 0.01);
        assert!((row.estimated_dst.as_secs_f64() - 2.08).abs() < 0.02);
        assert!((row.error - 0.022).abs() < 0.01, "error {}", row.error);
    }

    #[test]
    fn dense_random_compressed_transfer_is_the_raw_transfer() {
        // The paper's MM/FFT inputs are dense random floats; the adaptive
        // codec must decline and leave Tables III/V untouched.
        let mm = CaseStudy::MatMul { dim: 4096 };
        for net in NetworkId::ALL {
            assert_eq!(
                transfer_time_compressed(mm, net, Compressibility::DenseRandom),
                transfer_time(mm, net),
                "{net}"
            );
        }
    }

    #[test]
    fn sparse_payloads_cut_gigae_transfer_but_not_asic_ht() {
        let mm = CaseStudy::MatMul { dim: 4096 };
        let raw = transfer_time(mm, NetworkId::GigaE);
        let comp = transfer_time_compressed(mm, NetworkId::GigaE, Compressibility::Sparse);
        assert!(
            comp.as_secs_f64() < 0.5 * raw.as_secs_f64(),
            "sparse GigaE {comp:?} vs raw {raw:?}"
        );
        // A-HT's wire outruns the encoder; the adaptive plane stays raw.
        assert_eq!(
            transfer_time_compressed(mm, NetworkId::AsicHt, Compressibility::Sparse),
            transfer_time(mm, NetworkId::AsicHt)
        );
    }

    #[test]
    fn compressed_estimate_reprices_only_the_bulk_term() {
        let case = CaseStudy::MatMul { dim: 8192 };
        let fixed = SimTime::from_secs_f64(2.0);
        let est = estimate_compressed(fixed, case, NetworkId::GigaE, Compressibility::Sparse);
        assert_eq!(
            est,
            fixed + total_transfer_time_compressed(case, NetworkId::GigaE, Compressibility::Sparse)
        );
        assert!(est < estimate(fixed, case, NetworkId::GigaE));
    }

    #[test]
    fn over_accounted_transfers_saturate_to_zero_fixed() {
        let case = CaseStudy::Fft { batch: 2048 };
        let tiny = SimTime::from_millis_f64(10.0); // less than 2 copies cost
        assert_eq!(fixed_time(tiny, case, NetworkId::GigaE), SimTime::ZERO);
    }
}
