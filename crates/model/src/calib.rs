//! Least-squares calibration of the simulated testbed against the paper.
//!
//! Each component gets a physically motivated basis:
//!
//! * **MM** times (CPU, local GPU, network-independent fixed) are fitted as
//!   `a·m³ + b·m² + c`: the `m³` term is the SGEMM arithmetic, the `m²`
//!   term the memory-bound work (data generation, PCIe and middleware
//!   staging copies), the constant the session overheads.
//! * **FFT** times interpolate the paper's points directly ([`Interp`]):
//!   the FFT measurements are short and noisy enough that low-order
//!   parametric fits miss individual rows by several percent.
//! * The **GigaE TCP-window distortion** is fitted as `p(d) = α/d + β` on
//!   the relative excess of the paper's measured GigaE times over the
//!   bandwidth model (the effect §V blames for the FFT estimation errors:
//!   small copies never open the TCP window fully).
//!
//! The fits run at startup from the embedded [`crate::paperdata`]; nothing
//! downstream hard-codes a fitted coefficient. (The constants compiled into
//! `rcuda-netsim`'s GigaE model are asserted against the live fit by tests
//! here.)

use rcuda_core::{CaseStudy, Family, SimTime};
use rcuda_netsim::regression::{inverse_fit, LinearFit};
use rcuda_netsim::NetworkId;

use crate::paperdata::{FFT_ROWS, MM_ROWS};

/// A fitted linear combination of basis functions of one variable.
#[derive(Debug, Clone)]
pub struct PolyFit {
    /// Coefficients, one per basis function.
    coeffs: Vec<f64>,
    /// Basis functions evaluated on the *scaled* variable.
    basis: Vec<fn(f64) -> f64>,
    /// Input scale (inputs are divided by this before the basis, keeping
    /// the normal equations well conditioned for m up to 18432).
    scale: f64,
}

impl PolyFit {
    /// Least-squares fit of `y ≈ Σ cᵢ·fᵢ(x/scale)`.
    pub fn fit(samples: &[(f64, f64)], basis: Vec<fn(f64) -> f64>) -> PolyFit {
        let k = basis.len();
        assert!(samples.len() >= k, "need at least as many samples as terms");
        let scale = samples
            .iter()
            .map(|s| s.0.abs())
            .fold(0.0f64, f64::max)
            .max(1.0);
        // Normal equations: (AᵀA) c = Aᵀy.
        let mut ata = vec![vec![0.0f64; k]; k];
        let mut aty = vec![0.0f64; k];
        for &(x, y) in samples {
            let row: Vec<f64> = basis.iter().map(|f| f(x / scale)).collect();
            for i in 0..k {
                for j in 0..k {
                    ata[i][j] += row[i] * row[j];
                }
                aty[i] += row[i] * y;
            }
        }
        let coeffs = solve(ata, aty);
        PolyFit {
            coeffs,
            basis,
            scale,
        }
    }

    /// Cubic-quadratic-constant basis (MM components).
    pub fn fit_cubic(samples: &[(f64, f64)]) -> PolyFit {
        PolyFit::fit(samples, vec![|t| t * t * t, |t| t * t, |_| 1.0])
    }

    /// Linear basis (FFT components).
    pub fn fit_linear(samples: &[(f64, f64)]) -> PolyFit {
        PolyFit::fit(samples, vec![|t| t, |_| 1.0])
    }

    /// Quadratic basis. A batch of fixed-size FFTs is nominally linear in
    /// the batch, but the paper's small-batch FFT rows carry visible
    /// measurement variability ("this fixed time across different
    /// interconnects presents larger variability", §V); the mild quadratic
    /// term absorbs that curvature so the calibration passes through the
    /// reported points.
    pub fn fit_quadratic(samples: &[(f64, f64)]) -> PolyFit {
        PolyFit::fit(samples, vec![|t| t * t, |t| t, |_| 1.0])
    }

    /// Evaluate the fitted model.
    pub fn eval(&self, x: f64) -> f64 {
        self.basis
            .iter()
            .zip(&self.coeffs)
            .map(|(f, c)| c * f(x / self.scale))
            .sum()
    }

    /// Maximum relative error of the fit over its own samples.
    pub fn max_rel_error(&self, samples: &[(f64, f64)]) -> f64 {
        samples
            .iter()
            .map(|&(x, y)| ((self.eval(x) - y) / y).abs())
            .fold(0.0, f64::max)
    }
}

/// A monotone-x interpolating curve through measured samples, with linear
/// extrapolation using the end segments' slopes.
///
/// Used for the FFT components: their measurements are short (40–700 ms)
/// and visibly noisy ("this fixed time across different interconnects
/// presents larger variability", §V), so a low-order parametric fit misses
/// individual rows by several percent. Interpolation keeps the testbed
/// calibrated *at* every reported point while still defining times between
/// and beyond them.
#[derive(Debug, Clone)]
pub struct Interp {
    points: Vec<(f64, f64)>,
}

impl Interp {
    pub fn through(samples: &[(f64, f64)]) -> Interp {
        assert!(samples.len() >= 2, "need at least two samples");
        for w in samples.windows(2) {
            assert!(w[0].0 < w[1].0, "x must strictly increase");
        }
        Interp {
            points: samples.to_vec(),
        }
    }

    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        let seg =
            |a: (f64, f64), b: (f64, f64)| -> f64 { a.1 + (b.1 - a.1) * (x - a.0) / (b.0 - a.0) };
        if x <= pts[0].0 {
            return seg(pts[0], pts[1]);
        }
        for w in pts.windows(2) {
            if x <= w[1].0 {
                return seg(w[0], w[1]);
            }
        }
        seg(pts[pts.len() - 2], pts[pts.len() - 1])
    }
}

/// Solve a small dense SPD system by Gaussian elimination with partial
/// pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap();
        a.swap(col, pivot);
        b.swap(col, pivot);
        assert!(a[col][col].abs() > 1e-300, "singular normal equations");
        // Eliminate below.
        let pivot_row = a[col].clone();
        for row in col + 1..n {
            let f = a[row][col] / pivot_row[col];
            for (entry, pivot) in a[row][col..n].iter_mut().zip(&pivot_row[col..n]) {
                *entry -= f * pivot;
            }
            b[row] -= f * b[col];
        }
    }
    // Back-substitute.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    x
}

/// The full calibrated parameter set. All fitted times are in **seconds**.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// MM on the 8-core CPU (MKL), seconds vs dimension.
    pub mm_cpu: PolyFit,
    /// MM on the local GPU (includes CUDA init), seconds vs dimension.
    pub mm_gpu: PolyFit,
    /// MM network-independent fixed time, seconds vs dimension.
    pub mm_fixed: PolyFit,
    /// FFT on the CPU (FFTW), seconds vs batch.
    pub fft_cpu: Interp,
    /// FFT on the local GPU, seconds vs batch.
    pub fft_gpu: Interp,
    /// FFT network-independent fixed time, seconds vs batch.
    pub fft_fixed: Interp,
    /// GigaE TCP distortion `p(d) = α/d + β` (`d` in MiB per copy):
    /// slope = α, intercept = β.
    pub tcp_distortion: LinearFit,
}

impl Calibration {
    /// Fit everything from the embedded paper data.
    ///
    /// The fixed-time fits use the 40GI-derived columns: the paper notes the
    /// GigaE-derived fixed times absorb TCP-window noise ("the differences
    /// in the fixed times for both models are mostly attributed to
    /// unexpected network transfer times related to the TCP window status",
    /// §V), so the InfiniBand side is the cleaner ground truth.
    pub fn paper() -> Calibration {
        let mm = |f: fn(&crate::paperdata::MmRow) -> f64| -> Vec<(f64, f64)> {
            MM_ROWS.iter().map(|r| (r.dim as f64, f(r))).collect()
        };
        let fft = |f: fn(&crate::paperdata::FftRow) -> f64| -> Vec<(f64, f64)> {
            FFT_ROWS
                .iter()
                .map(|r| (r.batch as f64, f(r) / 1e3))
                .collect()
        };

        // GigaE distortion: relative excess of measured over
        // fixed + k·bulk, as a function of per-copy MiB.
        let mut residuals: Vec<(f64, f64)> = Vec::new();
        for r in MM_ROWS {
            let case = CaseStudy::MatMul { dim: r.dim };
            let d = case.memcpy_bytes().as_mib();
            let bulk = 3.0 * d / NetworkId::GigaE.bandwidth_mib_s();
            residuals.push((d, (r.gigae_s - r.fixed_ib40_s) / bulk - 1.0));
        }
        for r in FFT_ROWS {
            let case = CaseStudy::Fft { batch: r.batch };
            let d = case.memcpy_bytes().as_mib();
            let bulk = 2.0 * d / NetworkId::GigaE.bandwidth_mib_s();
            residuals.push((d, ((r.gigae_ms - r.fixed_ib40_ms) / 1e3) / bulk - 1.0));
        }

        Calibration {
            mm_cpu: PolyFit::fit_cubic(&mm(|r| r.cpu_s)),
            mm_gpu: PolyFit::fit_cubic(&mm(|r| r.gpu_s)),
            mm_fixed: PolyFit::fit_cubic(&mm(|r| r.fixed_ib40_s)),
            fft_cpu: Interp::through(&fft(|r| r.cpu_ms)),
            fft_gpu: Interp::through(&fft(|r| r.gpu_ms)),
            fft_fixed: Interp::through(&fft(|r| r.fixed_ib40_ms)),
            tcp_distortion: inverse_fit(&residuals),
        }
    }

    /// Fixed (network-independent) time for a case study.
    pub fn fixed_time(&self, case: CaseStudy) -> SimTime {
        let s = match case {
            CaseStudy::MatMul { dim } => self.mm_fixed.eval(dim as f64),
            CaseStudy::Fft { batch } => self.fft_fixed.eval(batch as f64),
        };
        SimTime::from_secs_f64(s)
    }

    /// Local CPU time (8-core MKL / FFTW).
    pub fn cpu_time(&self, case: CaseStudy) -> SimTime {
        let s = match case {
            CaseStudy::MatMul { dim } => self.mm_cpu.eval(dim as f64),
            CaseStudy::Fft { batch } => self.fft_cpu.eval(batch as f64),
        };
        SimTime::from_secs_f64(s)
    }

    /// Local GPU time (includes the CUDA context initialization the rCUDA
    /// daemon pre-pays).
    pub fn gpu_time(&self, case: CaseStudy) -> SimTime {
        let s = match case {
            CaseStudy::MatMul { dim } => self.mm_gpu.eval(dim as f64),
            CaseStudy::Fft { batch } => self.fft_gpu.eval(batch as f64),
        };
        SimTime::from_secs_f64(s)
    }

    /// GigaE application-transfer distortion factor for a per-copy size of
    /// `d_mib` MiB.
    pub fn gigae_distortion(&self, d_mib: f64) -> f64 {
        self.tcp_distortion.slope / d_mib + self.tcp_distortion.intercept
    }

    /// Implied sustained SGEMM rate of the fitted fixed-time cubic term,
    /// GFLOP/s — a physical sanity check on the calibration.
    pub fn implied_sgemm_gflops(&self) -> f64 {
        // fixed(m) ≈ a·(m/scale)³ + ... ⇒ seconds per m³ is a/scale³;
        // SGEMM does 2·m³ flops.
        let a = self.mm_fixed.coeffs[0];
        let scale = self.mm_fixed.scale;
        2.0 / (a / scale.powi(3)) / 1e9
    }

    /// The standard problem-size grid of the paper's tables.
    pub fn grid(family: Family) -> Vec<CaseStudy> {
        CaseStudy::standard_grid(family)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_netsim::gige::{TCP_DISTORTION_ALPHA, TCP_DISTORTION_BETA};

    #[test]
    fn fits_reproduce_their_own_samples() {
        let c = Calibration::paper();
        let mm_fixed: Vec<(f64, f64)> = MM_ROWS
            .iter()
            .map(|r| (r.dim as f64, r.fixed_ib40_s))
            .collect();
        assert!(
            c.mm_fixed.max_rel_error(&mm_fixed) < 0.02,
            "MM fixed fit error {}",
            c.mm_fixed.max_rel_error(&mm_fixed)
        );
        let mm_cpu: Vec<(f64, f64)> = MM_ROWS.iter().map(|r| (r.dim as f64, r.cpu_s)).collect();
        assert!(c.mm_cpu.max_rel_error(&mm_cpu) < 0.03);
        let mm_gpu: Vec<(f64, f64)> = MM_ROWS.iter().map(|r| (r.dim as f64, r.gpu_s)).collect();
        assert!(c.mm_gpu.max_rel_error(&mm_gpu) < 0.03);
        // The FFT components interpolate, so they are exact at the samples.
        for r in FFT_ROWS {
            assert!(
                (c.fft_cpu.eval(r.batch as f64) - r.cpu_ms / 1e3).abs() < 1e-12,
                "FFT cpu at {}",
                r.batch
            );
            assert!((c.fft_fixed.eval(r.batch as f64) - r.fixed_ib40_ms / 1e3).abs() < 1e-12);
        }
        // ...and sane between them (monotone increasing workload).
        assert!(c.fft_cpu.eval(3000.0) > c.fft_cpu.eval(2048.0));
        assert!(c.fft_cpu.eval(3000.0) < c.fft_cpu.eval(4096.0));
    }

    #[test]
    fn netsim_distortion_constants_match_the_live_fit() {
        // rcuda-netsim compiles in α, β so it has no dependency on this
        // crate; this test keeps them honest.
        let c = Calibration::paper();
        assert!(
            (c.tcp_distortion.slope - TCP_DISTORTION_ALPHA).abs() < 0.15,
            "α drifted: fit {} vs netsim {}",
            c.tcp_distortion.slope,
            TCP_DISTORTION_ALPHA
        );
        assert!(
            (c.tcp_distortion.intercept - TCP_DISTORTION_BETA).abs() < 0.01,
            "β drifted: fit {} vs netsim {}",
            c.tcp_distortion.intercept,
            TCP_DISTORTION_BETA
        );
    }

    #[test]
    fn distortion_decays_with_copy_size() {
        let c = Calibration::paper();
        let small = c.gigae_distortion(8.0);
        let large = c.gigae_distortion(1024.0);
        assert!(small > 0.3, "8 MiB copies suffer ~40% excess: {small}");
        assert!(
            large < 0.05,
            "GiB copies track the bandwidth model: {large}"
        );
        assert!(small > large);
    }

    #[test]
    fn implied_gpu_rate_is_physically_plausible() {
        // Volkov's SGEMM on a C1060 sustains roughly 350-400 GFLOP/s; the
        // fitted cubic term must land in that neighborhood, or the
        // calibration has lost contact with the hardware it models.
        let c = Calibration::paper();
        let gflops = c.implied_sgemm_gflops();
        assert!(
            (250.0..550.0).contains(&gflops),
            "implied SGEMM rate {gflops} GFLOP/s"
        );
    }

    #[test]
    fn cubic_fit_recovers_exact_polynomial() {
        let samples: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let x = (i * 1000) as f64;
                (x, 3e-12 * x.powi(3) + 2e-8 * x * x + 0.5)
            })
            .collect();
        let fit = PolyFit::fit_cubic(&samples);
        for &(x, y) in &samples {
            assert!(((fit.eval(x) - y) / y).abs() < 1e-9);
        }
        // Interpolation between samples is sane too.
        let y = fit.eval(5500.0);
        let expect = 3e-12 * 5500.0f64.powi(3) + 2e-8 * 5500.0f64 * 5500.0 + 0.5;
        assert!(((y - expect) / expect).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let samples: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, 2.5 * i as f64 + 7.0)).collect();
        let fit = PolyFit::fit_linear(&samples);
        assert!((fit.eval(100.0) - 257.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least as many samples")]
    fn underdetermined_fit_panics() {
        PolyFit::fit_cubic(&[(1.0, 1.0), (2.0, 2.0)]);
    }
}
