//! Pipelined-submission accounting: how many round trips batching removes.
//!
//! The paper's FFT-on-GigaE negative result (§IV-B) comes from paying one
//! full network round trip per CUDA call — the per-call fixed costs of
//! Table II dominate when payloads are small. This module prices the same
//! seven-phase call sequence under the client's deferred-completion mode
//! (`rcuda-client`): calls that return no data join an in-flight window and
//! drain as one batched message, so a run of deferred calls plus the
//! result-bearing call that forces the flush costs a *single*
//! [`NetworkModel::round_trip`] instead of one per call.
//!
//! Flush counts are exact — they replay the same window algorithm the
//! client implements — and times follow the paper's Table I/II wire-size
//! conventions, with the batch framing overhead of `rcuda-proto` added per
//! combined message.

use rcuda_core::{CaseStudy, SimTime};
use rcuda_netsim::{NetworkId, NetworkModel};
use rcuda_proto::batch::{BATCH_HEADER_BYTES, BATCH_RESPONSE_HEADER_BYTES};
use serde::Serialize;

/// One remoted CUDA call of the seven-phase execution, in Table I wire
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CallShape {
    /// Operation label (Table I row).
    pub op: &'static str,
    /// Request bytes on the wire.
    pub send_bytes: u64,
    /// Response bytes on the wire.
    pub recv_bytes: u64,
    /// Whether the deferred-completion client can enqueue this call
    /// (it returns no data) instead of blocking on it.
    pub deferrable: bool,
}

/// The exact call sequence the seven-phase executor issues for `case`
/// (initialization through finalization), in submission order.
pub fn call_sequence(case: CaseStudy) -> Vec<CallShape> {
    let payload = case.memcpy_bytes().as_bytes();
    let launch_send = 44 + case.kernel_name().len() as u64;
    let mut calls = vec![CallShape {
        op: "Initialization",
        send_bytes: case.module_bytes().as_bytes() + 4,
        recv_bytes: 12,
        deferrable: false,
    }];
    for _ in 0..case.alloc_count() {
        calls.push(CallShape {
            op: "cudaMalloc",
            send_bytes: 8,
            recv_bytes: 8,
            deferrable: false,
        });
    }
    for _ in 0..case.h2d_count() {
        calls.push(CallShape {
            op: "cudaMemcpy (to device)",
            send_bytes: payload + 20,
            recv_bytes: 4,
            deferrable: true,
        });
    }
    calls.push(CallShape {
        op: "cudaLaunch",
        send_bytes: launch_send,
        recv_bytes: 4,
        deferrable: true,
    });
    calls.push(CallShape {
        op: "cudaThreadSynchronize",
        send_bytes: 4,
        recv_bytes: 4,
        deferrable: true,
    });
    calls.push(CallShape {
        op: "cudaMemcpy (to host)",
        send_bytes: 20,
        recv_bytes: payload + 4,
        deferrable: false,
    });
    for _ in 0..case.alloc_count() {
        calls.push(CallShape {
            op: "cudaFree",
            send_bytes: 8,
            recv_bytes: 4,
            deferrable: true,
        });
    }
    calls.push(CallShape {
        op: "Finalization",
        send_bytes: 4,
        recv_bytes: 4,
        deferrable: false,
    });
    calls
}

/// Per-call vs. pipelined accounting of one case-study execution.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineEstimate {
    pub case: CaseStudy,
    pub net: NetworkId,
    /// Configured in-flight window depth (≥ 1).
    pub depth: usize,
    /// Remoted calls in the run — also the flush count of the synchronous
    /// per-call protocol (one round trip each).
    pub calls: u32,
    /// Network flushes under deferred-completion pipelining.
    pub flushes: u32,
    /// `calls − flushes`: round trips the batching removed.
    pub round_trips_removed: u32,
    /// Total exchange time, per-call mode.
    pub time_per_call: SimTime,
    /// Total exchange time, pipelined mode (batch framing included).
    pub time_pipelined: SimTime,
    /// `time_per_call − time_pipelined`.
    pub saved: SimTime,
}

/// Price `case` on `net` under deferred-completion pipelining with the given
/// window `depth`, replaying the client's window algorithm over the
/// seven-phase call sequence.
pub fn estimate_pipelined(case: CaseStudy, net: NetworkId, depth: usize) -> PipelineEstimate {
    estimate_pipelined_with(case, &*net.model(), depth)
}

/// [`estimate_pipelined`] over an arbitrary network model.
pub fn estimate_pipelined_with(
    case: CaseStudy,
    model: &dyn NetworkModel,
    depth: usize,
) -> PipelineEstimate {
    assert!(depth >= 1, "a pipelined window holds at least one call");
    let calls = call_sequence(case);
    let time_per_call: SimTime = calls
        .iter()
        .map(|c| model.round_trip(c.send_bytes, c.recv_bytes))
        .sum();

    // Replay the client's drain rules: deferrable calls accumulate; the
    // window drains when it reaches `depth`, when a result-bearing call
    // rides as the batch's final element, or at end of session.
    let mut flushes = 0u32;
    let mut time_pipelined = SimTime::ZERO;
    let mut pending: Vec<&CallShape> = Vec::new();
    let flush = |group: &[&CallShape], batched: bool| -> SimTime {
        let sent: u64 = group.iter().map(|c| c.send_bytes).sum();
        let recv: u64 = group.iter().map(|c| c.recv_bytes).sum();
        if batched {
            model.round_trip(
                sent + BATCH_HEADER_BYTES,
                recv + BATCH_RESPONSE_HEADER_BYTES,
            )
        } else {
            model.round_trip(sent, recv)
        }
    };
    for call in &calls {
        if call.deferrable {
            pending.push(call);
            if pending.len() >= depth {
                flushes += 1;
                time_pipelined += flush(&pending, true);
                pending.clear();
            }
        } else if pending.is_empty() {
            flushes += 1;
            time_pipelined += flush(&[call], false);
        } else {
            pending.push(call);
            flushes += 1;
            time_pipelined += flush(&pending, true);
            pending.clear();
        }
    }
    if !pending.is_empty() {
        flushes += 1;
        time_pipelined += flush(&pending, true);
    }

    PipelineEstimate {
        case,
        net: model.id(),
        depth,
        calls: calls.len() as u32,
        flushes,
        round_trips_removed: calls.len() as u32 - flushes,
        time_per_call,
        time_pipelined,
        saved: time_per_call.saturating_sub(time_pipelined),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::Family;

    #[test]
    fn fft_sequence_matches_the_seven_phase_executor() {
        let calls = call_sequence(CaseStudy::Fft { batch: 2048 });
        // init, malloc, h2d, launch, sync, d2h, free, quit.
        assert_eq!(calls.len(), 8);
        assert_eq!(calls.iter().filter(|c| c.deferrable).count(), 4);
    }

    #[test]
    fn fft_pipelined_halves_the_flush_count_at_depth_4() {
        // The acceptance shape of the batching ablation: at depth ≥ 4 the
        // whole deferred run [h2d, launch, sync] rides with the d2h that
        // forces the flush, and the free rides with Finalization — four
        // flushes instead of eight.
        let est = estimate_pipelined(CaseStudy::Fft { batch: 2048 }, NetworkId::GigaE, 4);
        assert_eq!(est.calls, 8);
        assert_eq!(est.flushes, 4);
        assert!(
            est.calls >= 2 * est.flushes,
            "≥2× fewer flushes: {} vs {}",
            est.calls,
            est.flushes
        );
        assert_eq!(est.round_trips_removed, 4);
    }

    #[test]
    fn depth_one_still_flushes_every_deferrable_run_separately() {
        let est = estimate_pipelined(CaseStudy::Fft { batch: 2048 }, NetworkId::GigaE, 1);
        assert_eq!(est.flushes, est.calls, "depth 1 batches nothing");
        assert_eq!(est.round_trips_removed, 0);
    }

    #[test]
    fn pipelining_saves_time_on_every_grid_point() {
        for family in [Family::MatMul, Family::Fft] {
            for case in CaseStudy::standard_grid(family) {
                for net in [NetworkId::GigaE, NetworkId::Ib40G] {
                    let est = estimate_pipelined(case, net, 4);
                    assert!(est.flushes < est.calls, "{case:?} {net}");
                    assert!(
                        est.time_pipelined < est.time_per_call,
                        "{case:?} {net}: {:?} vs {:?}",
                        est.time_pipelined,
                        est.time_per_call
                    );
                }
            }
        }
    }

    #[test]
    fn savings_shrink_with_payload_share() {
        // The removed round trips are fixed-cost; relative savings are
        // largest where the paper's model errs most — small FFT batches on
        // GigaE (§V's TCP-window regime).
        let small = estimate_pipelined(CaseStudy::Fft { batch: 2048 }, NetworkId::GigaE, 4);
        let large = estimate_pipelined(CaseStudy::Fft { batch: 16384 }, NetworkId::GigaE, 4);
        let rel = |e: &PipelineEstimate| e.saved.as_secs_f64() / e.time_per_call.as_secs_f64();
        assert!(rel(&small) > rel(&large));
    }
}
