//! Replay a measured observability trace against the estimation model.
//!
//! [`compare_report`] takes the [`Report`] a `rcuda_obs::Recorder` captured
//! from a live run and re-prices every call's network share with a
//! [`NetworkModel`] — the same `app_transfer` arithmetic `estimate.rs` uses
//! for Tables IV/VI. Grouping follows the paper's phase breakdown (Fig. 5:
//! initialization, allocation, input transfer, kernel, output transfer),
//! and each row reports the estimated-vs-measured network-time error.
//!
//! Because server spans record GPU service time separately, the measured
//! network share is `client span time − server service` per phase — exactly
//! the subtraction §V performs to extract fixed time, but done from the
//! instrumented run instead of end-to-end totals. On a simulated transport
//! the sim charges `app_transfer` per message, so bulk-transfer phases
//! replay with zero error; on a real link the residual *is* the model error
//! the paper tabulates.

use rcuda_core::SimTime;
use rcuda_netsim::NetworkModel;
use rcuda_obs::Report;

/// Map an operation group (see `rcuda_obs::Op::group`) onto the paper's
/// phase vocabulary — the same labels `run_matmul_bytes` times.
pub fn phase_of(group: &str) -> &'static str {
    match group {
        "initialization" => "initialization",
        "cudaMalloc" => "allocation",
        "cudaMemcpyH2D" | "cudaMemcpyAsyncH2D" => "input transfer",
        "cudaLaunch" | "cudaThreadSynchronize" => "kernel",
        "cudaMemcpyD2H" | "cudaMemcpyAsyncD2H" => "output transfer",
        "cudaFree" | "finalization" => "cleanup",
        _ => "other",
    }
}

/// One phase of the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRow {
    pub phase: &'static str,
    /// Client calls folded into this phase.
    pub calls: u64,
    /// Request bytes summed over the phase.
    pub bytes_sent: u64,
    /// Response bytes summed over the phase.
    pub bytes_received: u64,
    /// Summed client-side call time.
    pub measured_total: SimTime,
    /// Summed server dispatch (GPU service) time.
    pub server_service: SimTime,
    /// Measured network share: `measured_total − server_service`.
    pub measured_network: SimTime,
    /// Model-estimated network share:
    /// `Σ app_transfer(sent) + app_transfer(received)` per call.
    pub estimated_network: SimTime,
    /// Relative error `(estimated − measured) / measured`, or `0.0` when
    /// the measured network share is zero.
    pub error: f64,
}

/// A per-phase estimated-vs-measured comparison; see [`compare_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Network the estimate was priced on (paper abbreviation).
    pub network: &'static str,
    /// Phases in first-appearance order (deterministic for a
    /// deterministic run).
    pub rows: Vec<PhaseRow>,
}

/// Price `report`'s traced calls on `net` and compare against what the run
/// measured, phase by phase.
pub fn compare_report(report: &Report, net: &dyn NetworkModel) -> CompareReport {
    let mut rows: Vec<PhaseRow> = Vec::new();
    let index = |phase: &'static str, rows: &mut Vec<PhaseRow>| -> usize {
        match rows.iter().position(|r| r.phase == phase) {
            Some(i) => i,
            None => {
                rows.push(PhaseRow {
                    phase,
                    calls: 0,
                    bytes_sent: 0,
                    bytes_received: 0,
                    measured_total: SimTime::ZERO,
                    server_service: SimTime::ZERO,
                    measured_network: SimTime::ZERO,
                    estimated_network: SimTime::ZERO,
                    error: 0.0,
                });
                rows.len() - 1
            }
        }
    };
    for span in &report.spans {
        let i = index(phase_of(span.op.group()), &mut rows);
        let row = &mut rows[i];
        row.calls += 1;
        row.bytes_sent += span.bytes_sent;
        row.bytes_received += span.bytes_received;
        row.measured_total += span.duration();
        // Priced per call, not on the phase's byte sum: app_transfer is
        // nonlinear (per-message latency, TCP-window distortion).
        row.estimated_network +=
            net.app_transfer(span.bytes_sent) + net.app_transfer(span.bytes_received);
    }
    for span in &report.server_spans {
        let i = index(phase_of(span.op.group()), &mut rows);
        rows[i].server_service += span.service();
    }
    for row in &mut rows {
        row.measured_network = row.measured_total.saturating_sub(row.server_service);
        let meas = row.measured_network.as_secs_f64();
        if meas > 0.0 {
            row.error = (row.estimated_network.as_secs_f64() - meas) / meas;
        }
    }
    CompareReport {
        network: net.name(),
        rows,
    }
}

/// Integer-only `ns → µs` rendering (deterministic: no float formatting).
fn us(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

impl CompareReport {
    /// The phase named `phase`, if the run exercised it.
    pub fn phase(&self, phase: &str) -> Option<&PhaseRow> {
        self.rows.iter().find(|r| r.phase == phase)
    }

    /// Worst absolute per-phase error across the run.
    pub fn max_abs_error(&self) -> f64 {
        self.rows.iter().map(|r| r.error.abs()).fold(0.0, f64::max)
    }

    /// Fixed-width plain-text rendering, suitable for golden-file tests.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "model::compare — network share replayed on {}\n",
            self.network
        ));
        out.push_str(&format!(
            "{:<16} {:>6} {:>12} {:>12} {:>14} {:>14} {:>9}\n",
            "phase", "calls", "sent B", "recv B", "est net us", "meas net us", "error"
        ));
        out.push_str(&format!("{:-<88}\n", ""));
        for r in &self.rows {
            let err = if r.measured_network == SimTime::ZERO {
                "n/a".to_string()
            } else {
                format!("{:+.2}%", r.error * 100.0)
            };
            out.push_str(&format!(
                "{:<16} {:>6} {:>12} {:>12} {:>14} {:>14} {:>9}\n",
                r.phase,
                r.calls,
                r.bytes_sent,
                r.bytes_received,
                us(r.estimated_network),
                us(r.measured_network),
                err
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::time::virtual_clock;
    use rcuda_core::Clock as _;
    use rcuda_netsim::NetworkId;
    use rcuda_obs::{CallSpan, Op, Recorder, ServerSpan};

    fn span(op: &'static str, sent: u64, received: u64, start: u64, end: u64) -> CallSpan {
        CallSpan {
            op: Op::Named(op),
            bytes_sent: sent,
            bytes_received: received,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            retries: 0,
        }
    }

    /// A synthetic trace whose span durations equal exactly the model's
    /// app_transfer charges (plus explicit server service) must replay with
    /// zero error — the situation a sim-transport run produces.
    #[test]
    fn exact_replay_has_zero_error() {
        let net = NetworkId::Ib40G.model();
        let rec = Recorder::new();
        let h = rec.handle();

        let sent = 1 << 20;
        let received = 4u64;
        let wire = (net.app_transfer(sent) + net.app_transfer(received)).as_nanos();
        let service = 5_000u64;
        h.emit_call(&span("cudaMemcpyH2D", sent, received, 0, wire + service));
        h.emit_server(&ServerSpan {
            op: Op::Named("cudaMemcpyH2D"),
            queue_wait: SimTime::ZERO,
            start: SimTime::from_nanos(100),
            end: SimTime::from_nanos(100 + service),
        });

        let report = compare_report(&rec.report(), &*net);
        let row = report.phase("input transfer").unwrap();
        assert_eq!(row.calls, 1);
        assert_eq!(row.measured_network, row.estimated_network);
        assert_eq!(row.error, 0.0);
        assert_eq!(report.max_abs_error(), 0.0);
    }

    #[test]
    fn phases_group_and_order_by_first_appearance() {
        let rec = Recorder::new();
        let h = rec.handle();
        h.emit_call(&span("initialization", 40, 12, 0, 10));
        h.emit_call(&span("cudaMalloc", 8, 8, 10, 20));
        h.emit_call(&span("cudaMemcpyH2D", 1044, 4, 20, 40));
        h.emit_call(&span("cudaLaunch", 52, 4, 40, 50));
        h.emit_call(&span("cudaThreadSynchronize", 4, 4, 50, 60));
        h.emit_call(&span("cudaMemcpyD2H", 20, 1028, 60, 80));
        h.emit_call(&span("cudaFree", 8, 4, 80, 90));
        let report = compare_report(&rec.report(), &*NetworkId::GigaE.model());
        let phases: Vec<&str> = report.rows.iter().map(|r| r.phase).collect();
        assert_eq!(
            phases,
            vec![
                "initialization",
                "allocation",
                "input transfer",
                "kernel",
                "output transfer",
                "cleanup"
            ]
        );
        let kernel = report.phase("kernel").unwrap();
        assert_eq!(kernel.calls, 2, "launch + synchronize fold into kernel");
    }

    #[test]
    fn overestimates_show_positive_error() {
        let rec = Recorder::new();
        let h = rec.handle();
        // 1 MiB moved in 1 ns of measured time: any model overestimates.
        h.emit_call(&span("cudaMemcpyH2D", 1 << 20, 4, 0, 1));
        let report = compare_report(&rec.report(), &*NetworkId::GigaE.model());
        assert!(report.phase("input transfer").unwrap().error > 0.0);
    }

    #[test]
    fn render_is_deterministic_and_labeled() {
        let mk = || {
            let rec = Recorder::new();
            let h = rec.handle();
            h.emit_call(&span("cudaMalloc", 8, 8, 0, 30_000));
            compare_report(&rec.report(), &*NetworkId::Ib40G.model()).render()
        };
        let a = mk();
        assert_eq!(a, mk());
        assert!(a.contains("40GI") || a.contains("Ib40G") || a.contains("40G"));
        assert!(a.contains("allocation"));
    }

    /// The end-to-end shape: a virtual clock advances exactly by the model
    /// charge, giving per-phase zero error for the transfer phase.
    #[test]
    fn virtual_clock_run_replays_exactly() {
        let net = NetworkId::GigaE.model();
        let clock = virtual_clock();
        let rec = Recorder::new();
        let h = rec.handle();

        let sent = 8 << 20;
        let start = clock.now();
        clock.advance(net.app_transfer(sent));
        clock.advance(net.app_transfer(4));
        let end = clock.now();
        h.emit_call(&CallSpan {
            op: Op::Named("cudaMemcpyH2D"),
            bytes_sent: sent,
            bytes_received: 4,
            start,
            end,
            retries: 0,
        });
        let report = compare_report(&rec.report(), &*net);
        assert_eq!(report.phase("input transfer").unwrap().error, 0.0);
    }
}
