//! Series generators for the paper's figures.
//!
//! * Figures 3–4: ping-pong latency curves for GigaE and 40GI (left: small
//!   payloads, averaged; right: large payloads, minima) plus the recovered
//!   linear fits `f` and `g`.
//! * Figures 5–6: the Table VI execution times as plot series, one line per
//!   platform (CPU, local GPU, remote GigaE/40GI, and the five estimated
//!   HPC networks).

use rcuda_core::{Family, SimTime};
use rcuda_netsim::pingpong::{PingPong, SweepPoint, LARGE_REPS, SMALL_REPS};
use rcuda_netsim::regression::LinearFit;
use rcuda_netsim::NetworkId;
use serde::Serialize;

use crate::tables::{table6, Table6Row};
use crate::testbed::SimulatedTestbed;

/// One of Figures 3 or 4.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyFigure {
    pub network: NetworkId,
    /// Left-hand plot: small payloads, average of 250.
    pub small: Vec<SweepPoint>,
    /// Right-hand plot: large payloads, minimum of 100.
    pub large: Vec<SweepPoint>,
    /// Linear fit of the large series (ms vs MiB) — the paper's `f`/`g`.
    pub fit: LinearFit,
}

/// Generate Figure 3 (GigaE) or Figure 4 (40GI).
pub fn latency_figure(network: NetworkId, seed: u64) -> LatencyFigure {
    assert!(
        NetworkId::MEASURED.contains(&network),
        "latency figures exist only for the measured networks"
    );
    let model = network.model();
    let pp = PingPong::new(&*model, seed);
    LatencyFigure {
        network,
        small: pp.small_sweep(&PingPong::default_small_payloads(), SMALL_REPS),
        large: pp.large_sweep(&PingPong::default_large_payloads(), LARGE_REPS),
        fit: pp.fit_large(),
    }
}

/// One plotted series of Figures 5/6: a platform's execution time over the
/// problem-size grid.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    pub label: String,
    /// `(problem size, time)` points.
    pub points: Vec<(u32, SimTime)>,
}

/// One of Figures 5 or 6 (one half: a single case-study family).
#[derive(Debug, Clone, Serialize)]
pub struct ExecutionFigure {
    pub family: Family,
    /// Which measured network's model produced the estimates (GigaE for
    /// Fig. 5, 40GI for Fig. 6).
    pub model_source: NetworkId,
    pub series: Vec<Series>,
}

/// Generate the Figure 5/6 series for one family.
pub fn execution_figure(
    family: Family,
    model_source: NetworkId,
    testbed: &SimulatedTestbed,
) -> ExecutionFigure {
    let rows = table6(family, testbed);
    let size = |r: &Table6Row| r.case.size();

    let mut series = vec![
        Series {
            label: "CPU (local)".to_string(),
            points: rows.iter().map(|r| (size(r), r.cpu)).collect(),
        },
        Series {
            label: "GPU (local)".to_string(),
            points: rows.iter().map(|r| (size(r), r.gpu)).collect(),
        },
        Series {
            label: "GigaE (measured)".to_string(),
            points: rows.iter().map(|r| (size(r), r.gigae)).collect(),
        },
        Series {
            label: "40GI (measured)".to_string(),
            points: rows.iter().map(|r| (size(r), r.ib40)).collect(),
        },
    ];
    for (i, net) in NetworkId::TARGETS.iter().enumerate() {
        let pick = |r: &Table6Row| match model_source {
            NetworkId::GigaE => r.est_gigae_model[i].1,
            _ => r.est_ib40_model[i].1,
        };
        series.push(Series {
            label: format!("{net} (estimated)"),
            points: rows.iter().map(|r| (size(r), pick(r))).collect(),
        });
    }
    ExecutionFigure {
        family,
        model_source,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_recovers_f() {
        let fig = latency_figure(NetworkId::GigaE, 42);
        assert!(
            (fig.fit.slope - 8.9).abs() < 0.05,
            "slope {}",
            fig.fit.slope
        );
        assert!(fig.fit.correlation > 0.999);
        assert!(!fig.small.is_empty() && !fig.large.is_empty());
    }

    #[test]
    fn figure4_recovers_g() {
        let fig = latency_figure(NetworkId::Ib40G, 42);
        assert!(
            (fig.fit.slope - 0.7).abs() < 0.02,
            "slope {}",
            fig.fit.slope
        );
    }

    #[test]
    #[should_panic(expected = "measured networks")]
    fn latency_figures_only_for_measured_networks() {
        latency_figure(NetworkId::Myri10G, 1);
    }

    #[test]
    fn figure5_has_nine_series_over_the_grid() {
        let tb = SimulatedTestbed::new();
        let fig = execution_figure(Family::MatMul, NetworkId::GigaE, &tb);
        assert_eq!(fig.series.len(), 9); // CPU, GPU, 2 measured, 5 estimated
        for s in &fig.series {
            assert_eq!(s.points.len(), 8, "{}", s.label);
        }
        // Crossover shape: on GigaE, remote MM starts slower than CPU but
        // wins at large sizes (paper Fig. 5 left).
        let cpu = &fig.series[0].points;
        let gigae = &fig.series[2].points;
        assert!(gigae[0].1 > cpu[0].1, "small MM: GigaE remote loses to CPU");
        assert!(
            gigae.last().unwrap().1 < cpu.last().unwrap().1,
            "large MM: GigaE remote beats CPU"
        );
    }

    #[test]
    fn figure6_fft_never_beats_cpu() {
        let tb = SimulatedTestbed::new();
        let fig = execution_figure(Family::Fft, NetworkId::Ib40G, &tb);
        let cpu = &fig.series[0].points;
        for s in fig.series.iter().skip(1) {
            for (i, &(_, t)) in s.points.iter().enumerate() {
                assert!(
                    t > cpu[i].1,
                    "FFT: {} must not beat the CPU (paper Fig. 6 right)",
                    s.label
                );
            }
        }
    }
}
