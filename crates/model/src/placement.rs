//! Placement-quality prediction for the broker's scheduling policies.
//!
//! The multi-tenant follow-on work to the paper (vGPU sharing, AaaS
//! clusters) shows that *which daemon a session lands on* dominates tail
//! behavior once several clients share a GPU pool. The broker
//! (`rcuda-broker`) implements three policies; this module predicts the
//! load distribution each produces for a given session mix so a deployment
//! can be sized before it exists — the same spirit as [`crate::capacity`],
//! one level down.
//!
//! ## Model
//!
//! `m` sessions arrive in order; session `i` carries weight `w_i` (its
//! expected concurrent demand — 1.0 for identical tenants, or a mix).
//! Sessions are assigned to `n` daemons by the policy under study:
//!
//! - **LeastLoaded** — greedy: each arrival goes to the daemon with the
//!   lowest accumulated weight (ties to the lowest id). This mirrors the
//!   broker's live-session ordering exactly, which is what the validation
//!   test in this module pins.
//! - **Spread** — round-robin by arrival index, the broker's
//!   placement-count ordering when sessions never finish.
//! - **Random** — uniform choice from a seeded xorshift; the baseline a
//!   broker-less deployment (clients picking daemons themselves) achieves.
//!
//! The forecast reports the maximum per-daemon load and the imbalance
//! ratio `max/mean`. For unit weights, Random's expected maximum follows
//! the classic balls-into-bins bound `m/n + √(2·m·ln n / n)`
//! ([`random_max_load_bound`]), which the simulation tracks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which assignment rule to predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Greedy lowest-accumulated-load (the broker's default).
    LeastLoaded,
    /// Round-robin by arrival order.
    Spread,
    /// Uniform random daemon per arrival (seeded; the no-broker baseline).
    Random {
        /// Seed for the xorshift stream so forecasts are reproducible.
        seed: u64,
    },
}

/// Predicted load distribution for one policy over one session mix.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementForecast {
    /// Accumulated weight per daemon, indexed by daemon id.
    pub loads: Vec<f64>,
    /// The heaviest daemon's load.
    pub max_load: f64,
    /// Mean load (total weight / daemons).
    pub mean_load: f64,
    /// `max_load / mean_load`; 1.0 is perfect balance. Defined as 1.0 for
    /// an empty mix.
    pub imbalance: f64,
}

/// Predict the per-daemon load distribution when `weights` (one entry per
/// session, in arrival order) are placed on `daemons` servers by
/// `strategy`.
///
/// # Panics
/// If `daemons == 0` or any weight is negative.
pub fn predict_placement(
    daemons: usize,
    weights: &[f64],
    strategy: PlacementStrategy,
) -> PlacementForecast {
    assert!(daemons > 0, "a cluster has daemons");
    assert!(
        weights.iter().all(|w| *w >= 0.0),
        "session weights are demands, not credits"
    );
    let mut loads = vec![0.0f64; daemons];
    let mut rng = match strategy {
        PlacementStrategy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };
    for (i, w) in weights.iter().enumerate() {
        let target = match strategy {
            PlacementStrategy::LeastLoaded => loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
                .map(|(idx, _)| idx)
                .expect("daemons > 0"),
            PlacementStrategy::Spread => i % daemons,
            PlacementStrategy::Random { .. } => rng
                .as_mut()
                .expect("rng seeded for Random")
                .gen_range(0..daemons),
        };
        loads[target] += w;
    }
    summarize(loads)
}

fn summarize(loads: Vec<f64>) -> PlacementForecast {
    let total: f64 = loads.iter().sum();
    let mean_load = total / loads.len() as f64;
    let max_load = loads.iter().copied().fold(0.0f64, f64::max);
    let imbalance = if total > 0.0 {
        max_load / mean_load
    } else {
        1.0
    };
    PlacementForecast {
        loads,
        max_load,
        mean_load,
        imbalance,
    }
}

/// The classic balls-into-bins expected-maximum bound for `m` unit
/// sessions on `n` daemons placed uniformly at random:
/// `m/n + √(2·m·ln n / n)` (valid for `m ≫ n·ln n`). Random placement's
/// simulated maximum should sit at or below this; LeastLoaded beats it by
/// construction.
pub fn random_max_load_bound(daemons: usize, sessions: usize) -> f64 {
    assert!(daemons > 0);
    let n = daemons as f64;
    let m = sessions as f64;
    if daemons == 1 {
        return m;
    }
    m / n + (2.0 * m * n.ln() / n).sqrt()
}

/// Side-by-side forecast of all three policies for one mix — the table a
/// deployment decision reads.
pub fn compare_strategies(
    daemons: usize,
    weights: &[f64],
    random_seed: u64,
) -> [(PlacementStrategy, PlacementForecast); 3] {
    [
        PlacementStrategy::LeastLoaded,
        PlacementStrategy::Spread,
        PlacementStrategy::Random { seed: random_seed },
    ]
    .map(|s| (s, predict_placement(daemons, weights, s)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_is_perfectly_balanced_for_unit_weights() {
        let f = predict_placement(4, &[1.0; 16], PlacementStrategy::LeastLoaded);
        assert_eq!(f.loads, vec![4.0; 4]);
        assert!((f.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spread_ignores_weights_least_loaded_does_not() {
        // Alternating heavy/light arrivals: round-robin stacks all the
        // heavy sessions on the same daemons; greedy interleaves them.
        let weights: Vec<f64> = (0..12)
            .map(|i| if i % 2 == 0 { 4.0 } else { 1.0 })
            .collect();
        let spread = predict_placement(2, &weights, PlacementStrategy::Spread);
        let greedy = predict_placement(2, &weights, PlacementStrategy::LeastLoaded);
        assert!(
            spread.imbalance > greedy.imbalance,
            "{spread:?} vs {greedy:?}"
        );
        assert!((greedy.mean_load - spread.mean_load).abs() < 1e-12);
    }

    #[test]
    fn random_is_worse_than_least_loaded_but_within_the_bound() {
        let weights = vec![1.0; 256];
        let greedy = predict_placement(8, &weights, PlacementStrategy::LeastLoaded);
        let random = predict_placement(8, &weights, PlacementStrategy::Random { seed: 7 });
        assert!(random.max_load >= greedy.max_load);
        assert!(
            random.max_load <= random_max_load_bound(8, 256),
            "{} > bound {}",
            random.max_load,
            random_max_load_bound(8, 256)
        );
    }

    #[test]
    fn forecasts_are_deterministic_per_seed() {
        let weights = vec![1.0; 64];
        let a = predict_placement(4, &weights, PlacementStrategy::Random { seed: 42 });
        let b = predict_placement(4, &weights, PlacementStrategy::Random { seed: 42 });
        let c = predict_placement(4, &weights, PlacementStrategy::Random { seed: 43 });
        assert_eq!(a, b);
        assert_ne!(a.loads, c.loads, "different seeds should diverge");
    }

    #[test]
    fn compare_covers_all_three() {
        let table = compare_strategies(3, &[1.0; 9], 1);
        assert_eq!(table.len(), 3);
        for (_, f) in &table {
            assert!((f.mean_load - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "daemons")]
    fn zero_daemons_panics() {
        predict_placement(0, &[1.0], PlacementStrategy::Spread);
    }

    /// Validation against the real scheduler: drive `rcuda-broker`'s
    /// directory with the same arrival sequence the model assumes (unit
    /// sessions that never finish, constant headroom) and require the
    /// broker's per-daemon placement counts to equal the LeastLoaded
    /// forecast exactly — including the lowest-id tie-break.
    #[test]
    fn broker_least_loaded_placement_matches_the_forecast() {
        use rcuda_broker::{Directory, HealthPolicy, PlacementPolicy};
        use rcuda_obs::ObsHandle;
        use rcuda_proto::broker::Heartbeat;
        use std::time::Instant;

        let n = 4usize;
        let m = 13usize;
        let addrs: Vec<String> = (0..n).map(|i| format!("daemon{i}:900{i}")).collect();
        let mut dir = Directory::new(
            PlacementPolicy::LeastLoaded,
            HealthPolicy::default(),
            ObsHandle::none(),
        );
        let t = Instant::now();
        let ids: Vec<u64> = addrs.iter().map(|a| dir.register(a, 1 << 30, t)).collect();

        let mut live = vec![0u32; n];
        let mut broker_loads = vec![0.0f64; n];
        for _ in 0..m {
            let first = dir.place(0).remove(0);
            let idx = addrs.iter().position(|a| *a == first).unwrap();
            live[idx] += 1;
            broker_loads[idx] += 1.0;
            dir.heartbeat(
                ids[idx],
                &Heartbeat {
                    live_sessions: live[idx],
                    parked: 0,
                    free_bytes: 1 << 30,
                    served: u64::from(live[idx]),
                    draining: false,
                    sessions: Vec::new(),
                },
                t,
            );
        }

        let forecast = predict_placement(n, &vec![1.0; m], PlacementStrategy::LeastLoaded);
        assert_eq!(
            broker_loads, forecast.loads,
            "model diverged from the broker"
        );
        assert_eq!(forecast.max_load, 4.0);
    }
}
