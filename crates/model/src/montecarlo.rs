//! Monte-Carlo uncertainty for the estimation model.
//!
//! The paper reports measurement variability (30-run averages, maximum
//! standard deviations of 1.0 s for MM and 14.4 ms for FFT, §V) but
//! propagates only point estimates. This module closes that gap: it re-runs
//! the §V methodology over many noisy realizations of the testbed and
//! reports the distribution of the cross-validation error, so every
//! Table IV cell gets an error bar.

use rcuda_core::{CaseStudy, SimTime};
use rcuda_netsim::NetworkId;

use crate::estimate::cross_validate;
use crate::testbed::SimulatedTestbed;

/// Summary statistics of a sampled quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    pub mean: f64,
    pub stddev: f64,
    pub min: f64,
    pub max: f64,
    pub samples: usize,
}

impl Distribution {
    /// Summarize a non-empty sample.
    pub fn of(samples: &[f64]) -> Distribution {
        assert!(!samples.is_empty(), "need samples");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        Distribution {
            mean,
            stddev: var.sqrt(),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            samples: samples.len(),
        }
    }
}

/// The error distribution of one cross-validation direction for one case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBar {
    pub case: CaseStudy,
    /// Source network of the model (GigaE or 40GI).
    pub src: NetworkId,
    /// Distribution of the relative estimation error across realizations.
    pub error: Distribution,
}

/// Re-run the §V cross-validation over `realizations` noisy testbeds
/// (relative noise `noise_rel`, e.g. 0.01 for 1 %) and summarize the error.
pub fn error_bar(
    case: CaseStudy,
    src: NetworkId,
    dst: NetworkId,
    noise_rel: f64,
    realizations: u64,
) -> ErrorBar {
    assert!(realizations >= 2, "need at least two realizations");
    let errors: Vec<f64> = (0..realizations)
        .map(|seed| {
            let tb = SimulatedTestbed::with_noise(noise_rel, seed);
            let measured_src = tb.measured_remote(case, src);
            let measured_dst = tb.measured_remote(case, dst);
            cross_validate(case, src, dst, measured_src, measured_dst).error
        })
        .collect();
    ErrorBar {
        case,
        src,
        error: Distribution::of(&errors),
    }
}

/// Distribution of a projected execution time on `target`, under noise.
pub fn estimate_distribution(
    case: CaseStudy,
    src: NetworkId,
    target: NetworkId,
    noise_rel: f64,
    realizations: u64,
) -> Distribution {
    let samples: Vec<f64> = (0..realizations)
        .map(|seed| {
            let tb = SimulatedTestbed::with_noise(noise_rel, seed);
            let measured = tb.measured_remote(case, src);
            let fixed = crate::estimate::fixed_time(measured, case, src);
            crate::estimate::estimate(fixed, case, target).as_secs_f64()
        })
        .collect();
    Distribution::of(&samples)
}

/// A convenient default: 1 % relative noise (the paper's reported
/// variability is at the percent level), 100 realizations.
pub fn default_error_bar(case: CaseStudy, src: NetworkId, dst: NetworkId) -> ErrorBar {
    error_bar(case, src, dst, 0.01, 100)
}

/// Format as `mean ± stddev`, in seconds or the given scale.
pub fn format_pm(d: &Distribution, scale: f64, unit: &str) -> String {
    format!("{:.2} ± {:.2} {unit}", d.mean * scale, d.stddev * scale)
}

/// Helper for time distributions.
pub fn time_distribution_secs(samples: &[SimTime]) -> Distribution {
    let vals: Vec<f64> = samples.iter().map(|t| t.as_secs_f64()).collect();
    Distribution::of(&vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_collapses_to_the_point_estimate() {
        let case = CaseStudy::MatMul { dim: 8192 };
        let bar = error_bar(case, NetworkId::GigaE, NetworkId::Ib40G, 0.0, 5);
        assert_eq!(bar.error.stddev, 0.0);
        assert_eq!(bar.error.min, bar.error.max);
        // ...and equals the deterministic cross-validation error.
        let tb = SimulatedTestbed::new();
        let det = cross_validate(
            case,
            NetworkId::GigaE,
            NetworkId::Ib40G,
            tb.measured_remote(case, NetworkId::GigaE),
            tb.measured_remote(case, NetworkId::Ib40G),
        )
        .error;
        assert!((bar.error.mean - det).abs() < 1e-12);
    }

    #[test]
    fn noise_widens_but_does_not_bias_the_mm_errors() {
        let case = CaseStudy::MatMul { dim: 12288 };
        let bar = error_bar(case, NetworkId::Ib40G, NetworkId::GigaE, 0.01, 200);
        // Paper-scale result: MM errors stay small even under 1 % noise.
        assert!(bar.error.mean.abs() < 0.02, "mean {}", bar.error.mean);
        assert!(bar.error.stddev > 0.0);
        assert!(bar.error.stddev < 0.02, "stddev {}", bar.error.stddev);
        assert!(bar.error.max - bar.error.min < 0.1);
    }

    #[test]
    fn fft_bias_survives_noise() {
        // The FFT/GigaE-model error is a *systematic* TCP-window effect,
        // not noise: its sign must survive every realization.
        let case = CaseStudy::Fft { batch: 2048 };
        let bar = error_bar(case, NetworkId::GigaE, NetworkId::Ib40G, 0.01, 100);
        assert!(bar.error.min > 0.2, "min {}", bar.error.min);
        assert!(bar.error.mean > 0.3, "mean {}", bar.error.mean);
    }

    #[test]
    fn estimate_distribution_brackets_the_noiseless_value() {
        let case = CaseStudy::MatMul { dim: 8192 };
        let d = estimate_distribution(case, NetworkId::Ib40G, NetworkId::AsicHt, 0.01, 100);
        let tb = SimulatedTestbed::new();
        let measured = tb.measured_remote(case, NetworkId::Ib40G);
        let fixed = crate::estimate::fixed_time(measured, case, NetworkId::Ib40G);
        let point = crate::estimate::estimate(fixed, case, NetworkId::AsicHt).as_secs_f64();
        assert!(d.min <= point && point <= d.max);
        assert!((d.mean - point).abs() / point < 0.01);
    }

    #[test]
    fn distribution_statistics_are_correct() {
        let d = Distribution::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.mean, 2.5);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 4.0);
        assert!((d.stddev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(d.samples, 4);
        assert_eq!(format_pm(&d, 1.0, "s"), "2.50 ± 1.12 s");
    }

    #[test]
    #[should_panic(expected = "need samples")]
    fn empty_distribution_rejected() {
        Distribution::of(&[]);
    }
}
