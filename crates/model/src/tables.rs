//! Generators for the paper's Tables II–VI.
//!
//! Every generator computes its numbers from the protocol accounting, the
//! network catalog, and the calibrated testbed — never by copying the
//! paper's printed values (those live in [`crate::paperdata`] solely for
//! comparison).

use rcuda_core::{CaseStudy, Family, SimTime};
use rcuda_netsim::{Compressibility, NetworkId};
use serde::Serialize;

use crate::estimate::{
    cross_validate, estimate, estimate_compressed, fixed_time, transfer_time,
    transfer_time_compressed, CrossValidationRow,
};
use crate::paperdata::control;
use crate::testbed::SimulatedTestbed;

// ---------------------------------------------------------------- Table II

/// A symbolic per-call transfer time: `slope_ns · u + intercept_us` µs,
/// where `u` is the case study's size unit (`m²` for MM, `n` for FFT).
///
/// The slope is in **nanoseconds per unit** — the convention behind the
/// paper's `35.6m² + 177.7` entries (4 bytes/element × 8.9 ns/byte on
/// GigaE).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TimeExpr {
    pub slope_ns: f64,
    pub intercept_us: f64,
}

impl TimeExpr {
    pub const fn fixed(us: f64) -> Self {
        TimeExpr {
            slope_ns: 0.0,
            intercept_us: us,
        }
    }

    /// Evaluate at a concrete unit count, in µs.
    pub fn eval_us(&self, units: f64) -> f64 {
        self.slope_ns * units / 1e3 + self.intercept_us
    }

    /// Render like the paper: `36454.4n + 501.6` (slope printed in the
    /// paper's ns-scale convention) or a bare constant.
    pub fn render(&self, unit: &str) -> String {
        if self.slope_ns == 0.0 {
            format!("{:.1}", self.intercept_us)
        } else {
            format!("{:.1}{unit} + {:.1}", self.slope_ns, self.intercept_us)
        }
    }
}

/// A symbolic message size: `per_unit · u + fixed` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ByteExpr {
    pub per_unit: f64,
    pub fixed: f64,
}

impl ByteExpr {
    pub const fn fixed(bytes: f64) -> Self {
        ByteExpr {
            per_unit: 0.0,
            fixed: bytes,
        }
    }

    /// Evaluate at a concrete unit count.
    pub fn eval(&self, units: f64) -> f64 {
        self.per_unit * units + self.fixed
    }

    /// Render like the paper's Data-size column (`4096n + 20`, or `8`).
    pub fn render(&self, unit: &str) -> String {
        if self.per_unit == 0.0 {
            format!("{:.0}", self.fixed)
        } else if self.fixed == 0.0 {
            format!("{:.0}{unit}", self.per_unit)
        } else {
            format!("{:.0}{unit} + {:.0}", self.per_unit, self.fixed)
        }
    }
}

/// One operation row of Table II.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Operation label, e.g. `cudaMemcpy (×2)`.
    pub op: String,
    /// How many times the case study issues it.
    pub multiplicity: u32,
    /// Send size in bytes.
    pub send_bytes: ByteExpr,
    /// Receive size in bytes.
    pub recv_bytes: ByteExpr,
    /// (send, recv) transfer-time expressions on GigaE.
    pub gigae: (TimeExpr, TimeExpr),
    /// (send, recv) transfer-time expressions on 40GI.
    pub ib40: (TimeExpr, TimeExpr),
}

/// Table II for one case study, including the totals row.
#[derive(Debug, Clone, Serialize)]
pub struct Table2 {
    pub family: Family,
    pub rows: Vec<Table2Row>,
    /// Totals with per-op multiplicities applied.
    pub total_gigae: (TimeExpr, TimeExpr),
    pub total_ib40: (TimeExpr, TimeExpr),
}

/// ns per byte on the two measured networks, from the regression slopes
/// `f`/`g` read in the paper's decimal-MB convention (8.9 and 0.7 ns/B).
const GIGAE_NS_PER_BYTE: f64 = 8.9;
const IB40_NS_PER_BYTE: f64 = 0.7;

/// Generate Table II for a case-study family.
pub fn table2(family: Family) -> Table2 {
    let case = CaseStudy::standard_grid(family)[0]; // sizes are symbolic
    let module = case.module_bytes().as_bytes() as f64;
    let elem_bytes = match family {
        Family::MatMul => 4.0, // per m²
        Family::Fft => 4096.0, // per n (8 B × 512 points)
    };
    let (init, launch) = match family {
        Family::MatMul => (control::MM_INIT, control::MM_LAUNCH),
        Family::Fft => (control::FFT_INIT, control::FFT_LAUNCH),
    };
    let launch_send_bytes = 44.0 + case.kernel_name().len() as f64;

    let payload = |ns_per_byte: f64| elem_bytes * ns_per_byte;

    let rows = vec![
        Table2Row {
            op: "Initialization".to_string(),
            multiplicity: 1,
            send_bytes: ByteExpr::fixed(module + 4.0),
            recv_bytes: ByteExpr::fixed(12.0),
            gigae: (TimeExpr::fixed(init.gigae.0), TimeExpr::fixed(init.gigae.1)),
            ib40: (TimeExpr::fixed(init.ib40.0), TimeExpr::fixed(init.ib40.1)),
        },
        Table2Row {
            op: format!("cudaMalloc (×{})", case.alloc_count()),
            multiplicity: case.alloc_count(),
            send_bytes: ByteExpr::fixed(8.0),
            recv_bytes: ByteExpr::fixed(8.0),
            gigae: (
                TimeExpr::fixed(control::MALLOC.gigae.0),
                TimeExpr::fixed(control::MALLOC.gigae.1),
            ),
            ib40: (
                TimeExpr::fixed(control::MALLOC.ib40.0),
                TimeExpr::fixed(control::MALLOC.ib40.1),
            ),
        },
        Table2Row {
            op: format!("cudaMemcpy (×{})", case.h2d_count()),
            multiplicity: case.h2d_count(),
            send_bytes: ByteExpr {
                per_unit: elem_bytes,
                fixed: 20.0,
            },
            recv_bytes: ByteExpr::fixed(4.0),
            gigae: (
                TimeExpr {
                    slope_ns: payload(GIGAE_NS_PER_BYTE),
                    intercept_us: control::MEMCPY_H2D.gigae.0,
                },
                TimeExpr::fixed(control::MEMCPY_H2D.gigae.1),
            ),
            ib40: (
                TimeExpr {
                    slope_ns: payload(IB40_NS_PER_BYTE),
                    intercept_us: control::MEMCPY_H2D.ib40.0,
                },
                TimeExpr::fixed(control::MEMCPY_H2D.ib40.1),
            ),
        },
        Table2Row {
            op: "cudaLaunch".to_string(),
            multiplicity: 1,
            send_bytes: ByteExpr::fixed(launch_send_bytes),
            recv_bytes: ByteExpr::fixed(4.0),
            gigae: (
                TimeExpr::fixed(launch.gigae.0),
                TimeExpr::fixed(launch.gigae.1),
            ),
            ib40: (
                TimeExpr::fixed(launch.ib40.0),
                TimeExpr::fixed(launch.ib40.1),
            ),
        },
        Table2Row {
            op: "cudaMemcpy (to host)".to_string(),
            multiplicity: 1,
            send_bytes: ByteExpr::fixed(20.0),
            recv_bytes: ByteExpr {
                per_unit: elem_bytes,
                fixed: 4.0,
            },
            gigae: (
                TimeExpr::fixed(control::MEMCPY_D2H.gigae.0),
                TimeExpr {
                    slope_ns: payload(GIGAE_NS_PER_BYTE),
                    intercept_us: control::MEMCPY_D2H.gigae.1,
                },
            ),
            ib40: (
                TimeExpr::fixed(control::MEMCPY_D2H.ib40.0),
                TimeExpr {
                    slope_ns: payload(IB40_NS_PER_BYTE),
                    intercept_us: control::MEMCPY_D2H.ib40.1,
                },
            ),
        },
        Table2Row {
            op: format!("cudaFree (×{})", case.alloc_count()),
            multiplicity: case.alloc_count(),
            send_bytes: ByteExpr::fixed(8.0),
            recv_bytes: ByteExpr::fixed(4.0),
            gigae: (
                TimeExpr::fixed(control::FREE.gigae.0),
                TimeExpr::fixed(control::FREE.gigae.1),
            ),
            ib40: (
                TimeExpr::fixed(control::FREE.ib40.0),
                TimeExpr::fixed(control::FREE.ib40.1),
            ),
        },
    ];

    let total = |pick: fn(&Table2Row) -> (TimeExpr, TimeExpr)| {
        let mut send = TimeExpr::fixed(0.0);
        let mut recv = TimeExpr::fixed(0.0);
        for row in &rows {
            let (s, r) = pick(row);
            send.slope_ns += s.slope_ns * row.multiplicity as f64;
            send.intercept_us += s.intercept_us * row.multiplicity as f64;
            recv.slope_ns += r.slope_ns * row.multiplicity as f64;
            recv.intercept_us += r.intercept_us * row.multiplicity as f64;
        }
        (send, recv)
    };

    Table2 {
        family,
        total_gigae: total(|r| r.gigae),
        total_ib40: total(|r| r.ib40),
        rows,
    }
}

// --------------------------------------------------------- Tables III and V

/// One row of a per-copy transfer-time table.
#[derive(Debug, Clone, Serialize)]
pub struct TransferRow {
    pub case: CaseStudy,
    /// Per-copy payload in MiB (the paper's "Data" column).
    pub data_mib: f64,
    /// Per-copy transfer time on each requested network.
    pub times: Vec<(NetworkId, SimTime)>,
}

/// Table III (measured networks) or Table V (target networks), for one
/// family over the standard grid.
pub fn transfer_table(family: Family, nets: &[NetworkId]) -> Vec<TransferRow> {
    CaseStudy::standard_grid(family)
        .into_iter()
        .map(|case| TransferRow {
            case,
            data_mib: case.memcpy_bytes().as_mib(),
            times: nets
                .iter()
                .map(|&net| (net, transfer_time(case, net)))
                .collect(),
        })
        .collect()
}

/// Table III: the two measured networks.
pub fn table3(family: Family) -> Vec<TransferRow> {
    transfer_table(family, &NetworkId::MEASURED)
}

/// Table V: the five target HPC networks.
pub fn table5(family: Family) -> Vec<TransferRow> {
    transfer_table(family, &NetworkId::TARGETS)
}

// ------------------------------------------------ Table V′ (compressed)

/// One row of the compressed-transfer projection: the Table III/V
/// arithmetic re-priced through the adaptive compression plane, one time
/// per (network, compressibility scenario).
#[derive(Debug, Clone, Serialize)]
pub struct CompressedTransferRow {
    pub case: CaseStudy,
    /// Per-copy raw payload in MiB.
    pub data_mib: f64,
    /// `times[i][j]` is network `nets[i]` under `Compressibility::ALL[j]`.
    pub times: Vec<(NetworkId, [SimTime; 3])>,
}

/// Table V′: the Table III/V transfer arithmetic with compressibility as
/// an extra axis, over all seven networks. The dense-random column must
/// reproduce Tables III/V exactly (the adaptive codec declines on
/// incompressible data). With the calibrated LZ4 throughputs the break-even
/// bandwidth for sparse data is ≈470 MiB/s, so only GigaE benefits — the
/// HPC targets all outrun the encoder, which is itself a finding: wire
/// compression is a remedy for commodity links, not fast fabrics.
pub fn table5_compressed(family: Family) -> Vec<CompressedTransferRow> {
    CaseStudy::standard_grid(family)
        .into_iter()
        .map(|case| CompressedTransferRow {
            case,
            data_mib: case.memcpy_bytes().as_mib(),
            times: NetworkId::ALL
                .iter()
                .map(|&net| {
                    let by_scenario =
                        Compressibility::ALL.map(|c| transfer_time_compressed(case, net, c));
                    (net, by_scenario)
                })
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------- Table IV

/// One row of Table IV: both cross-validation directions.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    pub case: CaseStudy,
    /// GigaE-derived model validated against the 40GI measurement.
    pub gigae_model: CrossValidationRow,
    /// 40GI-derived model validated against the GigaE measurement.
    pub ib40_model: CrossValidationRow,
}

/// Regenerate Table IV from the simulated testbed.
pub fn table4(family: Family, testbed: &SimulatedTestbed) -> Vec<Table4Row> {
    CaseStudy::standard_grid(family)
        .into_iter()
        .map(|case| {
            let gigae = testbed.measured_remote(case, NetworkId::GigaE);
            let ib = testbed.measured_remote(case, NetworkId::Ib40G);
            Table4Row {
                case,
                gigae_model: cross_validate(case, NetworkId::GigaE, NetworkId::Ib40G, gigae, ib),
                ib40_model: cross_validate(case, NetworkId::Ib40G, NetworkId::GigaE, ib, gigae),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Table VI

/// One row of Table VI.
#[derive(Debug, Clone, Serialize)]
pub struct Table6Row {
    pub case: CaseStudy,
    /// Measured columns: local CPU, local GPU, remote GigaE, remote 40GI.
    pub cpu: SimTime,
    pub gpu: SimTime,
    pub gigae: SimTime,
    pub ib40: SimTime,
    /// Estimates on the five targets from the GigaE-derived model
    /// (order: [`NetworkId::TARGETS`]).
    pub est_gigae_model: Vec<(NetworkId, SimTime)>,
    /// Estimates from the 40GI-derived model.
    pub est_ib40_model: Vec<(NetworkId, SimTime)>,
}

/// Regenerate Table VI from the simulated testbed.
pub fn table6(family: Family, testbed: &SimulatedTestbed) -> Vec<Table6Row> {
    CaseStudy::standard_grid(family)
        .into_iter()
        .map(|case| {
            let gigae = testbed.measured_remote(case, NetworkId::GigaE);
            let ib = testbed.measured_remote(case, NetworkId::Ib40G);
            let fixed_ge = fixed_time(gigae, case, NetworkId::GigaE);
            let fixed_ib = fixed_time(ib, case, NetworkId::Ib40G);
            let project = |fixed: SimTime| -> Vec<(NetworkId, SimTime)> {
                NetworkId::TARGETS
                    .iter()
                    .map(|&net| (net, estimate(fixed, case, net)))
                    .collect()
            };
            Table6Row {
                case,
                cpu: testbed.measured_cpu(case),
                gpu: testbed.measured_gpu(case),
                gigae,
                ib40: ib,
                est_gigae_model: project(fixed_ge),
                est_ib40_model: project(fixed_ib),
            }
        })
        .collect()
}

// ------------------------------------------------ Table VI′ (compressed)

/// One row of the compressed execution projection: GigaE-derived fixed
/// time plus the compressed bulk term on each target network.
#[derive(Debug, Clone, Serialize)]
pub struct Table6CompressedRow {
    pub case: CaseStudy,
    /// Scenario axis, [`Compressibility::ALL`] order.
    pub scenario: Compressibility,
    /// Estimated total execution time per target network.
    pub est: Vec<(NetworkId, SimTime)>,
}

/// Table VI′: Table VI's GigaE-model projections with the adaptive codec
/// enabled, one block of rows per compressibility scenario, over all seven
/// networks (GigaE itself included — that is where compression pays).
/// Control traffic (the fixed time) is never compressed; only the bulk
/// term moves.
pub fn table6_compressed(family: Family, testbed: &SimulatedTestbed) -> Vec<Table6CompressedRow> {
    let mut rows = Vec::new();
    for case in CaseStudy::standard_grid(family) {
        let measured = testbed.measured_remote(case, NetworkId::GigaE);
        let fixed = fixed_time(measured, case, NetworkId::GigaE);
        for scenario in Compressibility::ALL {
            rows.push(Table6CompressedRow {
                case,
                scenario,
                est: NetworkId::ALL
                    .iter()
                    .map(|&net| (net, estimate_compressed(fixed, case, net, scenario)))
                    .collect(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_match_paper_mm() {
        // Paper: MM GigaE send 71.2m² + 872.8 µs, recv 35.6m² + 279.5 µs;
        //        MM 40GI send 5.6m² + 337.6, recv 2.8m² + 276.7.
        let t = table2(Family::MatMul);
        let (s, r) = t.total_gigae;
        assert!((s.slope_ns - 71.2).abs() < 1e-9, "{}", s.slope_ns);
        assert!((s.intercept_us - 872.8).abs() < 0.05, "{}", s.intercept_us);
        assert!((r.slope_ns - 35.6).abs() < 1e-9);
        assert!((r.intercept_us - 279.5).abs() < 0.05);
        let (s, r) = t.total_ib40;
        assert!((s.slope_ns - 5.6).abs() < 1e-9);
        assert!((s.intercept_us - 337.6).abs() < 0.05);
        assert!((r.slope_ns - 2.8).abs() < 1e-9);
        assert!((r.intercept_us - 276.7).abs() < 0.05);
    }

    #[test]
    fn table2_totals_match_paper_fft() {
        // Paper: FFT GigaE send 36454.4n + 501.6, recv 36454.4n + 168.5;
        //        FFT 40GI send 2867.2n + 167.8, recv 2867.2n + 137.2.
        let t = table2(Family::Fft);
        let (s, r) = t.total_gigae;
        assert!((s.slope_ns - 36_454.4).abs() < 0.05);
        assert!((s.intercept_us - 501.6).abs() < 0.05);
        assert!((r.slope_ns - 36_454.4).abs() < 0.05);
        assert!((r.intercept_us - 168.5).abs() < 0.05);
        let (s, r) = t.total_ib40;
        assert!((s.slope_ns - 2_867.2).abs() < 0.05);
        assert!((s.intercept_us - 167.8).abs() < 0.05);
        assert!((r.slope_ns - 2_867.2).abs() < 0.05);
        assert!((r.intercept_us - 137.2).abs() < 0.05);
    }

    #[test]
    fn table2_message_sizes_match_table1() {
        let t = table2(Family::MatMul);
        assert_eq!(t.rows[0].send_bytes.fixed, 21_490.0); // x + 4
        assert_eq!(t.rows[0].recv_bytes.fixed, 12.0);
        assert_eq!(t.rows[3].send_bytes.fixed, 52.0); // launch
        assert_eq!(t.rows[2].send_bytes.render("m²"), "4m² + 20");
        let t = table2(Family::Fft);
        assert_eq!(t.rows[0].send_bytes.fixed, 7_856.0);
        assert_eq!(t.rows[3].send_bytes.fixed, 58.0);
        assert_eq!(t.rows[2].send_bytes.render("n"), "4096n + 20");
    }

    #[test]
    fn time_expr_eval_and_render() {
        let e = TimeExpr {
            slope_ns: 35.6,
            intercept_us: 177.7,
        };
        // m = 4096: 35.6 ns × 4096² ≈ 597.2 ms + 177.7 µs.
        let us = e.eval_us(4096.0 * 4096.0);
        assert!((us / 1e3 - 597.4).abs() < 0.5, "{us}");
        assert_eq!(e.render("m²"), "35.6m² + 177.7");
        assert_eq!(TimeExpr::fixed(22.2).render("n"), "22.2");
    }

    #[test]
    fn table3_matches_paper_sample_cells() {
        let mm = table3(Family::MatMul);
        // Dim 12288 (576 MB): GigaE 5124.6 ms, 40GI 421.3 ms.
        let row = mm.iter().find(|r| r.case.size() == 12288).unwrap();
        assert!((row.data_mib - 576.0).abs() < 1e-9);
        assert!((row.times[0].1.as_millis_f64() - 5_124.6).abs() < 1.0);
        assert!((row.times[1].1.as_millis_f64() - 421.3).abs() < 0.5);
    }

    #[test]
    fn table5_matches_paper_sample_cells() {
        let fft = table5(Family::Fft);
        // Batch 10240 (40 MB): 45.5 / 41.2 / 53.3 / 27.7 / 13.9 ms.
        let row = fft.iter().find(|r| r.case.size() == 10240).unwrap();
        let expect = [45.5, 41.2, 53.3, 27.7, 13.9];
        for ((_, t), e) in row.times.iter().zip(expect) {
            assert!((t.as_millis_f64() - e).abs() < 0.1, "{t:?} vs {e}");
        }
    }

    #[test]
    fn table5_compressed_dense_column_reproduces_tables3_and_5() {
        use crate::estimate::transfer_time;
        for family in [Family::MatMul, Family::Fft] {
            for row in table5_compressed(family) {
                assert_eq!(row.times.len(), NetworkId::ALL.len());
                for (net, by_scenario) in &row.times {
                    // Compressibility::ALL[0] is DenseRandom.
                    assert_eq!(
                        by_scenario[0],
                        transfer_time(row.case, *net),
                        "{net} {:?}",
                        row.case
                    );
                }
            }
        }
    }

    #[test]
    fn table5_compressed_sparse_wins_only_on_gigae() {
        // Break-even bandwidth for the sparse scenario is ≈470 MiB/s: only
        // GigaE sits below it. The adaptive plane never loses anywhere.
        let rows = table5_compressed(Family::MatMul);
        let row = rows.iter().find(|r| r.case.size() == 12288).unwrap();
        for (net, by_scenario) in &row.times {
            let raw = by_scenario[0];
            let sparse = by_scenario[1];
            if *net == NetworkId::GigaE {
                assert!(
                    sparse.as_secs_f64() < 0.5 * raw.as_secs_f64(),
                    "GigaE sparse {sparse:?} vs raw {raw:?}"
                );
            } else {
                assert_eq!(sparse, raw, "{net} outruns the encoder");
            }
        }
    }

    #[test]
    fn table6_compressed_interleaves_scenarios_and_never_regresses() {
        let tb = SimulatedTestbed::new();
        let raw = table6(Family::MatMul, &tb);
        let comp = table6_compressed(Family::MatMul, &tb);
        assert_eq!(comp.len(), raw.len() * Compressibility::ALL.len());
        for (i, row) in comp.iter().enumerate() {
            assert_eq!(row.scenario, Compressibility::ALL[i % 3]);
            let raw_row = &raw[i / 3];
            assert_eq!(row.case, raw_row.case);
            assert_eq!(row.est.len(), NetworkId::ALL.len());
            // Target-network estimates line up with Table VI's GigaE-model
            // columns; dense-random must match them exactly.
            let targets: Vec<_> = row
                .est
                .iter()
                .filter(|(net, _)| NetworkId::TARGETS.contains(net))
                .collect();
            for ((net, t), (net_raw, t_raw)) in targets.iter().zip(&raw_row.est_gigae_model) {
                assert_eq!(net, net_raw);
                assert!(*t <= *t_raw, "{net} {:?}", row.scenario);
                if row.scenario == Compressibility::DenseRandom {
                    assert_eq!(*t, *t_raw);
                }
            }
            // On GigaE itself, sparse payloads must beat the raw estimate.
            let gigae = row
                .est
                .iter()
                .find(|(n, _)| *n == NetworkId::GigaE)
                .unwrap();
            if row.scenario == Compressibility::Sparse {
                assert!(gigae.1 < raw_row.gigae, "{:?}", row.case);
            }
        }
    }

    #[test]
    fn table4_error_pattern_matches_paper() {
        // MM errors stay small (±3.5%); FFT GigaE-model errors are large and
        // positive at small batches, shrinking with size — the paper's
        // signature TCP-window artifact.
        let tb = SimulatedTestbed::new();
        let mm = table4(Family::MatMul, &tb);
        for row in &mm {
            assert!(
                row.gigae_model.error.abs() < 0.035,
                "MM {} gigae-model error {}",
                row.case.size(),
                row.gigae_model.error
            );
            assert!(row.ib40_model.error.abs() < 0.035);
        }
        let fft = table4(Family::Fft, &tb);
        let first = &fft[0];
        assert!(
            first.gigae_model.error > 0.20,
            "FFT 2048 gigae-model error should exceed 20%: {}",
            first.gigae_model.error
        );
        let last = &fft[fft.len() - 1];
        assert!(
            last.gigae_model.error < first.gigae_model.error,
            "error must shrink with size"
        );
        // 40GI-model errors are negative (underestimate GigaE) and shrink.
        assert!(first.ib40_model.error < -0.08);
        assert!(last.ib40_model.error > first.ib40_model.error);
    }

    #[test]
    fn table6_headline_shape() {
        let tb = SimulatedTestbed::new();
        let mm = table6(Family::MatMul, &tb);
        for row in mm.iter().skip(2) {
            // Large MM: every estimated remote-HPC time beats the CPU...
            for (_, t) in &row.est_gigae_model {
                assert!(*t < row.cpu, "MM {}: remote must beat CPU", row.case.size());
            }
            // ...and sits within 25% of the local GPU.
            for (_, t) in &row.est_gigae_model {
                let ratio = t.as_secs_f64() / row.gpu.as_secs_f64();
                assert!(ratio < 1.25, "MM {}: ratio {ratio}", row.case.size());
            }
        }
        let fft = table6(Family::Fft, &tb);
        for row in &fft {
            // FFT: CPU beats even the local GPU; remoting only adds.
            assert!(row.cpu < row.gpu);
            for (_, t) in &row.est_ib40_model {
                assert!(*t > row.cpu, "FFT {}: CPU must win", row.case.size());
            }
        }
    }

    #[test]
    fn table6_estimates_track_paper_within_tolerance() {
        use crate::paperdata::{TABLE6_FFT_IB40_MODEL, TABLE6_MM_GIGAE_MODEL};
        let tb = SimulatedTestbed::new();
        let mm = table6(Family::MatMul, &tb);
        // Compare against the paper's printed values, un-swapping the
        // 10GE/10GI columns (paper quirk; see paperdata docs): printed
        // column 0 is really 10GI, printed column 1 is really 10GE.
        for (i, row) in mm.iter().enumerate() {
            let printed = TABLE6_MM_GIGAE_MODEL[i];
            let ours_10ge = row.est_gigae_model[0].1.as_secs_f64();
            let ours_10gi = row.est_gigae_model[1].1.as_secs_f64();
            assert!(
                ((ours_10ge - printed[1]) / printed[1]).abs() < 0.03,
                "10GE row {i}"
            );
            assert!(
                ((ours_10gi - printed[0]) / printed[0]).abs() < 0.03,
                "10GI row {i}"
            );
            for (j, col) in [2usize, 3, 4].into_iter().enumerate() {
                let ours = row.est_gigae_model[col].1.as_secs_f64();
                let _ = j;
                assert!(
                    ((ours - printed[col]) / printed[col]).abs() < 0.03,
                    "MM row {i} col {col}: {ours} vs {}",
                    printed[col]
                );
            }
        }
        let fft = table6(Family::Fft, &tb);
        for (i, row) in fft.iter().enumerate() {
            let printed = TABLE6_FFT_IB40_MODEL[i];
            for col in [2usize, 3, 4] {
                let ours = row.est_ib40_model[col].1.as_millis_f64();
                assert!(
                    ((ours - printed[col]) / printed[col]).abs() < 0.06,
                    "FFT row {i} col {col}: {ours} vs {}",
                    printed[col]
                );
            }
        }
    }
}
