//! Plain-text table rendering for the bench harness.

/// A column-aligned text table builder.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Render with right-aligned numeric-looking cells and a header rule.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                if i == 0 {
                    // First column left-aligned (labels).
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with 2 decimals (MM convention).
pub fn secs(t: rcuda_core::SimTime) -> String {
    format!("{:.2}", t.as_secs_f64())
}

/// Format milliseconds with 2 decimals (FFT convention).
pub fn millis(t: rcuda_core::SimTime) -> String {
    format!("{:.2}", t.as_millis_f64())
}

/// Format milliseconds with 1 decimal (Tables III/V convention).
pub fn millis1(t: rcuda_core::SimTime) -> String {
    format!("{:.1}", t.as_millis_f64())
}

/// Format a relative error as a signed percentage (Table IV convention).
pub fn percent(e: f64) -> String {
    format!("{:+.2}%", e * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::SimTime;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Size", "GigaE", "40GI"]);
        t.row(vec!["4096", "569.4", "46.8"]);
        t.row(vec!["18432", "11530.2", "948.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Size"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric columns line up on their last character.
        assert!(lines[2].ends_with("46.8"));
        assert!(lines[3].ends_with("948.0"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(SimTime::from_secs_f64(3.637)), "3.64");
        assert_eq!(millis(SimTime::from_millis_f64(354.333)), "354.33");
        assert_eq!(millis1(SimTime::from_millis_f64(569.44)), "569.4");
        assert_eq!(percent(0.0216), "+2.16%");
        assert_eq!(percent(-0.16), "-16.00%");
    }
}
