//! The simulated two-node testbed: the source of "measured" values.
//!
//! Plays the role of the paper's pair of Xeon E5520 nodes (one with the
//! Tesla C1060) joined by GigaE and 40GI. Every number it produces is
//! generated from the calibrated component models — fixed time + k
//! bulk transfers on the selected network — optionally with measurement
//! noise, then reduced over repetitions exactly as the paper reduces its 30
//! executions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcuda_core::{CaseStudy, SimTime};
use rcuda_netsim::NetworkId;

use crate::calib::Calibration;

/// The simulated experimental platform.
pub struct SimulatedTestbed {
    calib: Calibration,
    /// Relative measurement noise (standard deviation). The paper reports a
    /// maximum stddev of 1.0 s on ~100 s MM runs and 14.4 ms on ~1 s FFT
    /// runs, i.e. around the percent level.
    noise_rel: f64,
    seed: u64,
}

impl SimulatedTestbed {
    /// Noiseless testbed (deterministic tables).
    pub fn new() -> Self {
        SimulatedTestbed {
            calib: Calibration::paper(),
            noise_rel: 0.0,
            seed: 0,
        }
    }

    /// Testbed with relative measurement noise (e.g. `0.005` for 0.5%).
    pub fn with_noise(noise_rel: f64, seed: u64) -> Self {
        SimulatedTestbed {
            calib: Calibration::paper(),
            noise_rel,
            seed,
        }
    }

    /// The calibration in use.
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// Local CPU execution (8-core MKL / FFTW).
    pub fn measured_cpu(&self, case: CaseStudy) -> SimTime {
        self.reduce(case, NetworkId::GigaE, Component::Cpu)
    }

    /// Local GPU execution (includes CUDA context initialization).
    pub fn measured_gpu(&self, case: CaseStudy) -> SimTime {
        self.reduce(case, NetworkId::GigaE, Component::Gpu)
    }

    /// Remote GPU execution over a network.
    pub fn measured_remote(&self, case: CaseStudy, net: NetworkId) -> SimTime {
        self.reduce(case, net, Component::Remote)
    }

    /// The noiseless model value for a remote run (used by tests).
    pub fn remote_model(&self, case: CaseStudy, net: NetworkId) -> SimTime {
        self.one_remote(case, net)
    }

    fn one_remote(&self, case: CaseStudy, net: NetworkId) -> SimTime {
        let fixed = self.calib.fixed_time(case).as_secs_f64();
        let bytes = case.memcpy_bytes();
        let k = case.memcpy_count() as f64;
        let per_copy = match net {
            NetworkId::GigaE => {
                // Application transfers on GigaE include the TCP-window
                // distortion — this is what makes the simulated "measured"
                // GigaE times deviate from the bandwidth model the same way
                // the paper's real measurements do.
                let base = bytes.as_mib() / net.bandwidth_mib_s();
                base * (1.0 + self.calib.gigae_distortion(bytes.as_mib()))
            }
            _ => net.model().app_transfer(bytes.as_bytes()).as_secs_f64(),
        };
        SimTime::from_secs_f64(fixed + k * per_copy)
    }

    /// Reduce `reps` noisy executions by their mean — "the empirically
    /// measured times are averaged from 30 executions" (§V).
    fn reduce(&self, case: CaseStudy, net: NetworkId, what: Component) -> SimTime {
        let base = match what {
            Component::Cpu => self.calib.cpu_time(case),
            Component::Gpu => self.calib.gpu_time(case),
            Component::Remote => self.one_remote(case, net),
        };
        if self.noise_rel == 0.0 {
            return base;
        }
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (case.size() as u64) ^ ((what as u64) << 32));
        let reps = 30;
        let mean: f64 = (0..reps)
            .map(|_| {
                let noise: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
                base.as_secs_f64() * (1.0 + noise * self.noise_rel)
            })
            .sum::<f64>()
            / reps as f64;
        SimTime::from_secs_f64(mean.max(0.0))
    }
}

impl Default for SimulatedTestbed {
    fn default() -> Self {
        SimulatedTestbed::new()
    }
}

#[derive(Clone, Copy)]
enum Component {
    Cpu = 1,
    Gpu = 2,
    Remote = 3,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paperdata::{FFT_ROWS, MM_ROWS};

    /// The headline golden test: the simulated testbed reproduces every
    /// measured column of the paper within a few percent.
    #[test]
    fn testbed_reproduces_paper_measured_columns() {
        let tb = SimulatedTestbed::new();
        for r in MM_ROWS {
            let case = CaseStudy::MatMul { dim: r.dim };
            check(
                "MM cpu",
                r.dim,
                tb.measured_cpu(case).as_secs_f64(),
                r.cpu_s,
                0.03,
            );
            check(
                "MM gpu",
                r.dim,
                tb.measured_gpu(case).as_secs_f64(),
                r.gpu_s,
                0.03,
            );
            check(
                "MM gigae",
                r.dim,
                tb.measured_remote(case, NetworkId::GigaE).as_secs_f64(),
                r.gigae_s,
                0.03,
            );
            check(
                "MM 40gi",
                r.dim,
                tb.measured_remote(case, NetworkId::Ib40G).as_secs_f64(),
                r.ib40_s,
                0.02,
            );
        }
        for r in FFT_ROWS {
            let case = CaseStudy::Fft { batch: r.batch };
            check(
                "FFT cpu",
                r.batch,
                tb.measured_cpu(case).as_millis_f64(),
                r.cpu_ms,
                0.03,
            );
            check(
                "FFT gpu",
                r.batch,
                tb.measured_gpu(case).as_millis_f64(),
                r.gpu_ms,
                0.04,
            );
            check(
                "FFT gigae",
                r.batch,
                tb.measured_remote(case, NetworkId::GigaE).as_millis_f64(),
                r.gigae_ms,
                0.04,
            );
            check(
                "FFT 40gi",
                r.batch,
                tb.measured_remote(case, NetworkId::Ib40G).as_millis_f64(),
                r.ib40_ms,
                0.05,
            );
        }
    }

    fn check(label: &str, size: u32, got: f64, want: f64, tol: f64) {
        let rel = ((got - want) / want).abs();
        assert!(
            rel < tol,
            "{label} @ {size}: simulated {got:.3} vs paper {want:.3} ({:.1}% off)",
            rel * 100.0
        );
    }

    #[test]
    fn noise_perturbs_but_averaging_stays_close() {
        let clean = SimulatedTestbed::new();
        let noisy = SimulatedTestbed::with_noise(0.01, 42);
        let case = CaseStudy::MatMul { dim: 8192 };
        let a = clean.measured_remote(case, NetworkId::Ib40G).as_secs_f64();
        let b = noisy.measured_remote(case, NetworkId::Ib40G).as_secs_f64();
        assert_ne!(a, b, "noise must do something");
        assert!(((a - b) / a).abs() < 0.01, "mean of 30 stays within 1%");
    }

    #[test]
    fn noisy_measurements_are_seed_deterministic() {
        let case = CaseStudy::Fft { batch: 4096 };
        let a = SimulatedTestbed::with_noise(0.01, 7).measured_cpu(case);
        let b = SimulatedTestbed::with_noise(0.01, 7).measured_cpu(case);
        assert_eq!(a, b);
        let c = SimulatedTestbed::with_noise(0.01, 8).measured_cpu(case);
        assert_ne!(a, c);
    }

    #[test]
    fn remote_dominates_fixed_plus_transfers() {
        // Faster networks strictly dominate on the same problem.
        let tb = SimulatedTestbed::new();
        let case = CaseStudy::MatMul { dim: 8192 };
        let gigae = tb.measured_remote(case, NetworkId::GigaE);
        let tengige = tb.measured_remote(case, NetworkId::TenGigE);
        let aht = tb.measured_remote(case, NetworkId::AsicHt);
        assert!(gigae > tengige);
        assert!(tengige > aht);
        assert!(aht > tb.calibration().fixed_time(case));
    }
}
