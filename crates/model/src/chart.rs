//! Minimal ASCII chart rendering for the figure artifacts.
//!
//! The paper's Figures 3–6 are line plots; the `tables` harness renders
//! their series as text grids so the *shape* (orderings, crossovers) is
//! visible straight from the terminal, no plotting stack required.

/// One plotted series: a label and `(x, y)` points.
pub type ChartSeries = (String, Vec<(f64, f64)>);

/// Symbols assigned to series, in order.
const SYMBOLS: &[char] = &['o', '+', 'x', '*', '#', '@', '%', '&', '$', '~'];

/// Render series into a `width × height` character grid with a legend.
///
/// Both axes are linear; `log_y` switches the y axis to log10 (useful when
/// series span orders of magnitude, like the FFT GigaE vs A-HT times).
pub fn ascii_chart(series: &[ChartSeries], width: usize, height: usize, log_y: bool) -> String {
    assert!(width >= 16 && height >= 4, "chart too small to read");
    assert!(!series.is_empty(), "nothing to plot");
    let points: Vec<(f64, f64)> = series.iter().flat_map(|(_, p)| p.iter().copied()).collect();
    assert!(!points.is_empty(), "series have no points");

    let ty = |y: f64| if log_y { y.max(1e-300).log10() } else { y };
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(ty(y));
        y_max = y_max.max(ty(y));
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max == y_min {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let sym = SYMBOLS[si % SYMBOLS.len()];
        for &(x, y) in pts {
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((ty(y) - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            // Later series overwrite earlier ones at collisions; the legend
            // disambiguates and the orderings still read correctly.
            grid[row][cx] = sym;
        }
    }

    let y_label = |v: f64| -> String {
        let v = if log_y { 10f64.powf(v) } else { v };
        if v.abs() >= 1000.0 {
            format!("{v:.0}")
        } else {
            format!("{v:.2}")
        }
    };
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{:>9} |", y_label(y_max))
        } else if i == height - 1 {
            format!("{:>9} |", y_label(y_min))
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>9}  {:<.0}{:>pad$.0}\n",
        "",
        x_min,
        x_max,
        pad = width.saturating_sub(format!("{x_min:.0}").len())
    ));
    // Legend.
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", SYMBOLS[si % SYMBOLS.len()], label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(chart: &str) -> Vec<&str> {
        chart.lines().collect()
    }

    #[test]
    fn grid_dimensions_and_legend() {
        let series = vec![
            ("up".to_string(), vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]),
            ("down".to_string(), vec![(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)]),
        ];
        let chart = ascii_chart(&series, 20, 6, false);
        let lines = lines_of(&chart);
        // 6 grid rows + axis + x labels + 2 legend entries.
        assert_eq!(lines.len(), 6 + 2 + 2);
        assert!(chart.contains("o up"));
        assert!(chart.contains("+ down"));
    }

    #[test]
    fn increasing_series_slopes_up() {
        let series = vec![(
            "lin".to_string(),
            (0..=10).map(|i| (i as f64, i as f64)).collect::<Vec<_>>(),
        )];
        let chart = ascii_chart(&series, 22, 11, false);
        let lines = lines_of(&chart);
        // Max y (top row) should hold the last point, min y (bottom grid
        // row) the first.
        let top = lines[0];
        let bottom = lines[10];
        assert!(top.trim_end().ends_with('o'), "top: {top:?}");
        assert_eq!(bottom.chars().filter(|&c| c == 'o').count(), 1);
        assert!(bottom.find('o').unwrap() < top.rfind('o').unwrap());
    }

    #[test]
    fn log_scale_compresses_magnitudes() {
        let series = vec![(
            "exp".to_string(),
            vec![(0.0, 1.0), (1.0, 10.0), (2.0, 100.0), (3.0, 1000.0)],
        )];
        let chart = ascii_chart(&series, 30, 7, true);
        // On a log axis an exponential is a straight line: each of the four
        // points lands on a distinct row.
        let rows_with_points = lines_of(&chart)
            .iter()
            .take(7)
            .filter(|l| l.contains('o'))
            .count();
        assert_eq!(rows_with_points, 4);
        assert!(chart.contains("1000"), "max label");
    }

    #[test]
    fn flat_series_renders_without_division_by_zero() {
        let series = vec![("flat".to_string(), vec![(0.0, 5.0), (1.0, 5.0)])];
        let chart = ascii_chart(&series, 16, 4, false);
        assert!(chart.contains('o'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_charts_rejected() {
        ascii_chart(&[("x".to_string(), vec![(0.0, 0.0)])], 4, 2, false);
    }
}
