//! The paper's reported measurements, embedded as calibration ground truth.
//!
//! Sources: Table IV (measured GigaE/40GI times and per-model fixed times)
//! and Table VI (measured local CPU and local GPU times). These numbers are
//! used for two purposes only:
//!
//! 1. **calibration** — least-squares fits of the simulated testbed's
//!    component models (`rcuda-model::calib`);
//! 2. **golden tests / EXPERIMENTS.md** — checking that our regenerated
//!    tables agree with the paper's printed ones.
//!
//! Known printing quirks in the paper, handled downstream:
//!
//! * Table VI's MM "Measured 40GI" column repeats Table IV's GigaE-model
//!   *fixed* column; Table IV's 40GI measured column (2.03 … 67.05 s) is the
//!   real measurement and is what we embed.
//! * Table VI's 10GE and 10GI estimate columns are swapped relative to
//!   Table V's bandwidths (10GI is the faster network, yet the printed 10GI
//!   column is the slower one; recomputing from the paper's own fixed times
//!   proves the swap). Our generator emits them unswapped.

/// One MM row of paper measurements. Times in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmRow {
    /// Matrix dimension `m`.
    pub dim: u32,
    /// Local CPU (MKL, 8 cores), Table VI.
    pub cpu_s: f64,
    /// Local GPU (CUDA, includes context init), Table VI.
    pub gpu_s: f64,
    /// Remote GPU over 1 Gbps Ethernet, Table IV.
    pub gigae_s: f64,
    /// Remote GPU over 40 Gbps InfiniBand, Table IV.
    pub ib40_s: f64,
    /// Fixed time derived by the paper from the GigaE run, Table IV.
    pub fixed_gigae_s: f64,
    /// Fixed time derived by the paper from the 40GI run, Table IV.
    pub fixed_ib40_s: f64,
}

/// Table IV + Table VI, MM case study.
pub const MM_ROWS: [MmRow; 8] = [
    MmRow {
        dim: 4096,
        cpu_s: 2.08,
        gpu_s: 2.40,
        gigae_s: 3.64,
        ib40_s: 2.03,
        fixed_gigae_s: 1.93,
        fixed_ib40_s: 1.89,
    },
    MmRow {
        dim: 6144,
        cpu_s: 5.66,
        gpu_s: 4.58,
        gigae_s: 8.47,
        ib40_s: 4.85,
        fixed_gigae_s: 4.62,
        fixed_ib40_s: 4.54,
    },
    MmRow {
        dim: 8192,
        cpu_s: 11.99,
        gpu_s: 8.12,
        gigae_s: 15.60,
        ib40_s: 9.34,
        fixed_gigae_s: 8.77,
        fixed_ib40_s: 8.78,
    },
    MmRow {
        dim: 10240,
        cpu_s: 21.52,
        gpu_s: 13.30,
        gigae_s: 25.47,
        ib40_s: 15.74,
        fixed_gigae_s: 14.79,
        fixed_ib40_s: 14.86,
    },
    MmRow {
        dim: 12288,
        cpu_s: 35.45,
        gpu_s: 20.37,
        gigae_s: 38.39,
        ib40_s: 24.42,
        fixed_gigae_s: 23.02,
        fixed_ib40_s: 23.15,
    },
    MmRow {
        dim: 14336,
        cpu_s: 54.00,
        gpu_s: 29.64,
        gigae_s: 54.96,
        ib40_s: 35.49,
        fixed_gigae_s: 34.03,
        fixed_ib40_s: 33.77,
    },
    MmRow {
        dim: 16384,
        cpu_s: 78.87,
        gpu_s: 41.43,
        gigae_s: 74.13,
        ib40_s: 49.93,
        fixed_gigae_s: 46.80,
        fixed_ib40_s: 47.68,
    },
    MmRow {
        dim: 18432,
        cpu_s: 109.12,
        gpu_s: 55.86,
        gigae_s: 97.65,
        ib40_s: 67.05,
        fixed_gigae_s: 63.06,
        fixed_ib40_s: 64.21,
    },
];

/// One FFT row of paper measurements. Times in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FftRow {
    /// Batch size `n`.
    pub batch: u32,
    /// Local CPU (FFTW, 8 cores), Table VI.
    pub cpu_ms: f64,
    /// Local GPU, Table VI.
    pub gpu_ms: f64,
    /// Remote GPU over GigaE, Table IV.
    pub gigae_ms: f64,
    /// Remote GPU over 40GI, Table IV.
    pub ib40_ms: f64,
    /// Fixed time from the GigaE run, Table IV.
    pub fixed_gigae_ms: f64,
    /// Fixed time from the 40GI run, Table IV.
    pub fixed_ib40_ms: f64,
}

/// Table IV + Table VI, FFT case study.
pub const FFT_ROWS: [FftRow; 7] = [
    FftRow {
        batch: 2048,
        cpu_ms: 41.67,
        gpu_ms: 51.00,
        gigae_ms: 354.33,
        ib40_ms: 167.00,
        fixed_gigae_ms: 211.98,
        fixed_ib40_ms: 155.30,
    },
    FftRow {
        batch: 4096,
        cpu_ms: 74.67,
        gpu_ms: 102.33,
        gigae_ms: 555.67,
        ib40_ms: 226.00,
        fixed_gigae_ms: 270.97,
        fixed_ib40_ms: 202.59,
    },
    FftRow {
        batch: 6144,
        cpu_ms: 115.67,
        gpu_ms: 153.33,
        gigae_ms: 761.00,
        ib40_ms: 306.33,
        fixed_gigae_ms: 333.95,
        fixed_ib40_ms: 271.22,
    },
    FftRow {
        batch: 8192,
        cpu_ms: 150.33,
        gpu_ms: 201.67,
        gigae_ms: 964.33,
        ib40_ms: 379.67,
        fixed_gigae_ms: 394.94,
        fixed_ib40_ms: 332.85,
    },
    FftRow {
        batch: 10240,
        cpu_ms: 187.33,
        gpu_ms: 253.33,
        gigae_ms: 1167.67,
        ib40_ms: 458.00,
        fixed_gigae_ms: 455.92,
        fixed_ib40_ms: 399.48,
    },
    FftRow {
        batch: 12288,
        cpu_ms: 224.67,
        gpu_ms: 304.67,
        gigae_ms: 1371.33,
        ib40_ms: 537.67,
        fixed_gigae_ms: 517.24,
        fixed_ib40_ms: 467.45,
    },
    FftRow {
        batch: 16384,
        cpu_ms: 299.00,
        gpu_ms: 403.00,
        gigae_ms: 1782.00,
        ib40_ms: 696.67,
        fixed_gigae_ms: 643.21,
        fixed_ib40_ms: 603.04,
    },
];

/// Paper Table II control-message transfer times (µs), per operation and
/// direction — "directly extracted from the real measured times ...
/// interpolated if the exact value was not available". These are the
/// constants the Table II generator uses for the non-payload terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlTimes {
    /// (send µs, receive µs) on GigaE.
    pub gigae: (f64, f64),
    /// (send µs, receive µs) on 40GI.
    pub ib40: (f64, f64),
}

/// Table II, MM rows: Initialization, cudaMalloc, cudaLaunch, cudaFree, and
/// the fixed (non-payload) parts of the two memcpy directions.
pub mod control {
    use super::ControlTimes;

    pub const MM_INIT: ControlTimes = ControlTimes {
        gigae: (338.7, 44.4),
        ib40: (80.9, 20.0),
    };
    pub const FFT_INIT: ControlTimes = ControlTimes {
        gigae: (233.9, 44.4),
        ib40: (39.5, 20.0),
    };
    pub const MALLOC: ControlTimes = ControlTimes {
        gigae: (22.2, 22.2),
        ib40: (27.9, 27.9),
    };
    pub const MM_LAUNCH: ControlTimes = ControlTimes {
        gigae: (23.1, 22.2),
        ib40: (27.9, 27.9),
    };
    pub const FFT_LAUNCH: ControlTimes = ControlTimes {
        gigae: (23.2, 22.2),
        ib40: (27.9, 27.9),
    };
    pub const FREE: ControlTimes = ControlTimes {
        gigae: (22.2, 22.2),
        ib40: (27.9, 27.9),
    };
    /// Memcpy header overheads: Table II's intercepts — to-device send
    /// intercept / ack, and to-host request / payload intercept.
    pub const MEMCPY_H2D: ControlTimes = ControlTimes {
        gigae: (177.7, 22.2),
        ib40: (16.8, 27.9),
    };
    pub const MEMCPY_D2H: ControlTimes = ControlTimes {
        gigae: (22.4, 35.3),
        ib40: (27.8, 5.6),
    };
}

/// Paper Table IV error percentages, MM rows: (GigaE-model error %,
/// 40GI-model error %).
pub const TABLE4_MM_ERRORS: [(f64, f64); 8] = [
    (2.16, -1.21),
    (1.76, -1.01),
    (-0.10, 0.06),
    (-0.41, 0.25),
    (-0.54, 0.35),
    (0.73, -0.47),
    (-1.78, 1.20),
    (-1.72, 1.18),
];

/// Paper Table IV error percentages, FFT rows.
pub const TABLE4_FFT_ERRORS: [(f64, f64); 7] = [
    (33.95, -16.00),
    (30.26, -12.31),
    (20.48, -8.24),
    (16.35, -6.44),
    (12.32, -4.83),
    (9.26, -3.63),
    (5.77, -2.25),
];

/// Paper Table VI estimate columns (for EXPERIMENTS.md comparison), MM in
/// seconds. Columns: 10GE, 10GI, Myr, F-HT, A-HT — **as printed**, i.e.
/// with the paper's 10GE/10GI swap left intact (see module docs).
pub const TABLE6_MM_GIGAE_MODEL: [[f64; 5]; 8] = [
    [2.13, 2.15, 2.19, 2.07, 2.00],
    [5.07, 5.11, 5.20, 4.92, 4.77],
    [9.56, 9.64, 9.79, 9.30, 9.04],
    [16.03, 16.16, 16.39, 15.63, 15.21],
    [24.80, 24.98, 25.32, 24.22, 23.62],
    [36.46, 36.70, 37.17, 35.66, 34.85],
    [49.96, 50.29, 50.89, 48.93, 47.86],
    [67.06, 67.47, 68.24, 65.75, 64.40],
];

/// Table VI, MM estimates from the 40GI model (seconds), as printed.
pub const TABLE6_MM_IB40_MODEL: [[f64; 5]; 8] = [
    [2.09, 2.11, 2.15, 2.02, 1.96],
    [4.98, 5.03, 5.11, 4.84, 4.69],
    [9.57, 9.65, 9.80, 9.31, 9.05],
    [16.10, 16.22, 16.46, 15.69, 15.27],
    [24.93, 25.12, 25.46, 24.35, 23.75],
    [36.20, 36.44, 36.91, 35.40, 34.59],
    [50.85, 51.18, 51.78, 49.81, 48.75],
    [68.22, 68.63, 69.39, 66.90, 65.56],
];

/// Table VI, FFT estimates from the GigaE model (milliseconds), as printed.
pub const TABLE6_FFT_GIGAE_MODEL: [[f64; 5]; 7] = [
    [228.48, 230.17, 233.32, 223.08, 217.53],
    [303.96, 307.33, 313.64, 293.16, 282.06],
    [383.44, 388.50, 397.95, 367.24, 350.60],
    [460.92, 467.67, 480.27, 439.32, 417.13],
    [538.40, 546.83, 562.59, 511.40, 483.66],
    [616.21, 626.33, 645.24, 583.82, 550.53],
    [775.17, 788.66, 813.88, 731.98, 687.59],
];

/// Table VI, FFT estimates from the 40GI model (milliseconds), as printed.
pub const TABLE6_FFT_IB40_MODEL: [[f64; 5]; 7] = [
    [171.79, 173.48, 176.63, 166.39, 160.84],
    [235.58, 238.96, 245.26, 224.78, 213.69],
    [320.71, 325.77, 335.22, 304.51, 287.87],
    [398.83, 405.58, 418.19, 377.24, 355.04],
    [481.96, 490.39, 506.15, 454.96, 427.22],
    [566.41, 576.54, 595.45, 534.02, 500.73],
    [735.00, 748.49, 773.70, 691.80, 647.42],
];

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::{CaseStudy, Family};
    use rcuda_netsim::NetworkId;

    /// The paper's own arithmetic must be internally consistent: its fixed
    /// columns equal measured − k·(payload / bandwidth) within print
    /// rounding.
    #[test]
    fn paper_fixed_columns_are_consistent_with_measured() {
        for row in MM_ROWS {
            let case = CaseStudy::MatMul { dim: row.dim };
            let per_copy_s = case.memcpy_bytes().as_mib() / NetworkId::GigaE.bandwidth_mib_s();
            let fixed = row.gigae_s - 3.0 * per_copy_s;
            assert!(
                (fixed - row.fixed_gigae_s).abs() < 0.02,
                "dim {}: {fixed} vs {}",
                row.dim,
                row.fixed_gigae_s
            );
            let per_copy_ib = case.memcpy_bytes().as_mib() / NetworkId::Ib40G.bandwidth_mib_s();
            let fixed_ib = row.ib40_s - 3.0 * per_copy_ib;
            assert!(
                (fixed_ib - row.fixed_ib40_s).abs() < 0.02,
                "dim {} ib: {fixed_ib} vs {}",
                row.dim,
                row.fixed_ib40_s
            );
        }
        for row in FFT_ROWS {
            let case = CaseStudy::Fft { batch: row.batch };
            let per_copy_ms =
                case.memcpy_bytes().as_mib() / NetworkId::GigaE.bandwidth_mib_s() * 1e3;
            let fixed = row.gigae_ms - 2.0 * per_copy_ms;
            assert!(
                (fixed - row.fixed_gigae_ms).abs() < 0.2,
                "batch {}: {fixed} vs {}",
                row.batch,
                row.fixed_gigae_ms
            );
        }
    }

    #[test]
    fn row_grids_match_case_study_grids() {
        let dims: Vec<u32> = CaseStudy::standard_grid(Family::MatMul)
            .iter()
            .map(|c| c.size())
            .collect();
        assert_eq!(dims, MM_ROWS.map(|r| r.dim).to_vec());
        let batches: Vec<u32> = CaseStudy::standard_grid(Family::Fft)
            .iter()
            .map(|c| c.size())
            .collect();
        assert_eq!(batches, FFT_ROWS.map(|r| r.batch).to_vec());
    }

    /// The qualitative headline of the paper, straight from its data: MM is
    /// GPU-friendly at scale (GPU beats CPU from 6144 up), FFT is not (CPU
    /// always beats even the local GPU).
    #[test]
    fn paper_data_encodes_the_headline_shape() {
        for row in MM_ROWS.iter().skip(1) {
            assert!(row.gpu_s < row.cpu_s, "MM dim {}: GPU should win", row.dim);
        }
        for row in FFT_ROWS {
            assert!(
                row.cpu_ms < row.gpu_ms,
                "FFT batch {}: CPU should win even locally",
                row.batch
            );
            assert!(row.gpu_ms < row.ib40_ms, "remoting only adds overhead");
        }
    }
}
