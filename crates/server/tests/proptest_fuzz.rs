//! Protocol fuzzing: whatever bytes a client throws at a worker after the
//! handshake, the session must terminate (no hang, no panic) and the daemon
//! side must come out clean.

use proptest::prelude::*;
use rcuda_core::time::wall_clock;
use rcuda_gpu::module::build_module;
use rcuda_gpu::GpuDevice;
use rcuda_proto::Request;
use rcuda_server::{serve_connection, ServerConfig};
use rcuda_transport::channel_pair;
use std::io::{Read, Write};
use std::thread;
use std::time::Duration;

fn handshake(client: &mut rcuda_transport::ChannelTransport) {
    let mut cc = [0u8; 8];
    client.read_exact(&mut cc).unwrap();
    Request::Init {
        module: build_module(&[], 0),
    }
    .write(client)
    .unwrap();
    client.flush().unwrap();
    let mut ack = [0u8; 4];
    client.read_exact(&mut ack).unwrap();
    assert_eq!(ack, [0, 0, 0, 0]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary garbage after a valid handshake ends the session; the
    /// worker thread always terminates.
    #[test]
    fn garbage_after_handshake_terminates_cleanly(
        garbage in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let (mut client, server_side) = channel_pair();
        let device = GpuDevice::tesla_c1060_functional();
        let cfg = ServerConfig::default();
        let worker = thread::spawn(move || {
            serve_connection(server_side, &device, wall_clock(), &cfg)
        });
        handshake(&mut client);
        if !garbage.is_empty() {
            let _ = client.write_all(&garbage);
            let _ = client.flush();
        }
        drop(client); // hang up

        // The worker must finish promptly (bounded poll, no join-hang).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !worker.is_finished() {
            prop_assert!(
                std::time::Instant::now() < deadline,
                "worker hung on garbage input"
            );
            thread::sleep(Duration::from_millis(1));
        }
        let report = worker.join().expect("worker must not panic").unwrap();
        prop_assert!(!report.orderly_shutdown || garbage.is_empty());
    }

    /// Truncated *valid* requests (a real message cut mid-field) also
    /// terminate cleanly.
    #[test]
    fn truncated_requests_terminate_cleanly(
        cut in 1usize..20,
        size in 1u32..1_000_000,
    ) {
        let (mut client, server_side) = channel_pair();
        let device = GpuDevice::tesla_c1060_functional();
        let cfg = ServerConfig::default();
        let worker = thread::spawn(move || {
            serve_connection(server_side, &device, wall_clock(), &cfg)
        });
        handshake(&mut client);

        let mut buf = Vec::new();
        Request::Malloc { size }.write(&mut buf).unwrap();
        let cut = cut.min(buf.len() - 1); // strictly truncated
        let _ = client.write_all(&buf[..cut]);
        let _ = client.flush();
        drop(client);

        let report = worker.join().expect("no panic").unwrap();
        prop_assert!(!report.orderly_shutdown);
        prop_assert_eq!(report.leaked_allocations, 0);
    }
}
