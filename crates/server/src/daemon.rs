//! The TCP daemon: accept loop + one worker thread per connection.
//!
//! Worker threads stand in for the original middleware's per-execution
//! server processes; each gets its own pre-initialized GPU context, so
//! multiple clients time-multiplex the device concurrently and in isolation
//! (§III, Fig. 1).
//!
//! The multi-tenant hardening layer lives here:
//!
//! * **Admission control** — connections over `ServerConfig::max_sessions`
//!   (or arriving while `max_parked` sessions sit parked) are shed at the
//!   handshake with an 8-byte `Busy { retry_after_ms }` frame instead of a
//!   compute capability, then closed. Legacy clients still parse the frame.
//! * **[`DaemonHealth`]** — a consistent snapshot of admission, panic, and
//!   reclamation counters. After all workers finish,
//!   `rejected + served == attempted`.
//! * **[`RcudaDaemon::drain`]** — graceful shutdown: stop accepting, let
//!   in-flight sessions finish until the deadline, then hard-stop the
//!   stragglers by shutting their sockets down, and reclaim every parked
//!   context so the device ledger returns to baseline.

use parking_lot::Mutex;
use rcuda_core::time::wall_clock;
use rcuda_gpu::GpuDevice;
use rcuda_obs::{DaemonEvent, ObsHandle};
use rcuda_proto::handshake::ServerHello;
use rcuda_transport::TcpTransport;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::pool::{GpuPool, PoolPolicy};
use crate::registry::SessionRegistry;
use crate::worker::{release_context, serve_connection_with_registry, ServerConfig, SessionReport};

/// Atomic daemon counters, shared between the accept loop, the workers,
/// and [`DaemonHealth`] snapshots.
#[derive(Default)]
struct Counters {
    attempted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    served: AtomicU64,
    live: AtomicU64,
    accept_errors: AtomicU64,
    panics: AtomicU64,
    reclaimed_bytes: AtomicU64,
}

/// A point-in-time snapshot of the daemon's admission and resource
/// accounting. The balance invariant — once every worker has finished
/// (e.g. after [`RcudaDaemon::drain`]) — is
/// `rejected + served == attempted`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonHealth {
    /// Connections the listener accepted (before admission).
    pub attempted: u64,
    /// Connections admitted to a worker.
    pub admitted: u64,
    /// Connections shed with a `Busy` frame.
    pub rejected: u64,
    /// Worker threads that have finished, whatever the outcome.
    pub served: u64,
    /// Sessions currently being served.
    pub live_sessions: u64,
    /// Sessions currently parked awaiting reconnect.
    pub parked: usize,
    /// `listener.incoming()` errors (previously swallowed silently).
    pub accept_errors: u64,
    /// Sessions killed by a dispatch panic (the daemon survived each).
    pub panics: u64,
    /// Device bytes returned via context release (worker exit, eviction,
    /// drain).
    pub reclaimed_bytes: u64,
}

/// What [`RcudaDaemon::drain`] did with the workers in flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Workers that finished on their own within the deadline.
    pub graceful: usize,
    /// Workers hard-stopped at the deadline (socket shut down, then
    /// joined).
    pub forced: usize,
}

/// A tracked worker thread: its join handle, a clone of its socket (for
/// hard-stopping a worker blocked in a read), and its completion flag.
struct WorkerSlot {
    handle: JoinHandle<()>,
    stream: Option<TcpStream>,
    done: Arc<AtomicBool>,
}

/// A running rCUDA daemon.
pub struct RcudaDaemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    sessions_served: Arc<AtomicU64>,
    reports: Arc<Mutex<Vec<SessionReport>>>,
    registry: Arc<SessionRegistry>,
    counters: Arc<Counters>,
    workers: Arc<Mutex<Vec<WorkerSlot>>>,
    observer: ObsHandle,
}

impl RcudaDaemon {
    /// Bind and start serving on `addr` (use port 0 for an ephemeral port)
    /// with the default configuration and a single device.
    pub fn bind<A: ToSocketAddrs>(addr: A, device: Arc<GpuDevice>) -> io::Result<Self> {
        Self::bind_with_config(addr, device, ServerConfig::default())
    }

    /// Bind a single device with an explicit worker configuration.
    pub fn bind_with_config<A: ToSocketAddrs>(
        addr: A,
        device: Arc<GpuDevice>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Self::bind_pool(
            addr,
            Arc::new(GpuPool::new(vec![device], PoolPolicy::RoundRobin)),
            config,
        )
    }

    /// Bind a multi-GPU pool: each incoming session is placed on a device
    /// by the pool's policy (the paper's future-work scheduling).
    pub fn bind_pool<A: ToSocketAddrs>(
        addr: A,
        pool: Arc<GpuPool>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions_served = Arc::new(AtomicU64::new(0));
        let reports = Arc::new(Mutex::new(Vec::new()));
        let counters = Arc::new(Counters::default());
        let workers = Arc::new(Mutex::new(Vec::<WorkerSlot>::new()));
        let observer = config.observer.clone();
        // One registry shared by every worker, so a session parked by a
        // dying connection can be resumed by a later one. Its capacity is
        // the parked-admission cap when one is configured.
        let registry = Arc::new(match config.max_parked {
            Some(cap) => SessionRegistry::with_capacity(cap),
            None => SessionRegistry::new(),
        });

        let accept_stop = Arc::clone(&stop);
        let accept_sessions = Arc::clone(&sessions_served);
        let accept_reports = Arc::clone(&reports);
        let accept_registry = Arc::clone(&registry);
        let accept_counters = Arc::clone(&counters);
        let accept_workers = Arc::clone(&workers);
        let accept_thread = std::thread::Builder::new()
            .name("rcuda-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let mut stream: TcpStream = match stream {
                        Ok(s) => s,
                        Err(_) => {
                            accept_counters.accept_errors.fetch_add(1, Ordering::SeqCst);
                            config.observer.emit_daemon(DaemonEvent::AcceptError);
                            continue;
                        }
                    };
                    accept_counters.attempted.fetch_add(1, Ordering::SeqCst);
                    // Opportunistically reap finished workers so the slot
                    // list doesn't grow with daemon lifetime.
                    reap_finished(&accept_workers);

                    // Admission control: shed the connection with a Busy
                    // frame instead of the compute-capability push.
                    let live = accept_counters.live.load(Ordering::SeqCst) as usize;
                    let over_sessions = config.max_sessions.is_some_and(|cap| live >= cap);
                    let over_parked = config
                        .max_parked
                        .is_some_and(|cap| accept_registry.parked_count() >= cap);
                    if over_sessions || over_parked {
                        accept_counters.rejected.fetch_add(1, Ordering::SeqCst);
                        config.observer.emit_daemon(DaemonEvent::SessionRejected {
                            retry_after_ms: config.busy_retry_after_ms,
                        });
                        let busy = ServerHello::Busy {
                            retry_after_ms: config.busy_retry_after_ms,
                        };
                        let _ = stream.write_all(&busy.to_wire());
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    accept_counters.admitted.fetch_add(1, Ordering::SeqCst);
                    accept_counters.live.fetch_add(1, Ordering::SeqCst);

                    let pool = Arc::clone(&pool);
                    let config = config.clone();
                    let sessions = Arc::clone(&accept_sessions);
                    let reports = Arc::clone(&accept_reports);
                    let registry = Arc::clone(&accept_registry);
                    let counters = Arc::clone(&accept_counters);
                    let done = Arc::new(AtomicBool::new(false));
                    let worker_done = Arc::clone(&done);
                    // A socket clone lets `drain` hard-stop a worker that
                    // is blocked reading a quiet client.
                    let stream_clone = stream.try_clone().ok();
                    let handle = std::thread::Builder::new()
                        .name("rcuda-worker".into())
                        .spawn(move || {
                            let served = {
                                let (device, _slot) = pool.assign();
                                TcpTransport::from_stream(stream).ok().and_then(|t| {
                                    serve_connection_with_registry(
                                        t,
                                        &device,
                                        wall_clock(),
                                        &config,
                                        &registry,
                                    )
                                    .ok()
                                })
                                // _slot drops here: the pool seat is free
                                // before the session is counted below.
                            };
                            if let Some(report) = served {
                                if report.panicked {
                                    counters.panics.fetch_add(1, Ordering::SeqCst);
                                }
                                counters
                                    .reclaimed_bytes
                                    .fetch_add(report.reclaimed_bytes, Ordering::SeqCst);
                                reports.lock().push(report);
                                sessions.fetch_add(1, Ordering::SeqCst);
                            }
                            counters.live.fetch_sub(1, Ordering::SeqCst);
                            counters.served.fetch_add(1, Ordering::SeqCst);
                            worker_done.store(true, Ordering::SeqCst);
                        })
                        .expect("spawn worker");
                    accept_workers.lock().push(WorkerSlot {
                        handle,
                        stream: stream_clone,
                        done,
                    });
                }
            })
            .expect("spawn accept loop");

        Ok(RcudaDaemon {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            sessions_served,
            reports,
            registry,
            counters,
            workers,
            observer,
        })
    }

    /// The bound address (connect clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently parked awaiting a reconnect.
    pub fn parked_sessions(&self) -> usize {
        self.registry.parked_count()
    }

    /// Completed sessions so far (sessions whose worker produced a report;
    /// see [`DaemonHealth::served`] for all finished workers).
    pub fn sessions_served(&self) -> u64 {
        self.sessions_served.load(Ordering::SeqCst)
    }

    /// Reports of completed sessions.
    pub fn session_reports(&self) -> Vec<SessionReport> {
        self.reports.lock().clone()
    }

    /// A snapshot of the daemon's admission and resource counters.
    pub fn health(&self) -> DaemonHealth {
        let c = &self.counters;
        DaemonHealth {
            attempted: c.attempted.load(Ordering::SeqCst),
            admitted: c.admitted.load(Ordering::SeqCst),
            rejected: c.rejected.load(Ordering::SeqCst),
            served: c.served.load(Ordering::SeqCst),
            live_sessions: c.live.load(Ordering::SeqCst),
            parked: self.registry.parked_count(),
            accept_errors: c.accept_errors.load(Ordering::SeqCst),
            panics: c.panics.load(Ordering::SeqCst),
            reclaimed_bytes: c.reclaimed_bytes.load(Ordering::SeqCst),
        }
    }

    /// Wait until at least `n` sessions have completed (their reports are
    /// recorded and their pool seats released), or the timeout expires.
    /// Returns whether the count was reached. Tests use this to close the
    /// tiny window between a client's Quit acknowledgement and the worker
    /// thread finishing its bookkeeping.
    pub fn wait_for_sessions(&self, n: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.sessions_served() < n {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Graceful shutdown: stop accepting, give in-flight sessions until
    /// `deadline` to finish, then hard-stop stragglers by shutting their
    /// sockets down (which turns their blocking reads into disconnects)
    /// and joining every worker. Parked sessions are then reclaimed —
    /// nobody is coming back for them — so the device ledger returns to
    /// baseline for everything the daemon held.
    pub fn drain(&mut self, deadline: Duration) -> DrainReport {
        self.stop_accepting();

        let end = Instant::now() + deadline;
        loop {
            let all_done = self
                .workers
                .lock()
                .iter()
                .all(|w| w.done.load(Ordering::SeqCst));
            if all_done || Instant::now() >= end {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        let slots: Vec<WorkerSlot> = self.workers.lock().drain(..).collect();
        let mut report = DrainReport::default();
        for slot in slots {
            if slot.done.load(Ordering::SeqCst) {
                report.graceful += 1;
            } else {
                report.forced += 1;
                if let Some(stream) = &slot.stream {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
            let _ = slot.handle.join();
        }

        for (_, ctx) in self.registry.drain_parked() {
            let bytes = release_context(ctx, &self.observer);
            self.counters
                .reclaimed_bytes
                .fetch_add(bytes, Ordering::SeqCst);
        }
        report
    }

    /// Stop accepting and join the accept loop. Worker threads keep
    /// running until their clients leave (like the original middleware's
    /// per-execution server processes) — use [`Self::drain`] to bound
    /// that.
    pub fn shutdown(&mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Join and drop every finished worker slot (non-blocking for the rest).
fn reap_finished(workers: &Mutex<Vec<WorkerSlot>>) {
    let mut finished = Vec::new();
    {
        let mut slots = workers.lock();
        let mut i = 0;
        while i < slots.len() {
            if slots[i].done.load(Ordering::SeqCst) {
                finished.push(slots.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }
    for slot in finished {
        let _ = slot.handle.join();
    }
}

impl Drop for RcudaDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemon_binds_ephemeral_port_and_shuts_down() {
        let device = GpuDevice::tesla_c1060_functional();
        let mut daemon = RcudaDaemon::bind("127.0.0.1:0", device).unwrap();
        assert_ne!(daemon.local_addr().port(), 0);
        assert_eq!(daemon.sessions_served(), 0);
        daemon.shutdown();
    }

    #[test]
    fn daemon_survives_garbage_connection() {
        let device = GpuDevice::tesla_c1060_functional();
        let mut daemon = RcudaDaemon::bind("127.0.0.1:0", device).unwrap();
        {
            // Connect, read nothing, send garbage, vanish.
            let mut s = TcpStream::connect(daemon.local_addr()).unwrap();
            let _ = s.write_all(&[0xFF; 64]);
        }
        // The daemon still accepts a fresh (also short-lived) connection.
        let _ = TcpStream::connect(daemon.local_addr()).unwrap();
        daemon.shutdown();
    }

    #[test]
    fn over_cap_connection_gets_busy_frame() {
        use std::io::Read;

        let device = GpuDevice::tesla_c1060_functional();
        let config = ServerConfig {
            max_sessions: Some(1),
            busy_retry_after_ms: 7,
            ..Default::default()
        };
        let mut daemon = RcudaDaemon::bind_with_config("127.0.0.1:0", device, config).unwrap();

        // First connection occupies the only slot (handshake not finished,
        // so the worker stays live).
        let mut first = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut hello = [0u8; 8];
        first.read_exact(&mut hello).unwrap();
        assert!(matches!(
            ServerHello::from_wire(hello),
            ServerHello::Ready { .. }
        ));

        // Second connection is shed with a Busy frame, then EOF.
        let mut second = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut wait = 0;
        loop {
            match second.read_exact(&mut hello) {
                Ok(()) => break,
                Err(_) if wait < 100 => {
                    wait += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    second = TcpStream::connect(daemon.local_addr()).unwrap();
                }
                Err(e) => panic!("never heard from daemon: {e}"),
            }
        }
        assert_eq!(
            ServerHello::from_wire(hello),
            ServerHello::Busy { retry_after_ms: 7 }
        );
        let health = daemon.health();
        assert!(health.rejected >= 1);
        assert_eq!(health.admitted, 1);
        drop(first);
        daemon.drain(Duration::from_secs(5));
        let health = daemon.health();
        assert_eq!(health.rejected + health.served, health.attempted);
    }

    #[test]
    fn drain_hard_stops_a_blocked_worker() {
        use std::io::Read;

        let device = GpuDevice::tesla_c1060_functional();
        let mut daemon = RcudaDaemon::bind("127.0.0.1:0", device).unwrap();
        // A client that completes the hello and then goes silent: its
        // worker blocks in Frame::read forever.
        let mut quiet = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut hello = [0u8; 8];
        quiet.read_exact(&mut hello).unwrap();

        let start = Instant::now();
        let report = daemon.drain(Duration::from_millis(100));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drain must not hang on a quiet client"
        );
        assert_eq!(report.forced, 1);
        assert_eq!(daemon.health().live_sessions, 0, "worker joined");
    }
}
