//! The TCP daemon: accept loop + the sharded reactor core.
//!
//! Admitted connections are multiplexed onto a small fixed pool of reactor
//! shards (see [`crate::reactor`]) instead of one thread per connection:
//! the thread count is set by [`DaemonBuilder::shards`], not by how many
//! clients are connected, so thousands of concurrent remote executions
//! cost neither stacks nor scheduler churn. Each session still gets its
//! own pre-initialized GPU context, so multiple clients time-multiplex the
//! device concurrently and in isolation (§III, Fig. 1).
//!
//! The multi-tenant hardening layer lives here:
//!
//! * **Admission control** — connections over `ServerConfig::max_sessions`
//!   (or arriving while `max_parked` sessions sit parked) are shed at the
//!   handshake with an 8-byte `Busy { retry_after_ms }` frame instead of a
//!   compute capability, then closed. Legacy clients still parse the frame.
//! * **Accept backoff** — transient accept errors (`EMFILE` above all)
//!   back off with jittered exponential sleeps instead of spinning hot,
//!   reported as [`DaemonEvent::AcceptThrottled`].
//! * **[`DaemonHealth`]** — a consistent snapshot of admission, panic, and
//!   reclamation counters. After all sessions finish,
//!   `rejected + served == attempted`.
//! * **[`RcudaDaemon::drain`]** — graceful shutdown: stop accepting, let
//!   in-flight sessions finish until the deadline, then hard-stop the
//!   stragglers by shutting their sockets down, and reclaim every parked
//!   context so the device ledger returns to baseline.
//!
//! Construct daemons with [`DaemonBuilder`]; the old free-standing `bind*`
//! constructors are gone.

use rcuda_obs::DaemonEvent;
use rcuda_proto::handshake::{read_hello_reply, ServerHello};
use rcuda_proto::SessionHello;
use rcuda_transport::{channel_pair, ChannelTransport, TcpTransport};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use crate::broker_agent::BrokerAgent;
use crate::builder::DaemonBuilder;
use crate::pool::GpuPool;
use crate::reactor::{NewConn, Reactor, Shared};
use crate::worker::{release_context, SessionReport};

/// Longest single accept-error backoff, in milliseconds (before jitter).
const ACCEPT_BACKOFF_CAP_MS: u64 = 64;

/// How long [`RcudaDaemon::migrate_out`] waits for a live session to reach
/// a frame boundary before giving up (the session may be mid-request, and
/// its shard only quiesces it between frames).
const MIGRATE_QUIESCE_TIMEOUT: Duration = Duration::from_secs(2);

/// I/O timeout on the daemon-to-daemon migration connection.
const MIGRATE_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A point-in-time snapshot of the daemon's admission and resource
/// accounting. The balance invariant — once every session has finished
/// (e.g. after [`RcudaDaemon::drain`]) — is
/// `rejected + served == attempted`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonHealth {
    /// Connections the listener accepted (before admission).
    pub attempted: u64,
    /// Connections admitted to the reactor.
    pub admitted: u64,
    /// Connections shed with a `Busy` frame.
    pub rejected: u64,
    /// Sessions that have finished, whatever the outcome.
    pub served: u64,
    /// Sessions currently being served.
    pub live_sessions: u64,
    /// Sessions currently parked awaiting reconnect.
    pub parked: usize,
    /// Accept errors (previously swallowed silently).
    pub accept_errors: u64,
    /// Sessions killed by a dispatch panic (the daemon survived each).
    pub panics: u64,
    /// Device bytes returned via context release (session exit, eviction,
    /// drain).
    pub reclaimed_bytes: u64,
}

/// What [`RcudaDaemon::drain`] did with the sessions in flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Sessions that finished on their own within the deadline.
    pub graceful: usize,
    /// Sessions hard-stopped at the deadline (socket shut down, then
    /// finalized by their shard).
    pub forced: usize,
}

/// A running rCUDA daemon.
pub struct RcudaDaemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
    reactor: Arc<Reactor>,
    pool: Arc<GpuPool>,
    drain_deadline: Option<Duration>,
    /// The broker registration/heartbeat thread, when
    /// [`DaemonBuilder::broker`] was configured.
    pub(crate) agent: Option<BrokerAgent>,
}

/// Ship one session to a peer daemon at `target`; the free-function form
/// lets the broker agent thread migrate without holding an
/// [`RcudaDaemon`] handle (which owns the agent — a cycle otherwise).
///
/// Parked sessions are taken straight from the registry; live ones are
/// captured by their reactor shard at the next frame boundary. The
/// snapshot travels over a fresh TCP connection as a `Migrate` hello; the
/// source copy is only released after the target acknowledges the restore,
/// and a failed ship re-parks the context locally so the session is never
/// lost in transit.
pub(crate) fn migrate_out_shared(
    shared: &Arc<Shared>,
    session: u64,
    target: &str,
) -> io::Result<()> {
    let ctx = match shared.registry.take(session) {
        Some(ctx) => ctx,
        None => {
            if !shared.live_tokens.lock().contains(&session) {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "unknown session token",
                ));
            }
            let rx = shared.migrations.arm(session);
            match rx.recv_timeout(MIGRATE_QUIESCE_TIMEOUT) {
                Ok(ctx) => ctx,
                Err(_) => {
                    shared.migrations.disarm(session);
                    // The shard may have quiesced between the timeout and
                    // the disarm: drain once more before giving up.
                    match rx.try_recv() {
                        Ok(ctx) => ctx,
                        Err(_) => {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "session never reached a frame boundary",
                            ))
                        }
                    }
                }
            }
        }
    };
    let snapshot = ctx.snapshot().encode();
    match ship_snapshot(target, session, snapshot) {
        Ok(()) => {
            let bytes = release_context(ctx, &shared.config.observer);
            shared
                .counters
                .reclaimed_bytes
                .fetch_add(bytes, Ordering::SeqCst);
            Ok(())
        }
        Err(e) => {
            // Park locally so the client's reconnect can still find the
            // session here.
            if let Some((evicted, evicted_ctx)) = shared.registry.park(session, ctx) {
                let obs = &shared.config.observer;
                obs.emit_daemon(DaemonEvent::SessionEvicted { session: evicted });
                let bytes = release_context(evicted_ctx, obs);
                shared
                    .counters
                    .reclaimed_bytes
                    .fetch_add(bytes, Ordering::SeqCst);
            }
            Err(e)
        }
    }
}

/// Deliver one encoded context snapshot to the daemon at `target` and wait
/// for its restore acknowledgement.
fn ship_snapshot(target: &str, session: u64, snapshot: Vec<u8>) -> io::Result<()> {
    let mut stream = TcpStream::connect(target)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(MIGRATE_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(MIGRATE_IO_TIMEOUT))?;
    let mut hello = [0u8; 8];
    stream.read_exact(&mut hello)?;
    if let ServerHello::Busy { .. } = ServerHello::from_wire(hello) {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            "target daemon is shedding connections",
        ));
    }
    SessionHello::Migrate { session, snapshot }.write(&mut stream)?;
    stream.flush()?;
    match read_hello_reply(&mut stream)? {
        Ok(()) => Ok(()),
        Err(e) => Err(io::Error::other(e.name())),
    }
}

/// Count the connection against the admission caps. `true` means it was
/// admitted (and `live` already includes it); `false` means it must be
/// shed with a `Busy` frame. Mux sub-streams are admitted through here
/// too, so every session — whatever its framing — obeys the same caps.
pub(crate) fn admit(shared: &Shared) -> bool {
    let c = &shared.counters;
    c.attempted.fetch_add(1, Ordering::SeqCst);
    let config = &shared.config;
    let live = c.live.load(Ordering::SeqCst) as usize;
    let over_sessions = config.max_sessions.is_some_and(|cap| live >= cap);
    let over_parked = config
        .max_parked
        .is_some_and(|cap| shared.registry.parked_count() >= cap);
    if over_sessions || over_parked {
        c.rejected.fetch_add(1, Ordering::SeqCst);
        config.observer.emit_daemon(DaemonEvent::SessionRejected {
            retry_after_ms: config.busy_retry_after_ms,
        });
        false
    } else {
        c.admitted.fetch_add(1, Ordering::SeqCst);
        c.live.fetch_add(1, Ordering::SeqCst);
        true
    }
}

impl RcudaDaemon {
    /// A [`DaemonBuilder`] with defaults (single functional Tesla C1060,
    /// default config, shard count from the host's parallelism).
    pub fn builder() -> DaemonBuilder {
        DaemonBuilder::new()
    }

    /// Bind the listener, start the reactor, and start accepting. The
    /// builder is the only caller.
    pub(crate) fn start<A: ToSocketAddrs>(
        addr: A,
        pool: Arc<GpuPool>,
        shared: Arc<Shared>,
        shards: usize,
        drain_deadline: Option<Duration>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let reactor = Arc::new(Reactor::start(shards, &shared));
        shared.links.install(&reactor, &pool);

        let accept_stop = Arc::clone(&stop);
        let accept_shared = Arc::clone(&shared);
        let accept_reactor = Arc::clone(&reactor);
        let accept_pool = Arc::clone(&pool);
        // Jitter state for accept backoff: any nonzero xorshift seed will
        // do; wall time keeps daemons from thundering in step.
        let mut rng = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0x9E37_79B9, |d| d.as_nanos() as u64)
            | 1;
        let accept_thread = std::thread::Builder::new()
            .name("rcuda-accept".into())
            .spawn(move || {
                let mut consecutive_errors: u32 = 0;
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if accept_stop.load(Ordering::SeqCst) {
                                break;
                            }
                            consecutive_errors = 0;
                            accept_tcp(stream, &accept_shared, &accept_pool, &accept_reactor);
                        }
                        Err(_) => {
                            if accept_stop.load(Ordering::SeqCst) {
                                break;
                            }
                            let c = &accept_shared.counters;
                            c.accept_errors.fetch_add(1, Ordering::SeqCst);
                            let obs = &accept_shared.config.observer;
                            obs.emit_daemon(DaemonEvent::AcceptError);
                            // Jittered exponential backoff: an EMFILE storm
                            // (or any persistent accept failure) must not
                            // spin the accept thread hot.
                            consecutive_errors = consecutive_errors.saturating_add(1);
                            let base = 1u64 << consecutive_errors.clamp(1, 6);
                            rng ^= rng << 13;
                            rng ^= rng >> 7;
                            rng ^= rng << 17;
                            let backoff_ms = (base + rng % base).min(2 * ACCEPT_BACKOFF_CAP_MS);
                            obs.emit_daemon(DaemonEvent::AcceptThrottled {
                                consecutive_errors,
                                backoff_ms,
                            });
                            std::thread::sleep(Duration::from_millis(backoff_ms));
                        }
                    }
                }
            })
            .expect("spawn accept loop");

        Ok(RcudaDaemon {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            shared,
            reactor,
            pool,
            drain_deadline,
            agent: None,
        })
    }

    /// The bound address (connect clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many reactor shards are serving connections.
    pub fn shard_count(&self) -> usize {
        self.reactor.shard_count()
    }

    /// Open an in-process session: the client half of a channel transport
    /// whose server half is admitted (or `Busy`-shed) exactly like a TCP
    /// connection, then served by the reactor. Soak tests use this to
    /// drive tens of thousands of concurrent sessions without consuming
    /// file descriptors.
    pub fn connect_in_process(&self) -> ChannelTransport {
        let (client, mut server) = channel_pair();
        if admit(&self.shared) {
            let (device, guard) = self.pool.assign();
            self.reactor.submit(NewConn {
                transport: Box::new(server),
                raw: None,
                device,
                guard,
                authenticated: false,
            });
        } else {
            let busy = ServerHello::Busy {
                retry_after_ms: self.shared.config.busy_retry_after_ms,
            };
            let _ = server.write_all(&busy.to_wire());
            let _ = server.flush();
        }
        client
    }

    /// Sessions currently parked awaiting a reconnect.
    pub fn parked_sessions(&self) -> usize {
        self.shared.registry.parked_count()
    }

    /// Tokens of every resumable session this daemon holds — live (being
    /// served) and parked (awaiting reconnect) alike. The broker heartbeat
    /// advertises this list; drain-time migration walks it.
    pub fn session_tokens(&self) -> Vec<u64> {
        let mut tokens = self.shared.registry.parked_tokens();
        tokens.extend(self.shared.live_tokens.lock().iter().copied());
        tokens.sort_unstable();
        tokens.dedup();
        tokens
    }

    /// Live-migrate one session to the daemon at `target` (an address
    /// string clients could dial). Parked sessions ship immediately; a
    /// live session is quiesced by its reactor shard at the next frame
    /// boundary — its connection then closes, and the client's reconnect
    /// finds the session parked on the target. The source context is
    /// released only after the target acknowledges the restore, so the
    /// device ledgers on both sides stay balanced; a failed ship re-parks
    /// the session locally.
    pub fn migrate_out(&self, session: u64, target: &str) -> io::Result<()> {
        migrate_out_shared(&self.shared, session, target)
    }

    /// Completed sessions so far (sessions that produced a report; see
    /// [`DaemonHealth::served`] for all finished connections).
    pub fn sessions_served(&self) -> u64 {
        self.shared.sessions_served.load(Ordering::SeqCst)
    }

    /// Reports of completed sessions.
    pub fn session_reports(&self) -> Vec<SessionReport> {
        self.shared.reports.lock().clone()
    }

    /// A snapshot of the daemon's admission and resource counters.
    pub fn health(&self) -> DaemonHealth {
        let c = &self.shared.counters;
        DaemonHealth {
            attempted: c.attempted.load(Ordering::SeqCst),
            admitted: c.admitted.load(Ordering::SeqCst),
            rejected: c.rejected.load(Ordering::SeqCst),
            served: c.served.load(Ordering::SeqCst),
            live_sessions: c.live.load(Ordering::SeqCst),
            parked: self.shared.registry.parked_count(),
            accept_errors: c.accept_errors.load(Ordering::SeqCst),
            panics: c.panics.load(Ordering::SeqCst),
            reclaimed_bytes: c.reclaimed_bytes.load(Ordering::SeqCst),
        }
    }

    /// Wait until at least `n` sessions have completed (their reports are
    /// recorded and their pool seats released), or the timeout expires.
    /// Returns whether the count was reached. Tests use this to close the
    /// tiny window between a client's Quit acknowledgement and the shard
    /// finishing its bookkeeping.
    pub fn wait_for_sessions(&self, n: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.sessions_served() < n {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Graceful shutdown: stop accepting, give in-flight sessions until
    /// `deadline` to finish, then hard-stop stragglers (their sockets are
    /// shut down and their shards finalize them like disconnects). Parked
    /// sessions are then reclaimed — nobody is coming back for them — so
    /// the device ledger returns to baseline for everything the daemon
    /// held.
    pub fn drain(&mut self, deadline: Duration) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.stop_accepting();
        self.shared.drain.begin();

        let live = |shared: &Shared| shared.counters.live.load(Ordering::SeqCst);
        let end = Instant::now() + deadline;
        while live(&self.shared) > 0 && Instant::now() < end {
            std::thread::sleep(Duration::from_millis(1));
        }
        if live(&self.shared) > 0 {
            self.shared.drain.force();
            while live(&self.shared) > 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let (graceful, forced) = self.shared.drain.end();

        for (_, ctx) in self.shared.registry.drain_parked() {
            let bytes = release_context(ctx, &self.shared.config.observer);
            self.shared
                .counters
                .reclaimed_bytes
                .fetch_add(bytes, Ordering::SeqCst);
        }
        DrainReport { graceful, forced }
    }

    /// Graceful decommission: migrate every held session out to `targets`
    /// (round-robin), then [`Self::drain`]. Sessions that fail to ship
    /// stay behind and take the ordinary drain path — parked ones are
    /// reclaimed, live ones get until the deadline. The `draining` flag is
    /// raised first so the broker stops placing new sessions here while
    /// the existing ones leave.
    pub fn drain_with_migration(&mut self, deadline: Duration, targets: &[String]) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        if !targets.is_empty() {
            for (i, session) in self.session_tokens().into_iter().enumerate() {
                let _ = self.migrate_out(session, &targets[i % targets.len()]);
            }
        }
        self.drain(deadline)
    }

    /// Stop accepting and join the accept loop. The reactor keeps serving
    /// live sessions until their clients leave (like the original
    /// middleware's per-execution server processes) — use [`Self::drain`]
    /// to bound that.
    pub fn shutdown(&mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Admission + handoff for one accepted TCP connection.
fn accept_tcp(mut stream: TcpStream, shared: &Shared, pool: &Arc<GpuPool>, reactor: &Reactor) {
    if !admit(shared) {
        // Shed with a Busy frame instead of the compute-capability push;
        // the socket is still blocking here, so the 8 bytes go out inline.
        let busy = ServerHello::Busy {
            retry_after_ms: shared.config.busy_retry_after_ms,
        };
        let _ = stream.write_all(&busy.to_wire());
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let (device, guard) = pool.assign();
    // A socket clone lets drain/halt hard-stop a session whose client has
    // gone quiet.
    let raw = stream.try_clone().ok();
    match TcpTransport::from_stream(stream) {
        Ok(t) => reactor.submit(NewConn {
            transport: Box::new(t),
            raw,
            device,
            guard,
            authenticated: false,
        }),
        Err(_) => {
            // The socket died between accept and configuration: balance the
            // admission counters as an immediately-finished session.
            let c = &shared.counters;
            c.served.fetch_add(1, Ordering::SeqCst);
            c.live.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl Drop for RcudaDaemon {
    fn drop(&mut self) {
        // The broker agent goes first: no migration orders may arrive
        // while the daemon tears itself down.
        if let Some(mut agent) = self.agent.take() {
            agent.stop();
        }
        self.stop_accepting();
        if let Some(deadline) = self.drain_deadline {
            self.drain(deadline);
        }
        // Halt the shards: live connections are force-finalized (their
        // clients see a disconnect) and the threads exit.
        self.shared.halt.store(true, Ordering::SeqCst);
        self.reactor.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_gpu::GpuDevice;

    #[test]
    fn daemon_binds_ephemeral_port_and_shuts_down() {
        let device = GpuDevice::tesla_c1060_functional();
        let mut daemon = DaemonBuilder::new()
            .device(device)
            .bind("127.0.0.1:0")
            .unwrap();
        assert_ne!(daemon.local_addr().port(), 0);
        assert_eq!(daemon.sessions_served(), 0);
        assert!(daemon.shard_count() >= 1);
        daemon.shutdown();
    }

    #[test]
    fn daemon_survives_garbage_connection() {
        let device = GpuDevice::tesla_c1060_functional();
        let mut daemon = DaemonBuilder::new()
            .device(device)
            .bind("127.0.0.1:0")
            .unwrap();
        {
            // Connect, read nothing, send garbage, vanish.
            let mut s = TcpStream::connect(daemon.local_addr()).unwrap();
            let _ = s.write_all(&[0xFF; 64]);
        }
        // The daemon still accepts a fresh (also short-lived) connection.
        let _ = TcpStream::connect(daemon.local_addr()).unwrap();
        daemon.shutdown();
    }

    #[test]
    fn over_cap_connection_gets_busy_frame() {
        use std::io::Read;

        let device = GpuDevice::tesla_c1060_functional();
        let mut daemon = DaemonBuilder::new()
            .device(device)
            .max_sessions(1)
            .busy_retry_after_ms(7)
            .bind("127.0.0.1:0")
            .unwrap();

        // First connection occupies the only slot (handshake not finished,
        // so the session stays live).
        let mut first = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut hello = [0u8; 8];
        first.read_exact(&mut hello).unwrap();
        assert!(matches!(
            ServerHello::from_wire(hello),
            ServerHello::Ready { .. }
        ));

        // Second connection is shed with a Busy frame, then EOF.
        let mut second = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut wait = 0;
        loop {
            match second.read_exact(&mut hello) {
                Ok(()) => break,
                Err(_) if wait < 100 => {
                    wait += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    second = TcpStream::connect(daemon.local_addr()).unwrap();
                }
                Err(e) => panic!("never heard from daemon: {e}"),
            }
        }
        assert_eq!(
            ServerHello::from_wire(hello),
            ServerHello::Busy { retry_after_ms: 7 }
        );
        let health = daemon.health();
        assert!(health.rejected >= 1);
        assert_eq!(health.admitted, 1);
        drop(first);
        daemon.drain(Duration::from_secs(5));
        let health = daemon.health();
        assert_eq!(health.rejected + health.served, health.attempted);
    }

    #[test]
    fn drain_hard_stops_a_blocked_worker() {
        use std::io::Read;

        let device = GpuDevice::tesla_c1060_functional();
        let mut daemon = DaemonBuilder::new()
            .device(device)
            .bind("127.0.0.1:0")
            .unwrap();
        // A client that completes the hello and then goes silent: its
        // session sits parked in its shard forever.
        let mut quiet = TcpStream::connect(daemon.local_addr()).unwrap();
        let mut hello = [0u8; 8];
        quiet.read_exact(&mut hello).unwrap();

        let start = Instant::now();
        let report = daemon.drain(Duration::from_millis(100));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drain must not hang on a quiet client"
        );
        assert_eq!(report.forced, 1);
        assert_eq!(daemon.health().live_sessions, 0, "session finalized");
    }

    #[test]
    fn in_process_sessions_respect_admission() {
        use std::io::Read;

        let device = GpuDevice::tesla_c1060_functional();
        let daemon = DaemonBuilder::new()
            .device(device)
            .max_sessions(1)
            .busy_retry_after_ms(3)
            .bind("127.0.0.1:0")
            .unwrap();

        // First in-process session occupies the slot.
        let mut first = daemon.connect_in_process();
        let mut hello = [0u8; 8];
        first.read_exact(&mut hello).unwrap();
        assert!(matches!(
            ServerHello::from_wire(hello),
            ServerHello::Ready { .. }
        ));

        // Second is shed with the same Busy frame TCP clients get.
        let mut second = daemon.connect_in_process();
        second.read_exact(&mut hello).unwrap();
        assert_eq!(
            ServerHello::from_wire(hello),
            ServerHello::Busy { retry_after_ms: 3 }
        );
    }
}
