//! The TCP daemon: accept loop + one worker thread per connection.
//!
//! Worker threads stand in for the original middleware's per-execution
//! server processes; each gets its own pre-initialized GPU context, so
//! multiple clients time-multiplex the device concurrently and in isolation
//! (§III, Fig. 1).

use parking_lot::Mutex;
use rcuda_core::time::wall_clock;
use rcuda_gpu::GpuDevice;
use rcuda_transport::TcpTransport;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::pool::{GpuPool, PoolPolicy};
use crate::registry::SessionRegistry;
use crate::worker::{serve_connection_with_registry, ServerConfig, SessionReport};

/// A running rCUDA daemon.
pub struct RcudaDaemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    sessions_served: Arc<AtomicU64>,
    reports: Arc<Mutex<Vec<SessionReport>>>,
    registry: Arc<SessionRegistry>,
}

impl RcudaDaemon {
    /// Bind and start serving on `addr` (use port 0 for an ephemeral port)
    /// with the default configuration and a single device.
    pub fn bind<A: ToSocketAddrs>(addr: A, device: Arc<GpuDevice>) -> io::Result<Self> {
        Self::bind_with_config(addr, device, ServerConfig::default())
    }

    /// Bind a single device with an explicit worker configuration.
    pub fn bind_with_config<A: ToSocketAddrs>(
        addr: A,
        device: Arc<GpuDevice>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Self::bind_pool(
            addr,
            Arc::new(GpuPool::new(vec![device], PoolPolicy::RoundRobin)),
            config,
        )
    }

    /// Bind a multi-GPU pool: each incoming session is placed on a device
    /// by the pool's policy (the paper's future-work scheduling).
    pub fn bind_pool<A: ToSocketAddrs>(
        addr: A,
        pool: Arc<GpuPool>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions_served = Arc::new(AtomicU64::new(0));
        let reports = Arc::new(Mutex::new(Vec::new()));
        // One registry shared by every worker, so a session parked by a
        // dying connection can be resumed by a later one.
        let registry = Arc::new(SessionRegistry::new());

        let accept_stop = Arc::clone(&stop);
        let accept_sessions = Arc::clone(&sessions_served);
        let accept_reports = Arc::clone(&reports);
        let accept_registry = Arc::clone(&registry);
        let accept_thread = std::thread::Builder::new()
            .name("rcuda-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream: TcpStream = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let pool = Arc::clone(&pool);
                    let config = config.clone();
                    let sessions = Arc::clone(&accept_sessions);
                    let reports = Arc::clone(&accept_reports);
                    let registry = Arc::clone(&accept_registry);
                    // Workers are detached: a session blocked on a quiet
                    // client must not hold up daemon shutdown (it ends when
                    // its client leaves, like the original's per-execution
                    // server processes).
                    std::thread::Builder::new()
                        .name("rcuda-worker".into())
                        .spawn(move || {
                            let served = {
                                let (device, _slot) = pool.assign();
                                TcpTransport::from_stream(stream).ok().and_then(|t| {
                                    serve_connection_with_registry(
                                        t,
                                        &device,
                                        wall_clock(),
                                        &config,
                                        &registry,
                                    )
                                    .ok()
                                })
                                // _slot drops here: the pool seat is free
                                // before the session is counted below.
                            };
                            if let Some(report) = served {
                                reports.lock().push(report);
                                sessions.fetch_add(1, Ordering::SeqCst);
                            }
                        })
                        .expect("spawn worker");
                }
            })
            .expect("spawn accept loop");

        Ok(RcudaDaemon {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            sessions_served,
            reports,
            registry,
        })
    }

    /// The bound address (connect clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently parked awaiting a reconnect.
    pub fn parked_sessions(&self) -> usize {
        self.registry.parked_count()
    }

    /// Completed sessions so far.
    pub fn sessions_served(&self) -> u64 {
        self.sessions_served.load(Ordering::SeqCst)
    }

    /// Reports of completed sessions.
    pub fn session_reports(&self) -> Vec<SessionReport> {
        self.reports.lock().clone()
    }

    /// Wait until at least `n` sessions have completed (their reports are
    /// recorded and their pool seats released), or the timeout expires.
    /// Returns whether the count was reached. Tests use this to close the
    /// tiny window between a client's Quit acknowledgement and the worker
    /// thread finishing its bookkeeping.
    pub fn wait_for_sessions(&self, n: u64, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.sessions_served() < n {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        true
    }

    /// Stop accepting and join the accept loop. Worker threads are
    /// detached: an active session keeps running until its client leaves
    /// (like the original middleware's per-execution server processes).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RcudaDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemon_binds_ephemeral_port_and_shuts_down() {
        let device = GpuDevice::tesla_c1060_functional();
        let mut daemon = RcudaDaemon::bind("127.0.0.1:0", device).unwrap();
        assert_ne!(daemon.local_addr().port(), 0);
        assert_eq!(daemon.sessions_served(), 0);
        daemon.shutdown();
    }

    #[test]
    fn daemon_survives_garbage_connection() {
        use std::io::Write;
        let device = GpuDevice::tesla_c1060_functional();
        let mut daemon = RcudaDaemon::bind("127.0.0.1:0", device).unwrap();
        {
            // Connect, read nothing, send garbage, vanish.
            let mut s = TcpStream::connect(daemon.local_addr()).unwrap();
            let _ = s.write_all(&[0xFF; 64]);
        }
        // The daemon still accepts a fresh (also short-lived) connection.
        let _ = TcpStream::connect(daemon.local_addr()).unwrap();
        daemon.shutdown();
    }
}
