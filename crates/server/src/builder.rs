//! [`DaemonBuilder`]: the one way to configure and start an
//! [`RcudaDaemon`].
//!
//! Collapses the old constructor zoo (`bind` / `bind_with_config` /
//! `bind_pool`) into a single fluent surface that also exposes the
//! reactor-era knobs (shard count, drop-time drain deadline) without
//! another constructor variant per combination.

use parking_lot::Mutex;
use rcuda_gpu::GpuDevice;
use rcuda_obs::ObsHandle;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Arc;
use std::time::Duration;

use crate::broker_agent::{BrokerAgent, BrokerAgentConfig};
use crate::daemon::RcudaDaemon;
use crate::mux_host::MuxLinks;
use crate::pool::{GpuPool, PoolPolicy};
use crate::reactor::{Counters, DrainState, MigrationTable, Shared};
use crate::registry::ShardedRegistry;
use crate::worker::{ChaosHook, ServerConfig};
use rcuda_proto::secure::CipherSuiteKind;

/// Builder for [`RcudaDaemon`].
///
/// ```no_run
/// use rcuda_server::DaemonBuilder;
///
/// let daemon = DaemonBuilder::new()
///     .shards(4)
///     .max_sessions(256)
///     .session_mem_quota(64 << 20)
///     .drain_deadline(std::time::Duration::from_secs(2))
///     .bind("127.0.0.1:0")
///     .unwrap();
/// # drop(daemon);
/// ```
///
/// Defaults: a single functional Tesla C1060, a shard count derived from
/// the host's available parallelism (clamped to 1..=8), the default
/// [`ServerConfig`], and no drop-time drain (live sessions are
/// hard-stopped when the daemon drops).
#[derive(Default)]
pub struct DaemonBuilder {
    device: Option<Arc<GpuDevice>>,
    pool: Option<Arc<GpuPool>>,
    shards: Option<usize>,
    config: ServerConfig,
    drain_deadline: Option<Duration>,
    broker: Option<SocketAddr>,
    broker_interval: Option<Duration>,
    advertise: Option<String>,
}

/// Default broker heartbeat cadence. The broker's stock
/// [`HealthPolicy`](rcuda_broker::HealthPolicy) suspects a daemon after
/// 250 ms of silence, so the default tolerates several missed beats.
const DEFAULT_BROKER_HEARTBEAT: Duration = Duration::from_millis(50);

impl DaemonBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Serve this single device. Overridden by [`Self::pool`].
    pub fn device(mut self, device: Arc<GpuDevice>) -> Self {
        self.device = Some(device);
        self
    }

    /// Serve a multi-GPU pool: each incoming session is placed on a device
    /// by the pool's policy (the paper's future-work scheduling). Takes
    /// precedence over [`Self::device`].
    pub fn pool(mut self, pool: Arc<GpuPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Fixed number of reactor shard threads (clamped to at least 1). The
    /// daemon's thread count is `shards + 1` (the accept loop), regardless
    /// of how many sessions are live.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n.max(1));
        self
    }

    /// Replace the whole [`ServerConfig`] at once. The per-field setters
    /// below tweak whatever config is current, so call this first if you
    /// combine them.
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Admission cap on concurrently live sessions.
    pub fn max_sessions(mut self, cap: usize) -> Self {
        self.config.max_sessions = Some(cap);
        self
    }

    /// Admission cap on parked-registry occupancy (also the registry's
    /// total capacity across shards).
    pub fn max_parked(mut self, cap: usize) -> Self {
        self.config.max_parked = Some(cap);
        self
    }

    /// Per-session cap on live device bytes.
    pub fn session_mem_quota(mut self, bytes: u64) -> Self {
        self.config.session_mem_quota = Some(bytes);
        self
    }

    /// The retry hint carried in `Busy` rejection frames.
    pub fn busy_retry_after_ms(mut self, ms: u32) -> Self {
        self.config.busy_retry_after_ms = ms;
        self
    }

    /// Require every connection to authenticate with this token: mux trunks
    /// prove possession via the HMAC challenge-response handshake; legacy
    /// single-stream hellos (which cannot carry a token) are rejected with
    /// `rcudaErrorAuthFailed` without consuming a session slot.
    pub fn auth(mut self, required_token: impl Into<Vec<u8>>) -> Self {
        self.config.auth_token = Some(required_token.into());
        self
    }

    /// The cipher suite offered to mux clients requesting payload
    /// encryption. Defaults to [`CipherSuiteKind::ChaCha20`]; pass
    /// [`CipherSuiteKind::None`] to refuse encryption outright.
    pub fn cipher(mut self, suite: CipherSuiteKind) -> Self {
        self.config.cipher = suite;
        self
    }

    /// Keep CUDA contexts warm before clients arrive (§VI-B). On by
    /// default; disable to ablate the pre-initialization benefit.
    pub fn preinitialize_context(mut self, on: bool) -> Self {
        self.config.preinitialize_context = on;
        self
    }

    /// Use phantom device memory (timing-only sessions at paper scale).
    pub fn phantom_memory(mut self, on: bool) -> Self {
        self.config.phantom_memory = on;
        self
    }

    /// Install a server-side observer (dispatch spans, daemon events,
    /// shard spans).
    pub fn observer(mut self, observer: ObsHandle) -> Self {
        self.config.observer = observer;
        self
    }

    /// Arm the test-only per-request chaos hook.
    pub fn chaos(mut self, chaos: ChaosHook) -> Self {
        self.config.chaos = chaos;
        self
    }

    /// Drain this long (graceful, then forced) when the daemon is dropped,
    /// instead of hard-stopping live sessions immediately.
    pub fn drain_deadline(mut self, deadline: Duration) -> Self {
        self.drain_deadline = Some(deadline);
        self
    }

    /// Register with the cluster broker at `addr`: the daemon announces
    /// itself on bind, heartbeats its health and session list, and
    /// executes the broker's migration orders. The control link
    /// authenticates with the daemon's [`Self::auth`] token (open broker
    /// when none is set). The broker is a placement service, not a data
    /// path dependency — the daemon serves clients with or without it.
    pub fn broker(mut self, addr: SocketAddr) -> Self {
        self.broker = Some(addr);
        self
    }

    /// Heartbeat cadence for the broker registration (default 50 ms).
    /// Keep it a small fraction of the broker's suspect threshold.
    pub fn broker_heartbeat_interval(mut self, interval: Duration) -> Self {
        self.broker_interval = Some(interval);
        self
    }

    /// The address advertised to the broker — what *clients* should dial
    /// to reach this daemon. Defaults to the daemon's bound address,
    /// which is wrong only behind NAT or a `0.0.0.0` bind.
    pub fn advertise(mut self, addr: impl Into<String>) -> Self {
        self.advertise = Some(addr.into());
        self
    }

    /// Bind `addr` (port 0 for ephemeral), start the reactor shards and
    /// the accept loop, and return the running daemon.
    pub fn bind<A: ToSocketAddrs>(self, addr: A) -> io::Result<RcudaDaemon> {
        let pool = match (self.pool, self.device) {
            (Some(pool), _) => pool,
            (None, Some(device)) => Arc::new(GpuPool::new(vec![device], PoolPolicy::RoundRobin)),
            (None, None) => Arc::new(GpuPool::new(
                vec![GpuDevice::tesla_c1060_functional()],
                PoolPolicy::RoundRobin,
            )),
        };
        let shards = self.shards.unwrap_or_else(default_shards);
        // One registry sharded alongside the reactor, so a session parked
        // by a dying connection can be resumed by a later one. Its total
        // capacity is the parked-admission cap when one is configured.
        let registry = match self.config.max_parked {
            Some(cap) => ShardedRegistry::with_total_capacity(shards, cap.max(1)),
            None => ShardedRegistry::new(shards),
        };
        let shared = Arc::new(Shared {
            config: self.config,
            counters: Counters::default(),
            reports: Mutex::new(Vec::new()),
            sessions_served: AtomicU64::new(0),
            registry,
            drain: DrainState::default(),
            halt: AtomicBool::new(false),
            links: MuxLinks::default(),
            migrations: MigrationTable::default(),
            live_tokens: Mutex::new(std::collections::HashSet::new()),
            draining: AtomicBool::new(false),
        });
        let mut daemon = RcudaDaemon::start(
            addr,
            Arc::clone(&pool),
            Arc::clone(&shared),
            shards,
            self.drain_deadline,
        )?;
        if let Some(broker) = self.broker {
            let advertise = self
                .advertise
                .unwrap_or_else(|| daemon.local_addr().to_string());
            daemon.agent = Some(BrokerAgent::start(
                BrokerAgentConfig {
                    broker,
                    advertise,
                    interval: self.broker_interval.unwrap_or(DEFAULT_BROKER_HEARTBEAT),
                    token: shared.config.auth_token.clone(),
                },
                shared,
                pool,
            ));
        }
        Ok(daemon)
    }
}

/// Default shard count: the host's available parallelism, clamped to 1..=8
/// (more shards than that buys nothing for a daemon that is usually
/// GPU-bound, and each shard is a standing thread).
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_bind_and_serve() {
        let mut daemon = DaemonBuilder::new().bind("127.0.0.1:0").unwrap();
        assert!(daemon.shard_count() >= 1 && daemon.shard_count() <= 8);
        daemon.shutdown();
    }

    #[test]
    fn shard_count_is_clamped_to_at_least_one() {
        let mut daemon = DaemonBuilder::new().shards(0).bind("127.0.0.1:0").unwrap();
        assert_eq!(daemon.shard_count(), 1);
        daemon.shutdown();
    }

    #[test]
    fn field_setters_layer_over_config() {
        let base = ServerConfig {
            busy_retry_after_ms: 99,
            ..Default::default()
        };
        let builder = DaemonBuilder::new()
            .config(base)
            .max_sessions(5)
            .session_mem_quota(1024);
        assert_eq!(builder.config.busy_retry_after_ms, 99);
        assert_eq!(builder.config.max_sessions, Some(5));
        assert_eq!(builder.config.session_mem_quota, Some(1024));
    }
}
