//! Multi-GPU scheduling — the paper's declared future work ("Scheduling of
//! multiple GPUs being simultaneously accessed by several applications also
//! needs to be addressed", §VII).
//!
//! A [`GpuPool`] owns several devices and assigns each incoming session to
//! one of them under a pluggable policy. Assignment returns a guard whose
//! lifetime tracks the session, so load accounting is automatic.

use parking_lot::Mutex;
use rcuda_gpu::GpuDevice;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Session-placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolPolicy {
    /// Cycle through devices in order — fair when sessions are uniform.
    RoundRobin,
    /// Pick the device with the fewest active sessions — better when
    /// session lifetimes are skewed.
    LeastLoaded,
}

/// A pool of GPUs serving one daemon.
pub struct GpuPool {
    devices: Vec<Arc<GpuDevice>>,
    loads: Vec<Arc<AtomicUsize>>,
    policy: PoolPolicy,
    next_rr: Mutex<usize>,
}

impl GpuPool {
    /// Build a pool. Panics if empty — a GPU service needs a GPU.
    pub fn new(devices: Vec<Arc<GpuDevice>>, policy: PoolPolicy) -> Self {
        assert!(!devices.is_empty(), "a pool needs at least one device");
        let loads = devices
            .iter()
            .map(|_| Arc::new(AtomicUsize::new(0)))
            .collect();
        GpuPool {
            devices,
            loads,
            policy,
            next_rr: Mutex::new(0),
        }
    }

    /// A homogeneous pool of `n` functional C1060s.
    pub fn uniform_c1060(n: usize, policy: PoolPolicy) -> Self {
        GpuPool::new(
            (0..n)
                .map(|_| GpuDevice::tesla_c1060_functional())
                .collect(),
            policy,
        )
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The pool's devices, in index order.
    pub fn devices(&self) -> &[Arc<GpuDevice>] {
        &self.devices
    }

    /// Active sessions per device.
    pub fn loads(&self) -> Vec<usize> {
        self.loads
            .iter()
            .map(|l| l.load(Ordering::SeqCst))
            .collect()
    }

    /// Assign a session to a device. The returned guard holds the load
    /// count until dropped (i.e. for the session's lifetime).
    pub fn assign(&self) -> (Arc<GpuDevice>, PoolGuard) {
        let idx = match self.policy {
            PoolPolicy::RoundRobin => {
                let mut next = self.next_rr.lock();
                let idx = *next;
                *next = (*next + 1) % self.devices.len();
                idx
            }
            PoolPolicy::LeastLoaded => self
                .loads
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.load(Ordering::SeqCst))
                .map(|(i, _)| i)
                .unwrap(),
        };
        self.loads[idx].fetch_add(1, Ordering::SeqCst);
        (
            Arc::clone(&self.devices[idx]),
            PoolGuard {
                load: Arc::clone(&self.loads[idx]),
                device_index: idx,
            },
        )
    }
}

/// Holds one session's slot on a pool device; releases on drop.
pub struct PoolGuard {
    load: Arc<AtomicUsize>,
    device_index: usize,
}

impl PoolGuard {
    /// Which device the session landed on.
    pub fn device_index(&self) -> usize {
        self.device_index
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        self.load.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_through_devices() {
        let pool = GpuPool::uniform_c1060(3, PoolPolicy::RoundRobin);
        let picks: Vec<usize> = (0..6).map(|_| pool.assign().1.device_index()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_balances_skewed_lifetimes() {
        let pool = GpuPool::uniform_c1060(2, PoolPolicy::LeastLoaded);
        // A long-lived session pins device 0...
        let (_, long_lived) = pool.assign();
        assert_eq!(long_lived.device_index(), 0);
        // ...so the next two short sessions land on 1, then (after the
        // first ends) the balance is restored.
        let (_, s1) = pool.assign();
        assert_eq!(s1.device_index(), 1);
        drop(s1);
        let (_, s2) = pool.assign();
        assert_eq!(s2.device_index(), 1, "0 still busy, 1 is free again");
        assert_eq!(pool.loads(), vec![1, 1]);
        drop(s2);
        drop(long_lived);
        assert_eq!(pool.loads(), vec![0, 0]);
    }

    #[test]
    fn guards_release_on_drop() {
        let pool = GpuPool::uniform_c1060(1, PoolPolicy::RoundRobin);
        {
            let (_, _g1) = pool.assign();
            let (_, _g2) = pool.assign();
            assert_eq!(pool.loads(), vec![2]);
        }
        assert_eq!(pool.loads(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_pool_rejected() {
        GpuPool::new(vec![], PoolPolicy::RoundRobin);
    }

    #[test]
    fn concurrent_assignment_is_consistent() {
        let pool = Arc::new(GpuPool::uniform_c1060(4, PoolPolicy::LeastLoaded));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let (_, g) = pool.assign();
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    g.device_index()
                })
            })
            .collect();
        let picks: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All devices get used under concurrent load.
        for d in 0..4 {
            assert!(picks.contains(&d), "device {d} never used");
        }
        assert_eq!(pool.loads(), vec![0, 0, 0, 0], "all released");
    }
}
