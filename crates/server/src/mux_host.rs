//! Server-side multiplexed-trunk hosting.
//!
//! Two entry points share one handshake:
//!
//! * **Reactor path** — a connection whose first message is a
//!   [`MuxHello`] is pulled out of its shard ([`spawn_reactor_trunk`]):
//!   a dedicated host thread completes the blocking challenge-response
//!   handshake, splits the transport, and stands up a [`MuxPeer`] whose
//!   accepted sub-streams are admitted — each against the daemon's
//!   admission caps, each with its own GPU context and pool seat — and
//!   submitted back to the reactor as ordinary nonblocking connections.
//!   The trunk itself holds **no** session slot: its accounting was
//!   balanced when it upgraded.
//! * **Blocking path** — [`serve_mux_trunk`] hosts a trunk on the calling
//!   thread over any in-process transport (channel, simulated network),
//!   spawning one blocking worker per accepted stream. The facade's
//!   `Endpoint::Channel`/`Endpoint::Simulated` mux sessions use this.
//!
//! The handshake (see `rcuda_proto::mux`): the client's hello carries a
//! nonce and option flags; the server answers with its own nonce and the
//! negotiated cipher; the client proves possession of the shared token
//! with `HMAC-SHA256(token, label ‖ nonces)`; the server compares in
//! constant time and accepts (code 0) or rejects (`rcudaErrorAuthFailed`).
//! With no token configured both ends MAC under the empty key, so open
//! daemons still complete the same handshake.

use parking_lot::Mutex;
use rcuda_core::{CudaError, SharedClock};
use rcuda_gpu::GpuDevice;
use rcuda_proto::handshake::ServerHello;
use rcuda_proto::ids::FunctionId;
use rcuda_proto::mux::{
    write_mux_accept, MuxAuth, MuxChallenge, MuxHello, FLAG_CIPHER, MUX_VERSION,
};
use rcuda_proto::secure::{auth_proof, ct_eq, derive_key, random_nonce, CipherSuiteKind};
use rcuda_proto::BufferPool;
use rcuda_transport::{MuxConfig, MuxPeer, MuxStream, ReadHalf, Transport};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::daemon::admit;
use crate::pool::GpuPool;
use crate::reactor::{NewConn, Reactor, Shared};
use crate::registry::SessionRegistry;
use crate::worker::{serve_connection_with_registry, ServerConfig, SessionReport};

/// How often a parked trunk host re-checks its exit conditions (trunk
/// death, daemon halt).
const TRUNK_POLL: Duration = Duration::from_millis(5);

/// Late-bound links from [`Shared`] back to the reactor and GPU pool, so a
/// trunk's stream-acceptance callback can admit sub-streams. Installed by
/// the daemon right after the reactor starts; `Weak` breaks the
/// `Reactor → Shared → Reactor` cycle.
#[derive(Default)]
pub(crate) struct MuxLinks {
    inner: Mutex<Option<(Weak<Reactor>, Arc<GpuPool>)>>,
}

impl MuxLinks {
    pub(crate) fn install(&self, reactor: &Arc<Reactor>, pool: &Arc<GpuPool>) {
        *self.inner.lock() = Some((Arc::downgrade(reactor), Arc::clone(pool)));
    }

    fn get(&self) -> Option<(Arc<Reactor>, Arc<GpuPool>)> {
        let guard = self.inner.lock();
        let (reactor, pool) = guard.as_ref()?;
        Some((reactor.upgrade()?, Arc::clone(pool)))
    }
}

/// What a successful handshake negotiated.
struct TrunkKeys {
    cipher: CipherSuiteKind,
    key: [u8; 32],
}

/// Complete the server half of the secure upgrade handshake on a blocking
/// byte stream. `Ok(None)` means the client was cleanly rejected (bad
/// token or version) and the trunk must be closed.
fn mux_handshake<T: Read + Write>(
    t: &mut T,
    hello: &MuxHello,
    config: &ServerConfig,
) -> io::Result<Option<TrunkKeys>> {
    let cipher = if hello.wants_cipher() {
        config.cipher
    } else {
        CipherSuiteKind::None
    };
    let flags = if cipher == CipherSuiteKind::None {
        0
    } else {
        FLAG_CIPHER
    };
    let server_nonce = random_nonce();
    MuxChallenge {
        flags,
        cipher: cipher.as_u32(),
        server_nonce,
    }
    .write(t)?;
    t.flush()?;

    let auth = MuxAuth::read(t)?;
    let token: &[u8] = config.auth_token.as_deref().unwrap_or(&[]);
    let expected = auth_proof(token, &hello.client_nonce, &server_nonce);
    if hello.version != MUX_VERSION || !ct_eq(&expected, &auth.mac) {
        write_mux_accept(t, CudaError::AuthFailed.code())?;
        t.flush()?;
        return Ok(None);
    }
    write_mux_accept(t, 0)?;
    t.flush()?;
    Ok(Some(TrunkKeys {
        cipher,
        key: derive_key(token, &hello.client_nonce, &server_nonce),
    }))
}

/// A transport with a prefix of already-read bytes replayed ahead of it:
/// whatever the reactor's decoder read past the client's hello must be
/// seen by the handshake (and later the demultiplexer) in order.
struct Prefixed {
    pre: io::Cursor<Vec<u8>>,
    inner: Box<dyn Transport>,
}

impl Prefixed {
    fn remainder(&self) -> Vec<u8> {
        let pos = self.pre.position() as usize;
        self.pre.get_ref()[pos..].to_vec()
    }
}

impl Read for Prefixed {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.pre.read(buf)?;
        if n > 0 {
            return Ok(n);
        }
        self.inner.read(buf)
    }
}

impl Write for Prefixed {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Hand an upgrading reactor connection to a dedicated trunk-host thread.
/// `pending_out` is whatever the shard had queued but not yet flushed
/// (normally nothing — the client reads the hello push before upgrading);
/// `leftover` is any read-ahead past the client's `MuxHello`.
pub(crate) fn spawn_reactor_trunk(
    transport: Box<dyn Transport>,
    raw: Option<TcpStream>,
    hello: MuxHello,
    leftover: Vec<u8>,
    pending_out: Vec<u8>,
    shared: Arc<Shared>,
) {
    let _ = std::thread::Builder::new()
        .name("rcuda-mux-host".into())
        .spawn(move || {
            let _ = host_reactor_trunk(transport, raw, hello, leftover, pending_out, shared);
        });
}

fn host_reactor_trunk(
    mut transport: Box<dyn Transport>,
    raw: Option<TcpStream>,
    hello: MuxHello,
    leftover: Vec<u8>,
    pending_out: Vec<u8>,
    shared: Arc<Shared>,
) -> io::Result<()> {
    // The handshake is a strict request/response exchange: run it blocking.
    transport.set_nonblocking(false)?;
    if !pending_out.is_empty() {
        transport.write_all(&pending_out)?;
        transport.flush()?;
    }
    let mut pre = Prefixed {
        pre: io::Cursor::new(leftover),
        inner: transport,
    };
    let Some(keys) = mux_handshake(&mut pre, &hello, &shared.config)? else {
        return Ok(());
    };
    let rest = pre.remainder();
    let (read, write) = pre.inner.into_split()?;
    let read: ReadHalf = if rest.is_empty() {
        read
    } else {
        Box::new(io::Cursor::new(rest).chain(read))
    };

    let config = MuxConfig {
        cipher: keys.cipher,
        key: keys.key,
        pool: BufferPool::new(),
        obs: shared.config.observer.clone(),
    };
    let stream_shared = Arc::clone(&shared);
    let mut peer = MuxPeer::server(read, write, config, move |stream| {
        accept_reactor_stream(stream, &stream_shared);
    });
    if let Some(raw) = raw {
        // Unblocks the demux thread's blocking read at daemon teardown.
        peer.set_shutdown(move || {
            let _ = raw.shutdown(Shutdown::Both);
        });
    }
    // Park holding the peer (dropping it would GOAWAY the trunk) until the
    // client leaves or the daemon halts.
    while !peer.is_dead() && !shared.halt.load(Ordering::SeqCst) {
        std::thread::sleep(TRUNK_POLL);
    }
    Ok(())
}

/// Admission for one accepted sub-stream: exactly the fresh-TCP path —
/// counted against the same caps, shed with the same `Busy` frame — except
/// the connection is already authenticated by its trunk.
fn accept_reactor_stream(mut stream: MuxStream, shared: &Arc<Shared>) {
    if !admit(shared) {
        let busy = ServerHello::Busy {
            retry_after_ms: shared.config.busy_retry_after_ms,
        };
        let _ = stream.write_all(&busy.to_wire());
        let _ = stream.flush();
        return;
    }
    match shared.links.get() {
        Some((reactor, pool)) => {
            let (device, guard) = pool.assign();
            reactor.submit(NewConn {
                transport: Box::new(stream),
                raw: None,
                device,
                guard,
                authenticated: true,
            });
        }
        None => {
            // Daemon mid-teardown: balance the admission as an
            // immediately-finished session.
            let c = &shared.counters;
            c.served.fetch_add(1, Ordering::SeqCst);
            c.live.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Host a multiplexed trunk on the calling thread over any blocking
/// transport, serving each accepted sub-stream with a dedicated blocking
/// worker ([`serve_connection_with_registry`]); all streams of the trunk
/// share one park/resume registry. Returns once the client closes the
/// trunk, with every stream's session report (in stream-acceptance order).
///
/// The trunk-level exchange: the 8-byte compute-capability push, the
/// client's `MuxHello` (anything else is a protocol error — callers choose
/// this path only for mux clients), then the secure handshake. A rejected
/// handshake returns an empty report list.
pub fn serve_mux_trunk<T: Transport + 'static>(
    transport: T,
    device: Arc<GpuDevice>,
    clock: SharedClock,
    config: ServerConfig,
) -> io::Result<Vec<SessionReport>> {
    let mut transport: Box<dyn Transport> = Box::new(transport);
    transport.write_all(&device.properties().compute_capability_wire())?;
    transport.flush()?;

    let mut selector = [0u8; 4];
    transport.read_exact(&mut selector)?;
    if u32::from_le_bytes(selector) != FunctionId::MuxHello.as_u32() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected a mux upgrade hello on a trunk-serving connection",
        ));
    }
    let hello = MuxHello::read_body(&mut transport)?;
    let Some(keys) = mux_handshake(&mut transport, &hello, &config)? else {
        return Ok(Vec::new());
    };
    let (read, write) = transport.into_split()?;

    // Per-stream workers authenticate by construction (the trunk already
    // did); clearing the token keeps the worker-level gate from rejecting
    // their plain session hellos.
    let stream_config = ServerConfig {
        auth_token: None,
        ..config.clone()
    };
    let registry = Arc::new(SessionRegistry::new());
    type Workers = Arc<Mutex<Vec<JoinHandle<io::Result<SessionReport>>>>>;
    let workers: Workers = Arc::new(Mutex::new(Vec::new()));
    let spawned = Arc::clone(&workers);

    let mux_config = MuxConfig {
        cipher: keys.cipher,
        key: keys.key,
        pool: BufferPool::new(),
        obs: config.observer.clone(),
    };
    let peer = MuxPeer::server(read, write, mux_config, move |stream| {
        let device = Arc::clone(&device);
        let clock = clock.clone();
        let config = stream_config.clone();
        let registry = Arc::clone(&registry);
        let handle = std::thread::Builder::new()
            .name("rcuda-mux-stream".into())
            .spawn(move || {
                serve_connection_with_registry(stream, &device, clock, &config, &registry)
            })
            .expect("spawn mux stream worker");
        spawned.lock().push(handle);
    });

    while !peer.is_dead() {
        std::thread::sleep(TRUNK_POLL);
    }
    drop(peer);

    let handles = std::mem::take(&mut *workers.lock());
    Ok(handles
        .into_iter()
        .filter_map(|h| h.join().ok().and_then(|r| r.ok()))
        .collect())
}
