//! Request → context dispatch.
//!
//! Pure request handling: given a decoded [`Request`] and the connection's
//! [`GpuContext`], produce the [`Response`] to send back. All CUDA errors
//! are *returned to the client* as result codes, never surfaced as server
//! faults — a misbehaving application must not take the daemon down.

use rcuda_core::{CudaError, DevicePtr};
use rcuda_gpu::GpuContext;
use rcuda_proto::ids::MemcpyKind;
use rcuda_proto::payload::MAX_POOLED_BYTES;
use rcuda_proto::{Batch, BatchResponse, BufferPool, Payload, Request, Response};

/// Handle one request against the connection's context.
///
/// Returns `None` for [`Request::Quit`] (the finalization stage: no reply
/// beyond the acknowledgement is needed, the worker closes the session).
///
/// Convenience form of [`dispatch_pooled`] with no buffer pool: D2H replies
/// are staged in freshly allocated `Vec`s.
pub fn dispatch(ctx: &mut GpuContext, req: &Request) -> Option<Response> {
    dispatch_pooled(ctx, req, None)
}

/// Stage a D2H reply: through the pool (context writes straight into a
/// recycled buffer) when one is available and the size is poolable,
/// otherwise through a fresh `Vec`.
fn stage_d2h(
    ctx: &mut GpuContext,
    src: u32,
    size: u32,
    stream: Option<u32>,
    pool: Option<&BufferPool>,
) -> rcuda_core::CudaResult<Payload> {
    match pool {
        Some(pool) if size as usize <= MAX_POOLED_BYTES => {
            let mut buf = pool.get(size as usize);
            match stream {
                Some(stream) => ctx.memcpy_d2h_async_into(DevicePtr::new(src), &mut buf, stream)?,
                None => ctx.memcpy_d2h_into(DevicePtr::new(src), &mut buf)?,
            }
            Ok(Payload::Pooled(buf))
        }
        _ => match stream {
            Some(stream) => ctx
                .memcpy_d2h_async(DevicePtr::new(src), size, stream)
                .map(Payload::Owned),
            None => ctx
                .memcpy_d2h(DevicePtr::new(src), size)
                .map(Payload::Owned),
        },
    }
}

/// Handle one request against the connection's context, staging D2H reply
/// payloads in `pool` when one is provided (the worker's steady-state path:
/// device bytes land in a recycled buffer, the encoder writes it to the
/// wire, and the buffer returns to the pool when the response is dropped).
pub fn dispatch_pooled(
    ctx: &mut GpuContext,
    req: &Request,
    pool: Option<&BufferPool>,
) -> Option<Response> {
    Some(match req {
        Request::Init { module } => Response::Ack(ctx.load_module(module)),
        Request::Malloc { size } => Response::Malloc(ctx.malloc(*size)),
        Request::Free { ptr } => Response::Ack(ctx.free(*ptr)),
        Request::Memcpy {
            dst,
            src,
            size,
            kind,
            data,
        } => match kind {
            MemcpyKind::HostToDevice => match data {
                Some(payload) => Response::Ack(ctx.memcpy_h2d(DevicePtr::new(*dst), payload)),
                None => Response::Ack(Err(CudaError::InvalidValue)),
            },
            MemcpyKind::DeviceToHost => {
                Response::MemcpyToHost(stage_d2h(ctx, *src, *size, None, pool))
            }
            MemcpyKind::DeviceToDevice => {
                Response::Ack(ctx.memcpy_d2d(DevicePtr::new(*dst), DevicePtr::new(*src), *size))
            }
            // Host-to-host through a GPU service is nonsensical; reject.
            MemcpyKind::HostToHost => Response::Ack(Err(CudaError::InvalidMemcpyDirection)),
        },
        Request::Launch { config, region } => {
            // `kernel_name_str` borrows the name out of the wire region:
            // launch dispatch allocates nothing.
            let result = Request::kernel_name_str(region, config).and_then(|name| {
                let params = Request::kernel_params(region, config)?;
                ctx.launch(
                    name.trim_end_matches('\0'),
                    config.grid,
                    config.block,
                    params,
                    config.stream,
                )
            });
            Response::Ack(result)
        }
        Request::ThreadSynchronize => Response::Ack(ctx.synchronize()),
        Request::DeviceProps => {
            let blob = serde_json::to_vec(ctx.properties());
            Response::DeviceProps(blob.map_err(|_| CudaError::Unknown))
        }
        Request::StreamCreate => Response::StreamCreate(ctx.stream_create()),
        Request::StreamSynchronize { stream } => Response::Ack(ctx.stream_synchronize(*stream)),
        Request::StreamDestroy { stream } => Response::Ack(ctx.stream_destroy(*stream)),
        Request::MemcpyAsync {
            dst,
            src,
            size,
            kind,
            stream,
            data,
        } => match kind {
            MemcpyKind::HostToDevice => match data {
                Some(payload) => {
                    Response::Ack(ctx.memcpy_h2d_async(DevicePtr::new(*dst), payload, *stream))
                }
                None => Response::Ack(Err(CudaError::InvalidValue)),
            },
            MemcpyKind::DeviceToHost => {
                Response::MemcpyToHost(stage_d2h(ctx, *src, *size, Some(*stream), pool))
            }
            _ => Response::Ack(Err(CudaError::InvalidMemcpyDirection)),
        },
        Request::Memset { dst, value, size } => {
            Response::Ack(ctx.memset(DevicePtr::new(*dst), *value as u8, *size))
        }
        Request::EventCreate => Response::EventCreate(ctx.event_create()),
        Request::EventRecord { event, stream } => Response::Ack(ctx.event_record(*event, *stream)),
        Request::EventSynchronize { event } => Response::Ack(ctx.event_synchronize(*event)),
        Request::EventElapsed { start, end } => {
            Response::EventElapsed(ctx.event_elapsed_ms(*start, *end))
        }
        Request::EventDestroy { event } => Response::Ack(ctx.event_destroy(*event)),
        Request::Quit => return None,
    })
}

/// Handle a batched frame: execute every packed request in submission order
/// on the connection's context, collecting one response per request.
///
/// Individual errors do not stop the batch — each element's result code is
/// recorded and execution continues, exactly as if the calls had been issued
/// one at a time. A `Quit` inside a batch is honored gracefully: it is
/// acknowledged, the returned flag tells the worker to end the session after
/// sending the combined reply, and any elements after it are answered with
/// `InvalidValue` without being executed (the session is already over).
pub fn dispatch_batch(ctx: &mut GpuContext, batch: &Batch) -> (BatchResponse, bool) {
    dispatch_batch_pooled(ctx, batch, None)
}

/// [`dispatch_batch`] with pooled D2H staging (see [`dispatch_pooled`]).
pub fn dispatch_batch_pooled(
    ctx: &mut GpuContext,
    batch: &Batch,
    pool: Option<&BufferPool>,
) -> (BatchResponse, bool) {
    let mut responses = Vec::with_capacity(batch.len());
    let mut quit = false;
    for req in batch.requests() {
        if quit {
            responses.push(Response::Ack(Err(CudaError::InvalidValue)));
            continue;
        }
        match dispatch_pooled(ctx, req, pool) {
            Some(resp) => responses.push(resp),
            None => {
                responses.push(Response::Ack(Ok(())));
                quit = true;
            }
        }
    }
    (BatchResponse { responses }, quit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::time::wall_clock;
    use rcuda_core::ArgPack;
    use rcuda_gpu::module::build_module;
    use rcuda_gpu::GpuDevice;
    use rcuda_proto::LaunchConfig;

    fn ctx() -> GpuContext {
        GpuDevice::tesla_c1060_functional().create_context(wall_clock(), true)
    }

    fn init(ctx: &mut GpuContext) {
        let resp = dispatch(
            ctx,
            &Request::Init {
                module: build_module(&["vec_add", "fill"], 0),
            },
        )
        .unwrap();
        assert_eq!(resp, Response::Ack(Ok(())));
    }

    #[test]
    fn malloc_free_round_trip() {
        let mut c = ctx();
        init(&mut c);
        let resp = dispatch(&mut c, &Request::Malloc { size: 1024 }).unwrap();
        let ptr = match resp {
            Response::Malloc(Ok(p)) => p,
            other => panic!("{other:?}"),
        };
        let resp = dispatch(&mut c, &Request::Free { ptr }).unwrap();
        assert_eq!(resp, Response::Ack(Ok(())));
        let resp = dispatch(&mut c, &Request::Free { ptr }).unwrap();
        assert_eq!(
            resp,
            Response::Ack(Err(CudaError::InvalidDevicePointer)),
            "double free is an error code, not a crash"
        );
    }

    #[test]
    fn memcpy_both_directions() {
        let mut c = ctx();
        init(&mut c);
        let ptr = match dispatch(&mut c, &Request::Malloc { size: 8 }).unwrap() {
            Response::Malloc(Ok(p)) => p,
            other => panic!("{other:?}"),
        };
        let resp = dispatch(
            &mut c,
            &Request::Memcpy {
                dst: ptr.addr(),
                src: 0,
                size: 8,
                kind: MemcpyKind::HostToDevice,
                data: Some(vec![1, 2, 3, 4, 5, 6, 7, 8].into()),
            },
        )
        .unwrap();
        assert_eq!(resp, Response::Ack(Ok(())));
        let resp = dispatch(
            &mut c,
            &Request::Memcpy {
                dst: 0,
                src: ptr.addr(),
                size: 8,
                kind: MemcpyKind::DeviceToHost,
                data: None,
            },
        )
        .unwrap();
        assert_eq!(
            resp,
            Response::MemcpyToHost(Ok(vec![1, 2, 3, 4, 5, 6, 7, 8].into()))
        );
    }

    /// D2H through `dispatch_pooled` stages the reply in a pooled buffer
    /// (byte-identical to the owned path) and recycles it across requests.
    #[test]
    fn pooled_d2h_stages_through_the_pool_and_recycles() {
        let mut c = ctx();
        init(&mut c);
        let pool = BufferPool::new();
        let ptr = match dispatch(&mut c, &Request::Malloc { size: 8 }).unwrap() {
            Response::Malloc(Ok(p)) => p,
            other => panic!("{other:?}"),
        };
        let h2d = Request::Memcpy {
            dst: ptr.addr(),
            src: 0,
            size: 8,
            kind: MemcpyKind::HostToDevice,
            data: Some(vec![9, 8, 7, 6, 5, 4, 3, 2].into()),
        };
        assert_eq!(
            dispatch_pooled(&mut c, &h2d, Some(&pool)).unwrap(),
            Response::Ack(Ok(()))
        );
        let d2h = Request::Memcpy {
            dst: 0,
            src: ptr.addr(),
            size: 8,
            kind: MemcpyKind::DeviceToHost,
            data: None,
        };
        for round in 0u64..3 {
            let resp = dispatch_pooled(&mut c, &d2h, Some(&pool)).unwrap();
            match resp {
                Response::MemcpyToHost(Ok(p)) => {
                    assert!(matches!(p, Payload::Pooled(_)), "staged through the pool");
                    assert_eq!(p.as_slice(), &[9, 8, 7, 6, 5, 4, 3, 2]);
                }
                other => panic!("{other:?}"),
            }
            // The response (and its pooled buffer) dropped: rounds after
            // the first are served from the recycled buffer.
            let stats = pool.stats();
            assert_eq!(stats.misses, 1, "round {round}: one cold allocation");
            assert_eq!(stats.hits, round, "round {round}");
        }
    }

    #[test]
    fn h2d_without_payload_is_invalid() {
        let mut c = ctx();
        init(&mut c);
        let resp = dispatch(
            &mut c,
            &Request::Memcpy {
                dst: 0x1000,
                src: 0,
                size: 8,
                kind: MemcpyKind::HostToDevice,
                data: None,
            },
        )
        .unwrap();
        assert_eq!(resp, Response::Ack(Err(CudaError::InvalidValue)));
    }

    #[test]
    fn launch_via_wire_form() {
        let mut c = ctx();
        init(&mut c);
        let ptr = match dispatch(&mut c, &Request::Malloc { size: 16 }).unwrap() {
            Response::Malloc(Ok(p)) => p,
            other => panic!("{other:?}"),
        };
        let args = ArgPack::new()
            .push_ptr(ptr)
            .push_u32(4)
            .push_f32(2.5)
            .into_bytes();
        let req = Request::launch("fill", &args, LaunchConfig::simple(1, 4));
        assert_eq!(dispatch(&mut c, &req).unwrap(), Response::Ack(Ok(())));
        let resp = dispatch(
            &mut c,
            &Request::Memcpy {
                dst: 0,
                src: ptr.addr(),
                size: 16,
                kind: MemcpyKind::DeviceToHost,
                data: None,
            },
        )
        .unwrap();
        let bytes = match resp {
            Response::MemcpyToHost(Ok(b)) => b,
            other => panic!("{other:?}"),
        };
        let vals: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![2.5; 4]);
    }

    #[test]
    fn unknown_kernel_is_an_error_code() {
        let mut c = ctx();
        init(&mut c);
        let req = Request::launch("not_a_kernel", &[], LaunchConfig::simple(1, 1));
        assert_eq!(
            dispatch(&mut c, &req).unwrap(),
            Response::Ack(Err(CudaError::InvalidDeviceFunction))
        );
    }

    #[test]
    fn device_props_serialize() {
        let mut c = ctx();
        init(&mut c);
        let resp = dispatch(&mut c, &Request::DeviceProps).unwrap();
        let blob = match resp {
            Response::DeviceProps(Ok(b)) => b,
            other => panic!("{other:?}"),
        };
        let props: rcuda_core::DeviceProperties = serde_json::from_slice(&blob).unwrap();
        assert_eq!(props.name, "Tesla C1060");
    }

    #[test]
    fn streams_via_dispatch() {
        let mut c = ctx();
        init(&mut c);
        let s = match dispatch(&mut c, &Request::StreamCreate).unwrap() {
            Response::StreamCreate(Ok(s)) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            dispatch(&mut c, &Request::StreamSynchronize { stream: s }).unwrap(),
            Response::Ack(Ok(()))
        );
        assert_eq!(
            dispatch(&mut c, &Request::StreamDestroy { stream: s }).unwrap(),
            Response::Ack(Ok(()))
        );
        assert_eq!(
            dispatch(&mut c, &Request::StreamSynchronize { stream: s }).unwrap(),
            Response::Ack(Err(CudaError::InvalidResourceHandle))
        );
    }

    #[test]
    fn quit_ends_the_session() {
        let mut c = ctx();
        assert!(dispatch(&mut c, &Request::Quit).is_none());
    }
}
