//! Per-connection session worker.
//!
//! One worker serves one remote execution over one fresh GPU context
//! (§III). The session follows Fig. 2 exactly:
//!
//! 1. push the device's 8-byte compute capability (the first half of
//!    Table I's 12 receive bytes for Initialization);
//! 2. read the module-upload request, load it, acknowledge;
//! 3. loop: read request → dispatch → respond, until Quit or disconnect.

use rcuda_core::{CudaError, SharedClock, SimTime};
use rcuda_gpu::{GpuContext, GpuDevice};
use rcuda_obs::{DaemonEvent, ObsHandle, Op, PoolStats, ServerSpan};
use rcuda_proto::codec::{fold_caps, CodecHello, CAP_ALL, CAP_LZ4};
use rcuda_proto::handshake::write_hello_reply;
use rcuda_proto::ids::{FunctionId, MemcpyKind};
use rcuda_proto::secure::CipherSuiteKind;
use rcuda_proto::wire::get_u32;
use rcuda_proto::{
    Batch, BatchResponse, BufferPool, Codec, Frame, Request, Response, SessionHello,
};
use rcuda_transport::Transport;
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::dispatch::{dispatch_batch_pooled, dispatch_pooled};
use crate::registry::SessionRegistry;

/// How long a reconnecting client's worker waits for the dead worker to
/// park the session before rejecting the resume. Covers the window between
/// the new connection being accepted and the old worker observing EOF.
pub(crate) const RESUME_WAIT: Duration = Duration::from_secs(1);

/// A test-only dispatch hook, fired with every post-handshake request just
/// before it is dispatched (inside the worker's panic guard). The chaos
/// soak harness arms it to make chosen sessions panic mid-request;
/// production configs leave it disarmed, where firing is a `None` check.
#[derive(Clone, Default)]
pub struct ChaosHook(Option<ChaosFn>);

/// The armed form of a [`ChaosHook`].
type ChaosFn = Arc<dyn Fn(&Request) + Send + Sync>;

impl ChaosHook {
    /// The disarmed hook (never fires).
    pub const fn none() -> Self {
        ChaosHook(None)
    }

    /// Arm the hook. `f` runs on the worker thread holding the session's
    /// context; if it panics, the worker kills that one session (mapped to
    /// `cudaErrorLaunchFailure` on the wire) and the daemon survives.
    pub fn new(f: impl Fn(&Request) + Send + Sync + 'static) -> Self {
        ChaosHook(Some(Arc::new(f)))
    }

    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    #[inline]
    pub(crate) fn fire(&self, req: &Request) {
        if let Some(f) = &self.0 {
            f(req);
        }
    }
}

impl fmt::Debug for ChaosHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_armed() {
            "ChaosHook(armed)"
        } else {
            "ChaosHook(none)"
        })
    }
}

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Keep the CUDA context warm before the client arrives (the rCUDA
    /// behavior, §VI-B). Disable to ablate the pre-initialization benefit.
    pub preinitialize_context: bool,
    /// Use phantom device memory (timing-only sessions at paper scale).
    pub phantom_memory: bool,
    /// Server-side observer: every dispatched request reports a
    /// [`ServerSpan`] (service time + in-frame queue wait), and the daemon
    /// reports admission/reclamation [`DaemonEvent`]s. Disarmed by default
    /// — the request loop then takes no timestamps at all.
    pub observer: ObsHandle,
    /// Admission cap on concurrently live sessions: connections beyond it
    /// are shed at the handshake with a `Busy` frame. `None` = unlimited
    /// (the pre-hardening behavior).
    pub max_sessions: Option<usize>,
    /// Admission cap on parked-registry occupancy, doubling as the
    /// registry's capacity. Connections arriving while this many sessions
    /// sit parked are shed — a load-shedding heuristic that keeps an
    /// unbounded stream of crash-and-park clients from churning the
    /// registry. `None` = registry default capacity, no admission check.
    pub max_parked: Option<usize>,
    /// Per-session cap on live device bytes (rounded allocator
    /// accounting). Over-quota mallocs fail with
    /// `cudaErrorMemoryAllocation`; the session keeps running. `None` =
    /// uncapped.
    pub session_mem_quota: Option<u64>,
    /// The retry hint carried in `Busy` rejection frames, in milliseconds.
    pub busy_retry_after_ms: u32,
    /// Required auth token: when set, only mux trunks proving possession of
    /// this token (HMAC challenge-response, see [`rcuda_proto::secure`]) are
    /// served; legacy single-stream hellos are rejected with
    /// `rcudaErrorAuthFailed`. `None` = open daemon (the token defaults to
    /// empty on both ends, so unauthenticated mux trunks still verify).
    pub auth_token: Option<Vec<u8>>,
    /// Cipher suite offered to mux clients that request payload encryption
    /// at the hello. [`CipherSuiteKind::None`] disables encryption even for
    /// requesting clients (the server clears the flag in its challenge).
    pub cipher: CipherSuiteKind,
    /// Advertise the adaptive wire codec (LZ4 payload compression) in the
    /// compute-capability push. On by default: the capability bits ride the
    /// high half of the minor word, which legacy clients never inspect, so
    /// advertising costs nothing and only opted-in clients switch framing.
    pub codec: bool,
    /// Test-only per-request hook (see [`ChaosHook`]). Disarmed by default.
    pub chaos: ChaosHook,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            preinitialize_context: true,
            phantom_memory: false,
            observer: ObsHandle::none(),
            max_sessions: None,
            max_parked: None,
            session_mem_quota: None,
            busy_retry_after_ms: 25,
            auth_token: None,
            cipher: CipherSuiteKind::ChaCha20,
            codec: true,
            chaos: ChaosHook::none(),
        }
    }
}

/// What a session did, for logging and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionReport {
    /// Requests served (excluding the module upload).
    pub requests: u64,
    /// Whether the client ended the session with an orderly Quit.
    pub orderly_shutdown: bool,
    /// Device allocations still live at session end (leaks if nonzero —
    /// the daemon releases them with the context either way).
    pub leaked_allocations: usize,
    /// This connection resumed a previously parked session.
    pub resumed: bool,
    /// The session's context was parked for resume when the connection
    /// dropped (its live allocations are preserved, not leaked).
    pub parked: bool,
    /// A dispatch panicked: the session was killed (never parked) and its
    /// resources reclaimed; the client saw `cudaErrorLaunchFailure`.
    pub panicked: bool,
    /// Device bytes returned to the device ledger when this worker released
    /// contexts (its own at exit, plus any session it evicted by parking).
    pub reclaimed_bytes: u64,
    /// The connection's payload-buffer pool at session end: how often H2D
    /// request bodies and D2H reply stagings were served from recycled
    /// buffers rather than fresh allocations.
    pub pool: PoolStats,
}

/// Serve one connection to completion.
///
/// Transport errors after the handshake are treated as a client disconnect
/// (the report notes the unorderly end); errors during the handshake are
/// returned. Sessions using the resumable handshake get a private registry,
/// so a dropped connection parks the context with nobody to reclaim it —
/// use [`serve_connection_with_registry`] to let reconnects find it.
pub fn serve_connection<T: Transport>(
    transport: T,
    device: &Arc<GpuDevice>,
    clock: SharedClock,
    config: &ServerConfig,
) -> io::Result<SessionReport> {
    serve_connection_with_registry(transport, device, clock, config, &SessionRegistry::new())
}

/// Serve one connection, parking and resuming sessions via `registry`.
///
/// The first post-connect message selects the session form (see
/// [`rcuda_proto::handshake`]): the paper's positional init starts an
/// ordinary session; a `Hello` starts a resumable one whose context is
/// parked in `registry` if the connection dies without a Quit; a
/// `Reconnect` takes a parked context back out and resumes serving it, or
/// is cleanly rejected with `cudaErrorInitializationError` when the token
/// is unknown.
pub fn serve_connection_with_registry<T: Transport>(
    mut transport: T,
    device: &Arc<GpuDevice>,
    clock: SharedClock,
    config: &ServerConfig,
    registry: &SessionRegistry,
) -> io::Result<SessionReport> {
    let obs = config.observer.clone();
    // One payload pool per connection: H2D request bodies are decoded into
    // it and D2H replies staged from it, so the steady-state request loop
    // recycles the same buffers instead of allocating per call.
    let pool = BufferPool::new();
    // The worker keeps its own clock handle: the context takes ownership of
    // `clock` (it charges simulated GPU time to it), and the span timestamps
    // must come from that same clock so client and server spans line up.
    let clk = clock.clone();
    // The context is created at accept time — before the client says
    // anything — reproducing the warm-context behavior of §VI-B.
    let fresh_ctx = if config.phantom_memory {
        device.create_phantom_context(clock, config.preinitialize_context)
    } else {
        device.create_context(clock, config.preinitialize_context)
    };

    // Phase 1a: announce the device (8-byte compute capability). A
    // codec-advertising daemon folds its capability bits into the high half
    // of the minor word — legacy clients read the full word as the minor
    // digit but never inspect it beyond display, while codec-aware clients
    // mask it off (see `rcuda_proto::codec`).
    let mut cc = device.properties().compute_capability_wire();
    if config.codec {
        let minor = u32::from_le_bytes(cc[4..8].try_into().expect("8-byte wire"));
        cc[4..8].copy_from_slice(&fold_caps(minor, CAP_ALL).to_le_bytes());
    }
    transport.write_all(&cc)?;
    transport.flush()?;

    let mut report = SessionReport::default();

    // Phase 1b: session handshake. A codec-opting client precedes its
    // session hello with the one-way `CodecHello`; peel it off and switch
    // the connection's framing before parsing the hello proper.
    let mut first = get_u32(&mut transport)?;
    let mut codec: Option<Codec> = None;
    if first == FunctionId::Codec.as_u32() {
        let accept = CodecHello::read_body(&mut transport)?;
        if accept.caps & CAP_LZ4 != 0 {
            codec = Some(Codec::new(pool.clone()));
        }
        first = get_u32(&mut transport)?;
    }
    let hello = SessionHello::read_after(first, &mut transport)?;

    // An auth-gated server only serves sessions that arrived through an
    // authenticated mux trunk (which clears `auth_token` for its per-stream
    // configs). A legacy single-stream hello cannot carry the token, so it
    // is rejected before any context work — the same 4-byte error code
    // every hello form knows how to read.
    if config.auth_token.is_some() {
        drop(fresh_ctx);
        write_hello_reply(&mut transport, &Err(CudaError::AuthFailed))?;
        transport.flush()?;
        return Ok(report);
    }

    let (mut ctx, session_token) = match hello {
        SessionHello::Fresh { module } => {
            let mut ctx = fresh_ctx;
            let resp = dispatch_observed(&mut ctx, &Request::Init { module }, None, &clk, &obs)
                .expect("init never quits");
            resp.write(&mut transport)?;
            transport.flush()?;
            (ctx, None)
        }
        SessionHello::Resumable { session, module } => {
            let mut ctx = fresh_ctx;
            let resp = dispatch_observed(&mut ctx, &Request::Init { module }, None, &clk, &obs)
                .expect("init never quits");
            resp.write(&mut transport)?;
            transport.flush()?;
            (ctx, Some(session))
        }
        SessionHello::Reconnect { session } => {
            // The pre-created context is discarded: the parked one carries
            // the session's state.
            drop(fresh_ctx);
            match registry.take_deadline(session, RESUME_WAIT) {
                Some(ctx) => {
                    write_hello_reply(&mut transport, &Ok(()))?;
                    transport.flush()?;
                    report.resumed = true;
                    (ctx, Some(session))
                }
                None => {
                    // Nothing parked under that token: reject and end the
                    // connection cleanly.
                    write_hello_reply(&mut transport, &Err(CudaError::InitializationError))?;
                    transport.flush()?;
                    return Ok(report);
                }
            }
        }
        SessionHello::Migrate { session, snapshot } => {
            // A peer daemon ships a quiesced session: rebuild its context
            // from the snapshot and park it for the client's reconnect.
            // Errors go back as the hello reply (the shipper keeps its
            // copy on failure) and the connection ends either way.
            drop(fresh_ctx);
            let reply = rcuda_gpu::snapshot::ContextSnapshot::decode(&snapshot)
                .map_err(|_| CudaError::InvalidValue)
                .and_then(|snap| device.restore_context(clk.clone(), &snap))
                .map(|mut ctx| {
                    ctx.set_mem_quota(config.session_mem_quota);
                    if let Some((evicted, evicted_ctx)) = registry.park(session, ctx) {
                        obs.emit_daemon(DaemonEvent::SessionEvicted { session: evicted });
                        report.reclaimed_bytes += release_context(evicted_ctx, &obs);
                    }
                });
            write_hello_reply(&mut transport, &reply)?;
            transport.flush()?;
            return Ok(report);
        }
    };

    // Multi-tenant limits apply to resumed sessions too: the quota follows
    // the config serving the connection, not the context's history.
    ctx.set_mem_quota(config.session_mem_quota);

    // Phase 2: read until the client quits or vanishes (a read error is a
    // client disconnect, not a server fault). Both framings are accepted:
    // the paper's one-call-per-message protocol and the batched extension.
    // Dispatch runs inside a panic guard: a panicking request (a dispatch
    // bug, or the chaos hook) kills this one session — answered with a
    // correctly-shaped `cudaErrorLaunchFailure` so the client never
    // desyncs — and the daemon lives on.
    while let Ok(frame) = Frame::read_codec(&mut transport, Some(&pool), codec.as_ref()) {
        match frame {
            Frame::Single(req) => {
                report.requests += 1;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    config.chaos.fire(&req);
                    dispatch_observed(&mut ctx, &req, Some(&pool), &clk, &obs)
                }));
                match outcome {
                    Ok(Some(resp)) => {
                        if resp.write_codec(&mut transport, codec.as_ref()).is_err()
                            || transport.flush().is_err()
                        {
                            break;
                        }
                    }
                    Ok(None) => {
                        // Finalization stage: acknowledge the Quit, then
                        // release everything ("the daemon server quits
                        // servicing the current execution and releases the
                        // associated resources", §III).
                        let _ = Response::Ack(Ok(())).write(&mut transport);
                        let _ = transport.flush();
                        report.orderly_shutdown = true;
                        break;
                    }
                    Err(_) => {
                        let _ = panic_response(&req).write(&mut transport);
                        let _ = transport.flush();
                        obs.emit_daemon(DaemonEvent::SessionPanicked);
                        report.panicked = true;
                        break;
                    }
                }
            }
            Frame::Batch(batch) => {
                report.requests += batch.len() as u64;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if obs.is_enabled() || config.chaos.is_armed() {
                        dispatch_batch_observed(
                            &mut ctx,
                            &batch,
                            Some(&pool),
                            &clk,
                            &obs,
                            &config.chaos,
                        )
                    } else {
                        dispatch_batch_pooled(&mut ctx, &batch, Some(&pool))
                    }
                }));
                let (resp, quit) = match outcome {
                    Ok(pair) => pair,
                    Err(_) => {
                        // Answer every element so the frame stays shaped,
                        // then kill the session.
                        let responses = batch.requests().iter().map(panic_response).collect();
                        let _ = BatchResponse { responses }.write(&mut transport);
                        let _ = transport.flush();
                        obs.emit_daemon(DaemonEvent::SessionPanicked);
                        report.panicked = true;
                        break;
                    }
                };
                if resp.write_codec(&mut transport, codec.as_ref()).is_err()
                    || transport.flush().is_err()
                {
                    break;
                }
                if quit {
                    report.orderly_shutdown = true;
                    break;
                }
            }
        }
    }

    match session_token {
        Some(session) if !report.orderly_shutdown && !report.panicked => {
            // Unorderly end of a resumable session: keep the context alive
            // for the client's reconnect instead of releasing it. A session
            // evicted to make room is reclaimed here, through the same path
            // as a worker exit.
            if let Some((evicted, evicted_ctx)) = registry.park(session, ctx) {
                obs.emit_daemon(DaemonEvent::SessionEvicted { session: evicted });
                report.reclaimed_bytes += release_context(evicted_ctx, &obs);
            }
            report.parked = true;
        }
        _ => {
            report.leaked_allocations = ctx.live_allocations();
            report.reclaimed_bytes += release_context(ctx, &obs);
        }
    }
    report.pool = pool.stats();
    Ok(report)
}

/// Release a session's context, returning the device bytes it gave back.
/// Dropping the context returns its allocations to the device ledger; the
/// observer hears about any nonzero reclamation. Worker exit, registry
/// eviction, and daemon drain all release through here.
pub(crate) fn release_context(ctx: GpuContext, obs: &ObsHandle) -> u64 {
    let bytes = ctx.used_bytes();
    drop(ctx);
    if bytes > 0 {
        obs.emit_daemon(DaemonEvent::BytesReclaimed { bytes });
    }
    bytes
}

/// The correctly-shaped error answer for a request whose dispatch
/// panicked: every `Err` response serializes as the bare 4-byte code, so
/// matching the request's response *kind* keeps the client's decoder in
/// sync while it learns the session is dead.
pub(crate) fn panic_response(req: &Request) -> Response {
    let err = CudaError::LaunchFailure;
    match req {
        Request::Malloc { .. } => Response::Malloc(Err(err)),
        Request::Memcpy {
            kind: MemcpyKind::DeviceToHost,
            ..
        }
        | Request::MemcpyAsync {
            kind: MemcpyKind::DeviceToHost,
            ..
        } => Response::MemcpyToHost(Err(err)),
        Request::DeviceProps => Response::DeviceProps(Err(err)),
        Request::StreamCreate => Response::StreamCreate(Err(err)),
        Request::EventCreate => Response::EventCreate(Err(err)),
        Request::EventElapsed { .. } => Response::EventElapsed(Err(err)),
        _ => Response::Ack(Err(err)),
    }
}

/// Dispatch one request, reporting its service time as a [`ServerSpan`].
/// With no observer installed this is exactly [`dispatch`]: no timestamps
/// are taken.
pub(crate) fn dispatch_observed(
    ctx: &mut GpuContext,
    req: &Request,
    pool: Option<&BufferPool>,
    clk: &SharedClock,
    obs: &ObsHandle,
) -> Option<Response> {
    if !obs.is_enabled() {
        return dispatch_pooled(ctx, req, pool);
    }
    let start = clk.now();
    let resp = dispatch_pooled(ctx, req, pool);
    obs.emit_server(&ServerSpan {
        op: Op::Named(req.op_name()),
        queue_wait: SimTime::ZERO,
        start,
        end: clk.now(),
    });
    resp
}

/// [`crate::dispatch::dispatch_batch`] with per-element [`ServerSpan`]s:
/// each element's queue wait is the time it spent behind earlier elements
/// of the same frame (measured from frame arrival to dispatch start).
/// Also the batch path for an armed [`ChaosHook`] (fired per element).
pub(crate) fn dispatch_batch_observed(
    ctx: &mut GpuContext,
    batch: &Batch,
    pool: Option<&BufferPool>,
    clk: &SharedClock,
    obs: &ObsHandle,
    chaos: &ChaosHook,
) -> (BatchResponse, bool) {
    let frame_at = clk.now();
    let mut responses = Vec::with_capacity(batch.len());
    let mut quit = false;
    for req in batch.requests() {
        if quit {
            // Matches `dispatch_batch`: elements after a Quit are answered
            // without executing, so they get no span either.
            responses.push(Response::Ack(Err(CudaError::InvalidValue)));
            continue;
        }
        chaos.fire(req);
        let start = clk.now();
        let resp = dispatch_pooled(ctx, req, pool);
        obs.emit_server(&ServerSpan {
            op: Op::Named(req.op_name()),
            queue_wait: start.saturating_sub(frame_at),
            start,
            end: clk.now(),
        });
        match resp {
            Some(resp) => responses.push(resp),
            None => {
                responses.push(Response::Ack(Ok(())));
                quit = true;
            }
        }
    }
    (BatchResponse { responses }, quit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::time::{virtual_clock, wall_clock};
    use rcuda_core::Clock as _;
    use rcuda_gpu::module::build_module;
    use rcuda_proto::ids::MemcpyKind;
    use rcuda_transport::channel_pair;
    use std::io::{Read, Write};
    use std::thread;

    /// Drive the worker with raw protocol messages over an in-process pipe.
    #[test]
    fn full_session_over_channel() {
        let (mut client, server_side) = channel_pair();
        let device = GpuDevice::tesla_c1060_functional();
        let clock = wall_clock();
        let cfg = ServerConfig::default();
        let worker =
            thread::spawn(move || serve_connection(server_side, &device, clock, &cfg).unwrap());

        // Handshake: compute capability arrives first, with the daemon's
        // codec capability bits folded into the high half of the minor word.
        let mut cc = [0u8; 8];
        client.read_exact(&mut cc).unwrap();
        let (major, minor_word) = rcuda_core::DeviceProperties::compute_capability_from_wire(cc);
        assert_eq!(major, 1);
        assert_eq!(
            rcuda_proto::codec::split_minor_word(minor_word),
            (3, CAP_ALL)
        );
        // Ship a module.
        Request::Init {
            module: build_module(&["fill"], 0),
        }
        .write(&mut client)
        .unwrap();
        client.flush().unwrap();
        let init_req = Request::Init { module: vec![] };
        assert_eq!(
            Response::read(&mut client, &init_req).unwrap(),
            Response::Ack(Ok(()))
        );
        // Malloc.
        let malloc = Request::Malloc { size: 16 };
        malloc.write(&mut client).unwrap();
        client.flush().unwrap();
        let ptr = Response::read(&mut client, &malloc)
            .unwrap()
            .into_malloc()
            .unwrap();
        // Free + Quit.
        let free = Request::Free { ptr };
        free.write(&mut client).unwrap();
        client.flush().unwrap();
        Response::read(&mut client, &free)
            .unwrap()
            .into_ack()
            .unwrap();
        Request::Quit.write(&mut client).unwrap();
        client.flush().unwrap();
        Response::read(&mut client, &Request::Quit)
            .unwrap()
            .into_ack()
            .unwrap();

        let report = worker.join().unwrap();
        assert!(report.orderly_shutdown);
        assert_eq!(report.requests, 3); // malloc, free, quit
        assert_eq!(report.leaked_allocations, 0);
    }

    /// A batched frame executes in order on the worker's context and yields
    /// one combined response, and the session keeps working afterwards.
    #[test]
    fn batched_session_over_channel() {
        use rcuda_core::ArgPack;
        use rcuda_proto::{Batch, BatchResponse, LaunchConfig};

        let (mut client, server_side) = channel_pair();
        let device = GpuDevice::tesla_c1060_functional();
        let clock = wall_clock();
        let cfg = ServerConfig::default();
        let worker =
            thread::spawn(move || serve_connection(server_side, &device, clock, &cfg).unwrap());

        let mut cc = [0u8; 8];
        client.read_exact(&mut cc).unwrap();
        Request::Init {
            module: build_module(&["fill"], 0),
        }
        .write(&mut client)
        .unwrap();
        client.flush().unwrap();
        let init_req = Request::Init { module: vec![] };
        Response::read(&mut client, &init_req).unwrap();

        // Malloc is result-bearing, so it goes alone.
        let malloc = Request::Malloc { size: 16 };
        malloc.write(&mut client).unwrap();
        client.flush().unwrap();
        let ptr = Response::read(&mut client, &malloc)
            .unwrap()
            .into_malloc()
            .unwrap();

        // fill + synchronize + readback + free, all in one frame: the D2H
        // copy rides as a result-bearing element inside the batch.
        let args = ArgPack::new()
            .push_ptr(ptr)
            .push_u32(4)
            .push_f32(3.0)
            .into_bytes();
        let batch = Batch::new(vec![
            Request::launch("fill", &args, LaunchConfig::simple(1, 4)),
            Request::ThreadSynchronize,
            Request::Memcpy {
                dst: 0,
                src: ptr.addr(),
                size: 16,
                kind: MemcpyKind::DeviceToHost,
                data: None,
            },
            Request::Free { ptr },
        ])
        .unwrap();
        batch.write(&mut client).unwrap();
        client.flush().unwrap();
        let resp = BatchResponse::read(&mut client, &batch).unwrap();
        assert_eq!(resp.responses.len(), 4);
        assert_eq!(resp.responses[0], Response::Ack(Ok(())));
        assert_eq!(resp.responses[1], Response::Ack(Ok(())));
        let bytes = match &resp.responses[2] {
            Response::MemcpyToHost(Ok(b)) => b.clone(),
            other => panic!("{other:?}"),
        };
        let vals: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![3.0; 4]);
        assert_eq!(resp.responses[3], Response::Ack(Ok(())));

        // The session is still alive for ordinary single requests.
        Request::Quit.write(&mut client).unwrap();
        client.flush().unwrap();
        Response::read(&mut client, &Request::Quit)
            .unwrap()
            .into_ack()
            .unwrap();

        let report = worker.join().unwrap();
        assert!(report.orderly_shutdown);
        assert_eq!(report.requests, 6); // malloc + 4 batched + quit
        assert_eq!(report.leaked_allocations, 0);
    }

    /// A Quit packed inside a batch still ends the session gracefully.
    #[test]
    fn quit_inside_batch_is_orderly() {
        use rcuda_proto::{Batch, BatchResponse};

        let (mut client, server_side) = channel_pair();
        let device = GpuDevice::tesla_c1060_functional();
        let clock = wall_clock();
        let cfg = ServerConfig::default();
        let worker =
            thread::spawn(move || serve_connection(server_side, &device, clock, &cfg).unwrap());
        let mut cc = [0u8; 8];
        client.read_exact(&mut cc).unwrap();
        Request::Init {
            module: build_module(&[], 0),
        }
        .write(&mut client)
        .unwrap();
        client.flush().unwrap();
        let init_req = Request::Init { module: vec![] };
        Response::read(&mut client, &init_req).unwrap();

        let batch = Batch::new(vec![Request::ThreadSynchronize, Request::Quit]).unwrap();
        batch.write(&mut client).unwrap();
        client.flush().unwrap();
        let resp = BatchResponse::read(&mut client, &batch).unwrap();
        assert_eq!(resp.responses[1], Response::Ack(Ok(())));

        let report = worker.join().unwrap();
        assert!(report.orderly_shutdown);
    }

    #[test]
    fn client_disconnect_mid_session_is_survived() {
        let (mut client, server_side) = channel_pair();
        let device = GpuDevice::tesla_c1060_functional();
        let clock = wall_clock();
        let cfg = ServerConfig::default();
        let worker =
            thread::spawn(move || serve_connection(server_side, &device, clock, &cfg).unwrap());
        let mut cc = [0u8; 8];
        client.read_exact(&mut cc).unwrap();
        Request::Init {
            module: build_module(&[], 0),
        }
        .write(&mut client)
        .unwrap();
        client.flush().unwrap();
        let init_req = Request::Init { module: vec![] };
        Response::read(&mut client, &init_req).unwrap();
        // Leak an allocation, then vanish without Quit.
        let malloc = Request::Malloc { size: 1024 };
        malloc.write(&mut client).unwrap();
        client.flush().unwrap();
        Response::read(&mut client, &malloc).unwrap();
        drop(client);
        let report = worker.join().unwrap();
        assert!(!report.orderly_shutdown);
        assert_eq!(
            report.leaked_allocations, 1,
            "leak is visible in the report"
        );
    }

    #[test]
    fn preinit_config_controls_context_charge() {
        for (preinit, expect_charge) in [(true, false), (false, true)] {
            let (mut client, server_side) = channel_pair();
            let device = GpuDevice::tesla_c1060(); // charging cost model
            let clock = virtual_clock();
            let cfg = ServerConfig {
                preinitialize_context: preinit,
                phantom_memory: true,
                ..Default::default()
            };
            let clock2 = clock.clone();
            let worker = thread::spawn(move || {
                serve_connection(server_side, &device, clock2, &cfg).unwrap()
            });
            let mut cc = [0u8; 8];
            client.read_exact(&mut cc).unwrap();
            Request::Quit.write(&mut client).unwrap();
            // No module upload: the worker is waiting for Init; send an
            // empty module instead to keep the protocol aligned.
            drop(client);
            let _ = worker.join();
            let charged = clock.now().as_secs_f64() > 0.1;
            assert_eq!(charged, expect_charge, "preinit={preinit}");
        }
    }

    /// A resumable session that vanishes parks its context; a reconnect
    /// resumes it with all state (allocations, module) intact.
    #[test]
    fn parked_session_resumes_with_state_intact() {
        use rcuda_proto::handshake::read_hello_reply;
        use std::sync::Arc;

        let registry = Arc::new(SessionRegistry::new());
        let device = GpuDevice::tesla_c1060_functional();
        let cfg = ServerConfig::default();

        // Connection 1: resumable hello, malloc + write data, then vanish.
        let (mut client, server_side) = channel_pair();
        let (reg2, dev2, cfg2) = (Arc::clone(&registry), Arc::clone(&device), cfg.clone());
        let worker1 = thread::spawn(move || {
            serve_connection_with_registry(server_side, &dev2, wall_clock(), &cfg2, &reg2).unwrap()
        });
        let mut cc = [0u8; 8];
        client.read_exact(&mut cc).unwrap();
        SessionHello::Resumable {
            session: 0xDEAD_0001,
            module: build_module(&[], 0),
        }
        .write(&mut client)
        .unwrap();
        client.flush().unwrap();
        assert_eq!(read_hello_reply(&mut client).unwrap(), Ok(()));

        let malloc = Request::Malloc { size: 8 };
        malloc.write(&mut client).unwrap();
        client.flush().unwrap();
        let ptr = Response::read(&mut client, &malloc)
            .unwrap()
            .into_malloc()
            .unwrap();
        let h2d = Request::Memcpy {
            dst: ptr.addr(),
            src: 0,
            size: 8,
            kind: MemcpyKind::HostToDevice,
            data: Some(vec![1, 2, 3, 4, 5, 6, 7, 8].into()),
        };
        h2d.write(&mut client).unwrap();
        client.flush().unwrap();
        Response::read(&mut client, &h2d).unwrap();
        drop(client); // connection dies without Quit

        let report1 = worker1.join().unwrap();
        assert!(report1.parked && !report1.orderly_shutdown);
        assert_eq!(report1.leaked_allocations, 0, "parked, not leaked");
        assert_eq!(registry.parked_count(), 1);

        // Connection 2: reconnect with the token, read the data back.
        let (mut client, server_side) = channel_pair();
        let (reg2, dev2, cfg2) = (Arc::clone(&registry), Arc::clone(&device), cfg.clone());
        let worker2 = thread::spawn(move || {
            serve_connection_with_registry(server_side, &dev2, wall_clock(), &cfg2, &reg2).unwrap()
        });
        client.read_exact(&mut cc).unwrap();
        SessionHello::Reconnect {
            session: 0xDEAD_0001,
        }
        .write(&mut client)
        .unwrap();
        client.flush().unwrap();
        assert_eq!(read_hello_reply(&mut client).unwrap(), Ok(()), "resumed");

        let d2h = Request::Memcpy {
            dst: 0,
            src: ptr.addr(),
            size: 8,
            kind: MemcpyKind::DeviceToHost,
            data: None,
        };
        d2h.write(&mut client).unwrap();
        client.flush().unwrap();
        let bytes = Response::read(&mut client, &d2h)
            .unwrap()
            .into_memcpy_to_host()
            .unwrap();
        assert_eq!(bytes, vec![1, 2, 3, 4, 5, 6, 7, 8], "state survived");

        Request::Quit.write(&mut client).unwrap();
        client.flush().unwrap();
        Response::read(&mut client, &Request::Quit).unwrap();
        let report2 = worker2.join().unwrap();
        assert!(report2.resumed && report2.orderly_shutdown);
        assert_eq!(registry.parked_count(), 0);
    }

    /// Reconnecting with an unknown token is rejected cleanly, not hung.
    #[test]
    fn unknown_reconnect_token_is_rejected() {
        use rcuda_core::CudaError;
        use rcuda_proto::handshake::read_hello_reply;

        let registry = SessionRegistry::new();
        let (mut client, server_side) = channel_pair();
        let device = GpuDevice::tesla_c1060_functional();
        let cfg = ServerConfig::default();
        let report = thread::scope(|s| {
            let h = s.spawn(|| {
                serve_connection_with_registry(server_side, &device, wall_clock(), &cfg, &registry)
                    .unwrap()
            });
            let mut cc = [0u8; 8];
            client.read_exact(&mut cc).unwrap();
            SessionHello::Reconnect { session: 12345 }
                .write(&mut client)
                .unwrap();
            client.flush().unwrap();
            assert_eq!(
                read_hello_reply(&mut client).unwrap(),
                Err(CudaError::InitializationError)
            );
            h.join().unwrap()
        });
        assert!(!report.resumed && !report.orderly_shutdown);
        assert_eq!(report.requests, 0);
    }

    /// An orderly Quit on a resumable session releases — never parks.
    #[test]
    fn orderly_quit_does_not_park() {
        use rcuda_proto::handshake::read_hello_reply;

        let registry = SessionRegistry::new();
        let (mut client, server_side) = channel_pair();
        let device = GpuDevice::tesla_c1060_functional();
        let cfg = ServerConfig::default();
        let report = thread::scope(|s| {
            let h = s.spawn(|| {
                serve_connection_with_registry(server_side, &device, wall_clock(), &cfg, &registry)
                    .unwrap()
            });
            let mut cc = [0u8; 8];
            client.read_exact(&mut cc).unwrap();
            SessionHello::Resumable {
                session: 77,
                module: build_module(&[], 0),
            }
            .write(&mut client)
            .unwrap();
            client.flush().unwrap();
            read_hello_reply(&mut client).unwrap().unwrap();
            Request::Quit.write(&mut client).unwrap();
            client.flush().unwrap();
            Response::read(&mut client, &Request::Quit).unwrap();
            h.join().unwrap()
        });
        assert!(report.orderly_shutdown && !report.parked);
        assert_eq!(registry.parked_count(), 0);
    }

    /// A dispatch panic (chaos hook) kills the session with a shaped
    /// `LaunchFailure` answer — never a hang or a protocol desync — and is
    /// never parked, even for resumable sessions.
    #[test]
    fn panicking_dispatch_answers_launch_failure_and_never_parks() {
        use rcuda_proto::handshake::read_hello_reply;

        let registry = SessionRegistry::new();
        let (mut client, server_side) = channel_pair();
        let device = GpuDevice::tesla_c1060_functional();
        let cfg = ServerConfig {
            chaos: ChaosHook::new(|req| {
                if matches!(req, Request::ThreadSynchronize) {
                    panic!("chaos: injected dispatch panic");
                }
            }),
            ..Default::default()
        };
        let report = thread::scope(|s| {
            let h = s.spawn(|| {
                serve_connection_with_registry(server_side, &device, wall_clock(), &cfg, &registry)
                    .unwrap()
            });
            let mut cc = [0u8; 8];
            client.read_exact(&mut cc).unwrap();
            SessionHello::Resumable {
                session: 0xC4A0_5001,
                module: build_module(&[], 0),
            }
            .write(&mut client)
            .unwrap();
            client.flush().unwrap();
            read_hello_reply(&mut client).unwrap().unwrap();

            // A benign request first: the hook only fires on Synchronize.
            let malloc = Request::Malloc { size: 64 };
            malloc.write(&mut client).unwrap();
            client.flush().unwrap();
            Response::read(&mut client, &malloc)
                .unwrap()
                .into_malloc()
                .unwrap();

            // The poisoned request: shaped error back, then EOF.
            Request::ThreadSynchronize.write(&mut client).unwrap();
            client.flush().unwrap();
            let resp = Response::read(&mut client, &Request::ThreadSynchronize).unwrap();
            assert_eq!(resp, Response::Ack(Err(CudaError::LaunchFailure)));
            h.join().unwrap()
        });
        assert!(report.panicked);
        assert!(!report.parked, "a panicked session is never parked");
        assert_eq!(registry.parked_count(), 0);
        assert!(report.reclaimed_bytes > 0, "the leaked malloc came back");
    }

    /// The per-session quota maps to `cudaErrorMemoryAllocation` at malloc
    /// dispatch; freeing makes room again and the session keeps working.
    #[test]
    fn session_quota_enforced_at_malloc_dispatch() {
        let (mut client, server_side) = channel_pair();
        let device = GpuDevice::tesla_c1060_functional();
        let cfg = ServerConfig {
            session_mem_quota: Some(1024),
            ..Default::default()
        };
        let worker = thread::spawn(move || {
            serve_connection(server_side, &device, wall_clock(), &cfg).unwrap()
        });
        let mut cc = [0u8; 8];
        client.read_exact(&mut cc).unwrap();
        Request::Init {
            module: build_module(&[], 0),
        }
        .write(&mut client)
        .unwrap();
        client.flush().unwrap();
        Response::read(&mut client, &Request::Init { module: vec![] }).unwrap();

        let within = Request::Malloc { size: 1024 };
        within.write(&mut client).unwrap();
        client.flush().unwrap();
        let ptr = Response::read(&mut client, &within)
            .unwrap()
            .into_malloc()
            .unwrap();

        let over = Request::Malloc { size: 256 };
        over.write(&mut client).unwrap();
        client.flush().unwrap();
        assert_eq!(
            Response::read(&mut client, &over).unwrap(),
            Response::Malloc(Err(CudaError::MemoryAllocation))
        );

        // Free, and the same malloc succeeds: the quota is on live bytes.
        let free = Request::Free { ptr };
        free.write(&mut client).unwrap();
        client.flush().unwrap();
        Response::read(&mut client, &free).unwrap();
        over.write(&mut client).unwrap();
        client.flush().unwrap();
        Response::read(&mut client, &over)
            .unwrap()
            .into_malloc()
            .unwrap();

        Request::Quit.write(&mut client).unwrap();
        client.flush().unwrap();
        Response::read(&mut client, &Request::Quit).unwrap();
        let report = worker.join().unwrap();
        assert!(report.orderly_shutdown);
    }

    #[test]
    fn bad_requests_yield_error_codes_not_session_death() {
        let (mut client, server_side) = channel_pair();
        let device = GpuDevice::tesla_c1060_functional();
        let clock = wall_clock();
        let cfg = ServerConfig::default();
        let worker =
            thread::spawn(move || serve_connection(server_side, &device, clock, &cfg).unwrap());
        let mut cc = [0u8; 8];
        client.read_exact(&mut cc).unwrap();
        Request::Init {
            module: build_module(&[], 0),
        }
        .write(&mut client)
        .unwrap();
        client.flush().unwrap();
        let init_req = Request::Init { module: vec![] };
        Response::read(&mut client, &init_req).unwrap();

        // Free a garbage pointer -> error code, session continues.
        let bad_free = Request::Free {
            ptr: rcuda_core::DevicePtr::new(0xBEEF),
        };
        bad_free.write(&mut client).unwrap();
        client.flush().unwrap();
        let resp = Response::read(&mut client, &bad_free).unwrap();
        assert!(resp.into_ack().is_err());

        // D2H from garbage -> error code, still alive.
        let bad_cpy = Request::Memcpy {
            dst: 0,
            src: 0xBEEF,
            size: 4,
            kind: MemcpyKind::DeviceToHost,
            data: None,
        };
        bad_cpy.write(&mut client).unwrap();
        client.flush().unwrap();
        let resp = Response::read(&mut client, &bad_cpy).unwrap();
        assert!(resp.into_memcpy_to_host().is_err());

        // Orderly quit still possible.
        Request::Quit.write(&mut client).unwrap();
        client.flush().unwrap();
        Response::read(&mut client, &Request::Quit)
            .unwrap()
            .into_ack()
            .unwrap();
        let report = worker.join().unwrap();
        assert!(report.orderly_shutdown);
        assert_eq!(report.requests, 3);
    }
}
