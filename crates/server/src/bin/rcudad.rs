//! `rcudad` — the rCUDA daemon as a standalone binary.
//!
//! ```text
//! rcudad [--listen ADDR] [--gpus N] [--policy round-robin|least-loaded]
//!        [--shards N] [--cold-context] [--once N]
//!        [--max-sessions N] [--max-parked N] [--quota BYTES]
//! ```
//!
//! * `--listen` — bind address (default `127.0.0.1:8308`; use port 0 for an
//!   ephemeral port, printed at startup).
//! * `--gpus` — size of the simulated GPU pool (default 1).
//! * `--shards` — reactor shard threads serving all connections (default:
//!   host parallelism, clamped to 1..=8).
//! * `--policy` — session placement across the pool (default round-robin).
//! * `--cold-context` — do NOT pre-initialize contexts (ablation of the
//!   warm-daemon behavior, §VI-B).
//! * `--once N` — exit after serving N sessions (handy for scripts and
//!   tests; default: run until killed). Exit is a graceful drain: parked
//!   sessions are reclaimed and the admission/reclamation counters are
//!   printed.
//! * `--max-sessions N` — admission cap on live sessions; over-cap
//!   connections are shed with a `Busy` frame (default: unlimited).
//! * `--max-parked N` — cap on sessions parked awaiting reconnect
//!   (default: registry default capacity, no admission check).
//! * `--quota BYTES` — per-session device-memory quota (default: none).
//! * `--broker ADDR` — register with a cluster broker (`rcuda-brokerd`)
//!   and heartbeat it; the broker then places client sessions here and
//!   may order sessions migrated out (default: standalone).
//! * `--advertise ADDR` — the address the broker hands to clients
//!   (default: the bound listen address; set this when daemons sit
//!   behind NAT or bind `0.0.0.0`).

use rcuda_gpu::GpuDevice;
use rcuda_server::{GpuPool, PoolPolicy, RcudaDaemon, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn usage(msg: &str) -> ! {
    eprintln!("rcudad: {msg}");
    eprintln!(
        "usage: rcudad [--listen ADDR] [--gpus N] \
         [--policy round-robin|least-loaded] [--shards N] [--cold-context] \
         [--once N] [--max-sessions N] [--max-parked N] [--quota BYTES] \
         [--broker ADDR] [--advertise ADDR]"
    );
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:8308".to_string();
    let mut gpus = 1usize;
    let mut shards: Option<usize> = None;
    let mut policy = PoolPolicy::RoundRobin;
    let mut preinit = true;
    let mut once: Option<u64> = None;
    let mut max_sessions: Option<usize> = None;
    let mut max_parked: Option<usize> = None;
    let mut quota: Option<u64> = None;
    let mut broker: Option<std::net::SocketAddr> = None;
    let mut advertise: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                listen = args
                    .next()
                    .unwrap_or_else(|| usage("--listen needs an address"));
            }
            "--gpus" => {
                gpus = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--gpus needs a positive integer"));
            }
            "--shards" => {
                shards = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage("--shards needs a positive integer")),
                );
            }
            "--policy" => match args.next().as_deref() {
                Some("round-robin") => policy = PoolPolicy::RoundRobin,
                Some("least-loaded") => policy = PoolPolicy::LeastLoaded,
                _ => usage("--policy is round-robin or least-loaded"),
            },
            "--cold-context" => preinit = false,
            "--once" => {
                once = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--once needs a count")),
                );
            }
            "--max-sessions" => {
                max_sessions = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage("--max-sessions needs a positive integer")),
                );
            }
            "--max-parked" => {
                max_parked = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage("--max-parked needs a positive integer")),
                );
            }
            "--quota" => {
                quota = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage("--quota needs a positive byte count")),
                );
            }
            "--broker" => {
                broker = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--broker needs a socket address")),
                );
            }
            "--advertise" => {
                advertise = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--advertise needs an address")),
                );
            }
            "--help" | "-h" => usage("help"),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let pool = Arc::new(GpuPool::new(
        (0..gpus)
            .map(|_| GpuDevice::tesla_c1060_functional())
            .collect(),
        policy,
    ));
    let config = ServerConfig {
        preinitialize_context: preinit,
        phantom_memory: false,
        max_sessions,
        max_parked,
        session_mem_quota: quota,
        ..Default::default()
    };
    let mut builder = RcudaDaemon::builder()
        .pool(Arc::clone(&pool))
        .config(config);
    if let Some(n) = shards {
        builder = builder.shards(n);
    }
    if let Some(addr) = broker {
        builder = builder.broker(addr);
    }
    if let Some(addr) = advertise {
        builder = builder.advertise(addr);
    }
    let mut daemon = match builder.bind(&listen) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("rcudad: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "rcudad: serving {} simulated Tesla C1060 GPU(s) on {} ({:?} placement, {} contexts, {} shard(s))",
        gpus,
        daemon.local_addr(),
        policy,
        if preinit { "warm" } else { "cold" },
        daemon.shard_count(),
    );

    match once {
        Some(n) => {
            if !daemon.wait_for_sessions(n, Duration::from_secs(3600)) {
                eprintln!("rcudad: timed out waiting for {n} sessions");
            }
            daemon.drain(Duration::from_secs(5));
            let h = daemon.health();
            println!(
                "rcudad: served {} session(s), exiting (--once): \
                 {} attempted, {} rejected, {} panics, {} B reclaimed",
                daemon.sessions_served(),
                h.attempted,
                h.rejected,
                h.panics,
                h.reclaimed_bytes,
            );
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}
