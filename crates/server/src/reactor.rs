//! The sharded reactor: a fixed pool of readiness-loop workers
//! multiplexing every connection the daemon serves.
//!
//! The thread-per-connection daemon reproduced the original middleware's
//! process-per-execution model faithfully, but its thread count scaled with
//! the session count — at thousands of concurrent remote executions the
//! stacks alone dominate memory and the scheduler thrashes. The reactor
//! keeps the per-session *semantics* (admission, quotas, panic isolation,
//! park/resume, drain) while fixing the thread count:
//!
//! * **N shards** (`DaemonBuilder::shards`), each one OS thread named
//!   `rcuda-shard-<i>` running a readiness loop over its share of the
//!   connections. Connections are handed to shards round-robin at admission
//!   through a per-shard injector queue and never migrate.
//! * **Nonblocking transports** — each connection's transport is switched
//!   with [`Transport::set_nonblocking`]; all I/O goes through
//!   [`Transport::try_read`] / [`Transport::try_write`], so a stalled peer
//!   parks its connection, never its shard.
//! * **Incremental decode** — bytes accumulate in a per-connection
//!   [`StreamDecoder`]; a partial frame simply stays buffered until more
//!   bytes arrive. Frames are only materialized when complete, through the
//!   same pooled parser as the blocking worker.
//! * **Per-shard resources** — one [`BufferPool`] per shard (recycled
//!   across its connections), one clock, and hash-routed
//!   [`ShardedRegistry`] shards, so the steady-state request path touches
//!   no cross-shard locks.
//!
//! Each connection advances through a small state machine
//! (`Hello → [Resume] → Running → Closing`) that mirrors
//! `worker::serve_connection_with_registry` decision-for-decision: the
//! PR-4 conformance suite re-runs the admission/quota/panic/drain tests
//! against this core unchanged.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use rcuda_core::time::wall_clock;
use rcuda_core::{Clock as _, CudaError, SharedClock};
use rcuda_gpu::{GpuContext, GpuDevice};
use rcuda_obs::{DaemonEvent, ShardSpan};
use rcuda_proto::codec::{fold_caps, CAP_ALL, CAP_LZ4};
use rcuda_proto::handshake::write_hello_reply;
use rcuda_proto::mux::MuxHello;
use rcuda_proto::{BufferPool, ClientHello, Codec, Frame, SessionHello, StreamDecoder};
use rcuda_transport::{Progress, Transport};
use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{Shutdown, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::dispatch::dispatch_batch_pooled;
use crate::pool::PoolGuard;
use crate::registry::ShardedRegistry;
use crate::worker::{
    dispatch_batch_observed, dispatch_observed, panic_response, release_context, ServerConfig,
    SessionReport, RESUME_WAIT,
};
use rcuda_proto::{BatchResponse, Request, Response};

/// Smallest per-connection read chunk: enough for every fixed-size request
/// in one gulp while keeping idle connections cheap (10k parked
/// connections hold 10k of these, so the floor matters).
const READ_CHUNK_MIN: usize = 2 * 1024;
/// Largest per-connection read chunk; reached only by connections that
/// actually move bulk payloads.
const READ_CHUNK_MAX: usize = 256 * 1024;
/// Frames dispatched per connection per pass before yielding to shard
/// neighbors (leftover frames stay buffered and the pass is re-run hot).
const FRAMES_PER_PASS: u32 = 64;
/// Longest idle-shard sleep. Bounds resume-poll and drain-notice latency.
const IDLE_SLEEP_MAX_US: u64 = 2_000;

/// Atomic daemon counters, shared between the accept loop, the reactor
/// shards, and `DaemonHealth` snapshots.
#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) attempted: AtomicU64,
    pub(crate) admitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) live: AtomicU64,
    pub(crate) accept_errors: AtomicU64,
    pub(crate) panics: AtomicU64,
    pub(crate) reclaimed_bytes: AtomicU64,
}

const DRAIN_OFF: u8 = 0;
const DRAIN_GRACE: u8 = 1;
const DRAIN_FORCE: u8 = 2;

/// Drain coordination between the daemon and the shards. While a drain is
/// in progress, connections that finish on their own count `graceful`;
/// once the daemon flips to force mode every surviving connection is
/// closed by its shard and counts `forced`.
#[derive(Default)]
pub(crate) struct DrainState {
    mode: AtomicU8,
    graceful: AtomicUsize,
    forced: AtomicUsize,
}

impl DrainState {
    pub(crate) fn begin(&self) {
        self.graceful.store(0, Ordering::SeqCst);
        self.forced.store(0, Ordering::SeqCst);
        self.mode.store(DRAIN_GRACE, Ordering::SeqCst);
    }

    pub(crate) fn force(&self) {
        self.mode.store(DRAIN_FORCE, Ordering::SeqCst);
    }

    pub(crate) fn end(&self) -> (usize, usize) {
        self.mode.store(DRAIN_OFF, Ordering::SeqCst);
        (
            self.graceful.load(Ordering::SeqCst),
            self.forced.load(Ordering::SeqCst),
        )
    }

    fn forcing(&self) -> bool {
        self.mode.load(Ordering::SeqCst) == DRAIN_FORCE
    }

    fn note_closed(&self) {
        match self.mode.load(Ordering::SeqCst) {
            DRAIN_GRACE => {
                self.graceful.fetch_add(1, Ordering::SeqCst);
            }
            DRAIN_FORCE => {
                self.forced.fetch_add(1, Ordering::SeqCst);
            }
            _ => {}
        }
    }
}

/// Live-migration coordination between the daemon handle and the shards.
///
/// [`crate::daemon::RcudaDaemon::migrate_out`] arms an order for a session
/// token; the shard owning that connection quiesces it at the next frame
/// boundary (every response flushed, no partial request buffered) and
/// sends the context through the order's channel. The `armed` flag keeps
/// the steady-state pump overhead to one relaxed atomic load.
#[derive(Default)]
pub(crate) struct MigrationTable {
    orders: Mutex<HashMap<u64, Sender<GpuContext>>>,
    armed: AtomicBool,
}

impl MigrationTable {
    /// Arm an order for `session`; the context arrives on the returned
    /// channel once its connection reaches a frame boundary.
    pub(crate) fn arm(&self, session: u64) -> Receiver<GpuContext> {
        let (tx, rx) = unbounded();
        self.orders.lock().insert(session, tx);
        self.armed.store(true, Ordering::SeqCst);
        rx
    }

    /// Withdraw an order that never completed (quiesce timeout). The shard
    /// may have raced the withdrawal and already sent — the caller must
    /// drain the receiver once more after this.
    pub(crate) fn disarm(&self, session: u64) {
        let mut orders = self.orders.lock();
        orders.remove(&session);
        if orders.is_empty() {
            self.armed.store(false, Ordering::SeqCst);
        }
    }

    #[inline]
    fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Claim the order for `session`, if one is armed.
    fn take(&self, session: u64) -> Option<Sender<GpuContext>> {
        let mut orders = self.orders.lock();
        let tx = orders.remove(&session);
        if orders.is_empty() {
            self.armed.store(false, Ordering::SeqCst);
        }
        tx
    }
}

/// State shared by the accept loop, every reactor shard, and the daemon
/// handle.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) counters: Counters,
    pub(crate) reports: Mutex<Vec<SessionReport>>,
    pub(crate) sessions_served: AtomicU64,
    pub(crate) registry: ShardedRegistry,
    pub(crate) drain: DrainState,
    pub(crate) halt: AtomicBool,
    /// Late-bound reactor/pool links for mux trunk hosts (see
    /// [`crate::mux_host`]).
    pub(crate) links: crate::mux_host::MuxLinks,
    /// Armed live-migration orders, keyed by session token.
    pub(crate) migrations: MigrationTable,
    /// Tokens of resumable sessions currently being served (the broker
    /// heartbeat advertises these alongside the parked tokens).
    pub(crate) live_tokens: Mutex<HashSet<u64>>,
    /// Set once a drain begins, for the broker heartbeat's `draining` flag
    /// (the broker stops placing new sessions here).
    pub(crate) draining: AtomicBool,
}

/// A freshly admitted connection on its way to a shard.
pub(crate) struct NewConn {
    pub(crate) transport: Box<dyn Transport>,
    /// TCP-only: a clone of the socket so a forced close can shut the peer
    /// down at the OS level (in-process transports see plain EOF instead).
    pub(crate) raw: Option<TcpStream>,
    pub(crate) device: Arc<GpuDevice>,
    pub(crate) guard: PoolGuard,
    /// The connection arrived through an authenticated mux trunk: the
    /// auth gate on legacy hellos does not apply to it.
    pub(crate) authenticated: bool,
}

struct ShardHandle {
    tx: Sender<NewConn>,
    queued: Arc<AtomicU32>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

/// The running shard pool. Dropping the reactor does not stop the shards —
/// set `Shared::halt` first, then call [`Reactor::join`].
pub(crate) struct Reactor {
    shards: Vec<ShardHandle>,
    next: AtomicUsize,
}

impl Reactor {
    /// Spawn `n` shard threads (at least one) over `shared`.
    pub(crate) fn start(n: usize, shared: &Arc<Shared>) -> Reactor {
        let shards = (0..n.max(1) as u32)
            .map(|id| {
                let (tx, rx) = unbounded::<NewConn>();
                let queued = Arc::new(AtomicU32::new(0));
                let shard_queued = Arc::clone(&queued);
                let shard_shared = Arc::clone(shared);
                let thread = std::thread::Builder::new()
                    .name(format!("rcuda-shard-{id}"))
                    .spawn(move || shard_loop(id, rx, shard_queued, shard_shared))
                    .expect("spawn reactor shard");
                ShardHandle {
                    tx,
                    queued,
                    thread: Mutex::new(Some(thread)),
                }
            })
            .collect();
        Reactor {
            shards,
            next: AtomicUsize::new(0),
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Hand an admitted connection to the next shard (round-robin).
    pub(crate) fn submit(&self, conn: NewConn) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[i].queued.fetch_add(1, Ordering::SeqCst);
        if self.shards[i].tx.send(conn).is_err() {
            // Shard already halted (daemon dropping): nothing to serve the
            // connection with; the NewConn drop closes it.
            self.shards[i].queued.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Join every shard thread. Callers must set `Shared::halt` first or
    /// this blocks forever.
    pub(crate) fn join(&self) {
        for shard in &self.shards {
            if let Some(t) = shard.thread.lock().take() {
                let _ = t.join();
            }
        }
    }
}

// --------------------------------------------------------------- the shard

fn shard_loop(id: u32, rx: Receiver<NewConn>, queued: Arc<AtomicU32>, shared: Arc<Shared>) {
    let pool = BufferPool::new();
    let clock = wall_clock();
    let obs = shared.config.observer.clone();
    let mut conns: Vec<Conn> = Vec::new();
    let mut idle_passes: u32 = 0;

    loop {
        let halting = shared.halt.load(Ordering::SeqCst);
        let forcing = halting || shared.drain.forcing();
        let depth = queued.load(Ordering::SeqCst);
        let started = clock.now();

        // Register freshly admitted connections.
        let mut admitted: u32 = 0;
        loop {
            match rx.try_recv() {
                Ok(new) => {
                    queued.fetch_sub(1, Ordering::SeqCst);
                    conns.push(Conn::register(new, &shared));
                    admitted += 1;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }

        // One readiness pass over every connection.
        let mut frames: u32 = 0;
        let mut moved = admitted > 0;
        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];
            if forcing {
                conn.force_close();
            }
            let act = conn.pump(&pool, &shared);
            frames += act.frames;
            moved |= act.progress;
            if conn.done {
                drop(conns.swap_remove(i));
            } else {
                i += 1;
            }
        }

        if frames > 0 || admitted > 0 {
            obs.emit_shard(&ShardSpan {
                shard: id,
                sessions: conns.len() as u32,
                queue_depth: depth,
                frames,
                start: started,
                end: clock.now(),
            });
        }

        if halting && conns.is_empty() && queued.load(Ordering::SeqCst) == 0 {
            break;
        }

        // Adaptive idle backoff: spin briefly for latency, then sleep with
        // a bounded ceiling so resume polls and drain flags stay fresh.
        if moved {
            idle_passes = 0;
        } else {
            idle_passes = idle_passes.saturating_add(1);
            if idle_passes < 8 {
                std::thread::yield_now();
            } else {
                let us = (u64::from(idle_passes) * 50).min(IDLE_SLEEP_MAX_US);
                std::thread::sleep(Duration::from_micros(us));
            }
        }
    }
}

// ---------------------------------------------------------- the connection

#[derive(Clone, Copy)]
enum Phase {
    /// Waiting for the client's `SessionHello`.
    Hello,
    /// A `Reconnect` arrived before the dying connection parked the
    /// session: poll the registry until the context shows up or the
    /// deadline passes (the nonblocking form of
    /// `SessionRegistry::take_deadline`).
    Resume { session: u64, deadline: Instant },
    /// The request/dispatch/respond loop.
    Running,
    /// Drain the outbound buffer, then finalize.
    Closing,
}

struct PumpResult {
    frames: u32,
    progress: bool,
}

struct Conn {
    transport: Box<dyn Transport>,
    raw: Option<TcpStream>,
    decoder: StreamDecoder,
    /// Outbound bytes not yet accepted by the transport.
    out: Vec<u8>,
    out_pos: usize,
    /// Total bytes ever queued / flushed, for the handshake watermark.
    queued_total: u64,
    flushed_total: u64,
    /// Once the outbound bytes up to this watermark are flushed, the
    /// handshake has observably completed and the session produces a
    /// report — exactly the connections whose blocking worker returned
    /// `Ok(report)` rather than a handshake error.
    handshake_done_at: Option<u64>,
    phase: Phase,
    /// Warm context created at admission (§VI-B); consumed by the hello.
    fresh_ctx: Option<GpuContext>,
    /// The device serving this connection, kept for snapshot restores
    /// (a `Migrate` hello rebuilds a shipped context on it).
    device: Arc<GpuDevice>,
    ctx: Option<GpuContext>,
    token: Option<u64>,
    report: SessionReport,
    clk: SharedClock,
    read_chunk: usize,
    eof: bool,
    done: bool,
    guard: Option<PoolGuard>,
    authenticated: bool,
    /// Wire codec, installed when the client's `CodecHello` accepts the
    /// capabilities advertised in the CC push; `None` = legacy framing.
    codec: Option<Codec>,
}

impl Conn {
    fn register(new: NewConn, shared: &Shared) -> Conn {
        let NewConn {
            transport,
            raw,
            device,
            guard,
            authenticated,
        } = new;
        let clk: SharedClock = wall_clock();
        let config = &shared.config;
        let fresh_ctx = if config.phantom_memory {
            device.create_phantom_context(clk.clone(), config.preinitialize_context)
        } else {
            device.create_context(clk.clone(), config.preinitialize_context)
        };
        let mut conn = Conn {
            transport,
            raw,
            decoder: StreamDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            queued_total: 0,
            flushed_total: 0,
            handshake_done_at: None,
            phase: Phase::Hello,
            fresh_ctx: Some(fresh_ctx),
            device: Arc::clone(&device),
            ctx: None,
            token: None,
            report: SessionReport::default(),
            clk,
            read_chunk: READ_CHUNK_MIN,
            eof: false,
            done: false,
            guard: Some(guard),
            authenticated,
            codec: None,
        };
        // A transport without a nonblocking half cannot be multiplexed;
        // close it immediately (register still returns a Conn so the
        // daemon counters balance through the normal finalize path).
        if conn.transport.set_nonblocking(true).is_err() {
            conn.abort();
            return conn;
        }
        // Phase 1a: announce the device (8-byte compute capability), with
        // the daemon's codec capability bits folded into the high half of
        // the minor word (legacy clients never inspect those bits).
        let mut cc = device.properties().compute_capability_wire();
        if config.codec {
            let minor = u32::from_le_bytes(cc[4..8].try_into().expect("8-byte wire"));
            cc[4..8].copy_from_slice(&fold_caps(minor, CAP_ALL).to_le_bytes());
        }
        conn.queue(|out| {
            out.extend_from_slice(&cc);
            Ok(())
        });
        conn
    }

    /// Append serialized bytes to the outbound buffer. Writing to a `Vec`
    /// cannot fail, so serializer errors here are programming errors.
    fn queue<F: FnOnce(&mut Vec<u8>) -> io::Result<()>>(&mut self, f: F) {
        let before = self.out.len();
        f(&mut self.out).expect("serializing into a Vec cannot fail");
        self.queued_total += (self.out.len() - before) as u64;
    }

    fn eligible(&self) -> bool {
        self.handshake_done_at
            .is_some_and(|w| self.flushed_total >= w)
    }

    /// Close without ever producing a report: the nonblocking equivalent
    /// of the blocking worker returning a handshake `Err`.
    fn abort(&mut self) {
        self.handshake_done_at = None;
        self.out_pos = self.out.len();
        self.phase = Phase::Closing;
    }

    /// End the session through the normal report-producing path once the
    /// outbound buffer drains.
    fn begin_close(&mut self) {
        self.phase = Phase::Closing;
    }

    /// Drain-deadline or daemon-halt close: shut the peer down and
    /// finalize now, abandoning undeliverable output.
    fn force_close(&mut self) {
        if let Some(raw) = &self.raw {
            let _ = raw.shutdown(Shutdown::Both);
        }
        self.eof = true;
        self.out_pos = self.out.len();
        self.phase = Phase::Closing;
    }

    /// A write failure is a vanished peer. Before the handshake watermark
    /// flushed this matches a blocking handshake error (no report); after
    /// it, the blocking worker's `break` (report, park-eligible).
    fn on_write_failure(&mut self) {
        if self.eligible() {
            self.out_pos = self.out.len();
            self.begin_close();
        } else {
            self.abort();
        }
    }

    /// Push pending outbound bytes into the transport. Returns whether any
    /// bytes moved.
    fn flush_out(&mut self) -> bool {
        let mut progress = false;
        while self.out_pos < self.out.len() {
            match self.transport.try_write(&self.out[self.out_pos..]) {
                Ok(Progress::Ready(0)) | Ok(Progress::Pending) => break,
                Ok(Progress::Ready(n)) => {
                    self.out_pos += n;
                    self.flushed_total += n as u64;
                    progress = true;
                }
                Err(_) => {
                    self.on_write_failure();
                    return progress;
                }
            }
        }
        if self.out_pos >= self.out.len() && !self.out.is_empty() {
            self.out.clear();
            self.out_pos = 0;
            // Mark the message boundary. On a nonblocking endpoint a flush
            // that cannot complete right now reports WouldBlock and is
            // retried implicitly by the next pass's writes.
            if let Err(e) = self.transport.flush() {
                if e.kind() != io::ErrorKind::WouldBlock {
                    self.on_write_failure();
                }
            }
        }
        progress
    }

    /// One readiness pass: flush, read, decode/dispatch, flush, finalize.
    fn pump(&mut self, pool: &BufferPool, shared: &Arc<Shared>) -> PumpResult {
        let mut res = PumpResult {
            frames: 0,
            progress: false,
        };
        res.progress |= self.flush_out();

        // Read whatever the transport has, growing the chunk for
        // connections that move bulk data.
        if !self.eof && !matches!(self.phase, Phase::Closing) {
            loop {
                let chunk = self.read_chunk;
                let space = self.decoder.space(chunk);
                match self.transport.try_read(space) {
                    Ok(Progress::Ready(0)) => {
                        self.eof = true;
                        res.progress = true;
                        break;
                    }
                    Ok(Progress::Ready(n)) => {
                        self.decoder.commit(n);
                        res.progress = true;
                        if n == chunk && chunk < READ_CHUNK_MAX {
                            self.read_chunk = (chunk * 2).min(READ_CHUNK_MAX);
                        } else {
                            break;
                        }
                    }
                    Ok(Progress::Pending) => break,
                    // A read error is a client disconnect, not a server
                    // fault — same as EOF once buffered frames are served.
                    Err(_) => {
                        self.eof = true;
                        break;
                    }
                }
            }
        }

        self.process(pool, shared, &mut res);

        res.progress |= self.flush_out();
        self.quiesce_for_migration(shared, &mut res);
        if matches!(self.phase, Phase::Closing) && self.out_pos >= self.out.len() {
            self.finalize(pool, shared);
            res.progress = true;
        }
        res
    }

    /// Live-migration quiesce point. A `Running` session whose token has an
    /// armed migration order is captured at a frame boundary: every
    /// response flushed, no partial request buffered, peer still present.
    /// The context travels to `RcudaDaemon::migrate_out` through the
    /// order's channel; the connection then closes without parking (the
    /// session lives elsewhere now), and the client's reconnect finds it
    /// on the target daemon.
    fn quiesce_for_migration(&mut self, shared: &Shared, res: &mut PumpResult) {
        if !shared.migrations.is_armed() || !matches!(self.phase, Phase::Running) || self.eof {
            return;
        }
        let Some(token) = self.token else { return };
        if self.out_pos < self.out.len() || self.decoder.buffered() != 0 {
            return;
        }
        let Some(tx) = shared.migrations.take(token) else {
            return;
        };
        let ctx = self.ctx.take().expect("Running implies a context");
        if let Err(back) = tx.send(ctx) {
            // The daemon gave up waiting between our checks and the send:
            // keep serving as if nothing happened.
            self.ctx = Some(back.0);
            return;
        }
        shared.live_tokens.lock().remove(&token);
        self.token = None;
        self.force_close();
        res.progress = true;
    }

    fn process(&mut self, pool: &BufferPool, shared: &Arc<Shared>, res: &mut PumpResult) {
        loop {
            match self.phase {
                Phase::Hello => match self.decoder.poll_client_hello() {
                    Ok(Some(ClientHello::Mux(hello))) => {
                        self.upgrade_to_mux(hello, shared);
                        res.progress = true;
                        return;
                    }
                    Ok(Some(ClientHello::Codec(caps))) => {
                        // The client accepted the advertised codec: switch
                        // this connection's framing and stay in the hello
                        // phase — the session hello proper follows.
                        if caps & CAP_LZ4 != 0 {
                            self.codec = Some(Codec::new(pool.clone()));
                        }
                        res.progress = true;
                    }
                    Ok(Some(ClientHello::Session(hello))) => {
                        if shared.config.auth_token.is_some() && !self.authenticated {
                            // A legacy hello cannot carry the required
                            // token: answer with the 4-byte auth error
                            // every hello form reads, then close through
                            // the normal report path (`served` still
                            // balances; the slot frees on finalize).
                            self.queue(|out| write_hello_reply(out, &Err(CudaError::AuthFailed)));
                            self.handshake_done_at = Some(self.queued_total);
                            self.begin_close();
                            res.progress = true;
                            return;
                        }
                        self.on_hello(hello, shared);
                        res.progress = true;
                    }
                    Ok(None) => {
                        if self.eof {
                            self.abort();
                        }
                        return;
                    }
                    Err(_) => {
                        self.abort();
                        return;
                    }
                },
                Phase::Resume { session, deadline } => {
                    if self.eof {
                        self.abort();
                        return;
                    }
                    match shared.registry.take(session) {
                        Some(ctx) => {
                            self.on_resumed(session, ctx, shared);
                            res.progress = true;
                        }
                        None if Instant::now() >= deadline => {
                            // Nothing parked under that token: reject and
                            // end the connection cleanly (with a report).
                            self.queue(|out| {
                                write_hello_reply(out, &Err(CudaError::InitializationError))
                            });
                            self.handshake_done_at = Some(self.queued_total);
                            self.begin_close();
                            res.progress = true;
                            return;
                        }
                        None => return,
                    }
                }
                Phase::Running => {
                    if res.frames >= FRAMES_PER_PASS {
                        return;
                    }
                    match self
                        .decoder
                        .poll_frame_codec(Some(pool), self.codec.as_ref())
                    {
                        Ok(Some(frame)) => {
                            res.frames += 1;
                            res.progress = true;
                            self.on_frame(frame, pool, shared);
                        }
                        Ok(None) => {
                            if self.eof {
                                // Disconnect: unorderly end (park-eligible).
                                self.begin_close();
                            }
                            return;
                        }
                        // Garbage on the wire ends the session, not the
                        // daemon: the blocking worker's loop exit.
                        Err(_) => {
                            self.begin_close();
                            return;
                        }
                    }
                }
                Phase::Closing => return,
            }
        }
    }

    /// The client asked for the multiplexed framing layer: pull this
    /// connection out of the shard and hand it to a dedicated trunk host
    /// (see [`crate::mux_host`]). The trunk is not a session — its
    /// sub-streams are admitted individually — so the accept-time
    /// accounting is balanced here as an immediately-finished connection
    /// and the warm context and pool seat are returned.
    fn upgrade_to_mux(&mut self, hello: MuxHello, shared: &Arc<Shared>) {
        drop(self.fresh_ctx.take());
        drop(self.guard.take());
        let c = &shared.counters;
        c.served.fetch_add(1, Ordering::SeqCst);
        c.live.fetch_sub(1, Ordering::SeqCst);

        let transport = std::mem::replace(&mut self.transport, Box::new(ClosedTransport));
        let leftover = self.decoder.take_buffered();
        let pending_out = self.out[self.out_pos..].to_vec();
        self.out.clear();
        self.out_pos = 0;
        self.done = true;
        crate::mux_host::spawn_reactor_trunk(
            transport,
            self.raw.take(),
            hello,
            leftover,
            pending_out,
            Arc::clone(shared),
        );
    }

    fn on_hello(&mut self, hello: SessionHello, shared: &Shared) {
        match hello {
            SessionHello::Fresh { module } => {
                self.init_fresh(module, None, shared);
            }
            SessionHello::Resumable { session, module } => {
                self.init_fresh(module, Some(session), shared);
            }
            SessionHello::Reconnect { session } => {
                // The pre-created context is discarded: the parked one
                // carries the session's state.
                drop(self.fresh_ctx.take());
                match shared.registry.take(session) {
                    Some(ctx) => self.on_resumed(session, ctx, shared),
                    None => {
                        self.phase = Phase::Resume {
                            session,
                            deadline: Instant::now() + RESUME_WAIT,
                        };
                    }
                }
            }
            SessionHello::Migrate { session, snapshot } => {
                // A peer daemon is shipping a quiesced session here. The
                // restored context parks immediately — the client's
                // reconnect resumes it exactly like a locally parked one.
                drop(self.fresh_ctx.take());
                let reply = self.install_snapshot(session, &snapshot, shared);
                self.queue(|out| write_hello_reply(out, &reply));
                self.handshake_done_at = Some(self.queued_total);
                self.begin_close();
            }
        }
    }

    /// Rebuild a shipped context from its snapshot on this connection's
    /// device and park it under the session's token. Errors go back to the
    /// shipping daemon as the hello reply (it keeps its copy on failure).
    fn install_snapshot(
        &mut self,
        session: u64,
        snapshot: &[u8],
        shared: &Shared,
    ) -> rcuda_core::CudaResult<()> {
        let snap = rcuda_gpu::snapshot::ContextSnapshot::decode(snapshot)
            .map_err(|_| CudaError::InvalidValue)?;
        let mut ctx = self.device.restore_context(self.clk.clone(), &snap)?;
        ctx.set_mem_quota(shared.config.session_mem_quota);
        if let Some((evicted, evicted_ctx)) = shared.registry.park(session, ctx) {
            let obs = &shared.config.observer;
            obs.emit_daemon(DaemonEvent::SessionEvicted { session: evicted });
            self.report.reclaimed_bytes += release_context(evicted_ctx, obs);
        }
        Ok(())
    }

    fn init_fresh(&mut self, module: Vec<u8>, token: Option<u64>, shared: &Shared) {
        let obs = shared.config.observer.clone();
        let mut ctx = self
            .fresh_ctx
            .take()
            .expect("hello arrives once per connection");
        let resp = dispatch_observed(&mut ctx, &Request::Init { module }, None, &self.clk, &obs)
            .expect("init never quits");
        self.queue(|out| resp.write(out));
        self.handshake_done_at = Some(self.queued_total);
        // Multi-tenant limits apply to resumed sessions too: the quota
        // follows the config serving the connection.
        ctx.set_mem_quota(shared.config.session_mem_quota);
        self.ctx = Some(ctx);
        self.token = token;
        if let Some(session) = token {
            shared.live_tokens.lock().insert(session);
        }
        self.phase = Phase::Running;
    }

    fn on_resumed(&mut self, session: u64, mut ctx: GpuContext, shared: &Shared) {
        self.queue(|out| write_hello_reply(out, &Ok(())));
        self.handshake_done_at = Some(self.queued_total);
        self.report.resumed = true;
        ctx.set_mem_quota(shared.config.session_mem_quota);
        self.ctx = Some(ctx);
        self.token = Some(session);
        shared.live_tokens.lock().insert(session);
        self.phase = Phase::Running;
    }

    fn on_frame(&mut self, frame: Frame, pool: &BufferPool, shared: &Shared) {
        let obs = shared.config.observer.clone();
        let chaos = &shared.config.chaos;
        // Taken for the duration so the queue closures (which borrow `self`
        // mutably) can frame responses through it; restored on exit.
        let codec = self.codec.take();
        let ctx = self.ctx.as_mut().expect("Running implies a context");
        match frame {
            Frame::Single(req) => {
                self.report.requests += 1;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    chaos.fire(&req);
                    dispatch_observed(ctx, &req, Some(pool), &self.clk, &obs)
                }));
                match outcome {
                    Ok(Some(resp)) => self.queue(|out| resp.write_codec(out, codec.as_ref())),
                    Ok(None) => {
                        // Finalization stage: acknowledge the Quit, then
                        // release everything (§III).
                        let ack = Response::Ack(Ok(()));
                        self.queue(|out| ack.write(out));
                        self.report.orderly_shutdown = true;
                        self.begin_close();
                    }
                    Err(_) => {
                        let resp = panic_response(&req);
                        self.queue(|out| resp.write(out));
                        obs.emit_daemon(DaemonEvent::SessionPanicked);
                        self.report.panicked = true;
                        self.begin_close();
                    }
                }
            }
            Frame::Batch(batch) => {
                self.report.requests += batch.len() as u64;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if obs.is_enabled() || chaos.is_armed() {
                        dispatch_batch_observed(ctx, &batch, Some(pool), &self.clk, &obs, chaos)
                    } else {
                        dispatch_batch_pooled(ctx, &batch, Some(pool))
                    }
                }));
                match outcome {
                    Ok((resp, quit)) => {
                        self.queue(|out| resp.write_codec(out, codec.as_ref()));
                        if quit {
                            self.report.orderly_shutdown = true;
                            self.begin_close();
                        }
                    }
                    Err(_) => {
                        // Answer every element so the frame stays shaped,
                        // then kill the session.
                        let responses = batch.requests().iter().map(panic_response).collect();
                        let resp = BatchResponse { responses };
                        self.queue(|out| resp.write(out));
                        obs.emit_daemon(DaemonEvent::SessionPanicked);
                        self.report.panicked = true;
                        self.begin_close();
                    }
                }
            }
        }
        self.codec = codec;
    }

    /// Session end: the blocking worker's exit path, plus the daemon-side
    /// accounting its spawner used to do.
    fn finalize(&mut self, pool: &BufferPool, shared: &Shared) {
        self.done = true;
        drop(self.guard.take());
        if let Some(token) = self.token {
            // Parked tokens are advertised through the registry instead;
            // a migrated-away session already cleared its token.
            shared.live_tokens.lock().remove(&token);
        }
        let obs = &shared.config.observer;
        if self.eligible() {
            let mut report = std::mem::take(&mut self.report);
            if let Some(ctx) = self.ctx.take() {
                match self.token {
                    Some(session) if !report.orderly_shutdown && !report.panicked => {
                        // Unorderly end of a resumable session: park the
                        // context for the client's reconnect. A session
                        // evicted to make room is reclaimed here, through
                        // the same path as a session exit.
                        if let Some((evicted, evicted_ctx)) = shared.registry.park(session, ctx) {
                            obs.emit_daemon(DaemonEvent::SessionEvicted { session: evicted });
                            report.reclaimed_bytes += release_context(evicted_ctx, obs);
                        }
                        report.parked = true;
                    }
                    _ => {
                        report.leaked_allocations = ctx.live_allocations();
                        report.reclaimed_bytes += release_context(ctx, obs);
                    }
                }
            }
            report.pool = pool.stats();
            if report.panicked {
                shared.counters.panics.fetch_add(1, Ordering::SeqCst);
            }
            shared
                .counters
                .reclaimed_bytes
                .fetch_add(report.reclaimed_bytes, Ordering::SeqCst);
            shared.reports.lock().push(report);
            shared.sessions_served.fetch_add(1, Ordering::SeqCst);
        } else {
            // The handshake never observably completed: contexts drop
            // silently, mirroring the blocking worker's early `Err` return
            // (a warm, allocation-free context releases nothing).
            drop(self.fresh_ctx.take());
            drop(self.ctx.take());
        }
        shared.counters.served.fetch_add(1, Ordering::SeqCst);
        shared.drain.note_closed();
        // `live` goes last: a drain watching it hit zero must observe this
        // connection's graceful/forced accounting already settled.
        shared.counters.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The stand-in left behind when a connection's transport is moved to a
/// mux trunk host: reads are EOF, writes fail.
struct ClosedTransport;

impl io::Read for ClosedTransport {
    fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
        Ok(0)
    }
}

impl io::Write for ClosedTransport {
    fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            "transport moved to a mux trunk host",
        ))
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Transport for ClosedTransport {
    fn stats(&self) -> rcuda_transport::TransportStats {
        rcuda_transport::TransportStats::default()
    }
}
