//! The rCUDA server daemon.
//!
//! §III: "on the other side, there is a GPU network service listening for
//! requests on a TCP port. ... Time-multiplexing (sharing) the GPU is
//! accomplished by spawning a different server process for each remote
//! execution over a new GPU context." This crate is that service:
//!
//! * [`worker`] — the blocking single-connection server: the
//!   initialization handshake, then a request/dispatch/respond loop over a
//!   fresh, **pre-initialized** GPU context (the warm context is why
//!   remote executions skip the CUDA environment initialization delay,
//!   §VI-B). Still the engine behind in-process channel sessions;
//! * [`dispatch`] — maps each protocol request onto the context;
//! * [`reactor`] — the sharded readiness-loop core: a fixed pool of shard
//!   threads multiplexing every admitted connection over nonblocking
//!   transports, with the same per-session semantics as [`worker`];
//! * [`daemon`] — the TCP accept loop (admission control, accept backoff)
//!   feeding the reactor; built through [`DaemonBuilder`].

pub(crate) mod broker_agent;
pub mod builder;
pub mod daemon;
pub mod dispatch;
pub mod mux_host;
pub mod pool;
pub(crate) mod reactor;
pub mod registry;
pub mod worker;

pub use builder::DaemonBuilder;
pub use daemon::{DaemonHealth, DrainReport, RcudaDaemon};
pub use mux_host::serve_mux_trunk;
pub use pool::{GpuPool, PoolPolicy};
pub use registry::{SessionRegistry, ShardedRegistry};
pub use worker::{
    serve_connection, serve_connection_with_registry, ChaosHook, ServerConfig, SessionReport,
};
