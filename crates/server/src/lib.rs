//! The rCUDA server daemon.
//!
//! §III: "on the other side, there is a GPU network service listening for
//! requests on a TCP port. ... Time-multiplexing (sharing) the GPU is
//! accomplished by spawning a different server process for each remote
//! execution over a new GPU context." This crate is that service:
//!
//! * [`worker`] — serves one connection: the initialization handshake, then
//!   a request/dispatch/respond loop over a fresh, **pre-initialized** GPU
//!   context (the warm context is why remote executions skip the CUDA
//!   environment initialization delay, §VI-B);
//! * [`dispatch`] — maps each protocol request onto the context;
//! * [`daemon`] — the TCP accept loop, one worker thread per connection
//!   (threads stand in for the original's processes).

pub mod daemon;
pub mod dispatch;
pub mod pool;
pub mod registry;
pub mod worker;

pub use daemon::{DaemonHealth, DrainReport, RcudaDaemon};
pub use pool::{GpuPool, PoolPolicy};
pub use registry::SessionRegistry;
pub use worker::{
    serve_connection, serve_connection_with_registry, ChaosHook, ServerConfig, SessionReport,
};
