//! Parked sessions awaiting reconnection.
//!
//! When a resumable session's connection dies without an orderly Quit, its
//! worker parks the GPU context here under the client-chosen session token.
//! A worker serving the client's replacement connection takes the context
//! back out and resumes exactly where the old session stopped — allocations,
//! loaded module, streams and events all survive the reconnect.
//!
//! [`SessionRegistry::take_deadline`] waits briefly for the context to
//! appear: on a real network the client's new connection can be accepted
//! before the old worker has observed the EOF and parked, and the timed
//! wait closes that race without busy-looping. A token that never shows up
//! is a clean rejection, not a hang.

use rcuda_gpu::GpuContext;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Most sessions a registry will hold parked at once; beyond this the
/// oldest parked session is evicted (its context dropped, resources
/// released) so an unbounded stream of crashing clients cannot pin GPU
/// state forever.
const DEFAULT_CAPACITY: usize = 64;

struct Parked {
    ctx: GpuContext,
    parked_at: u64,
}

struct Inner {
    parked: HashMap<u64, Parked>,
    /// Monotonic park sequence, for oldest-first eviction.
    seq: u64,
}

/// Shared store of parked sessions, keyed by session token.
pub struct SessionRegistry {
    inner: Mutex<Inner>,
    arrived: Condvar,
    capacity: usize,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new()
    }
}

impl SessionRegistry {
    pub fn new() -> SessionRegistry {
        SessionRegistry::with_capacity(DEFAULT_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> SessionRegistry {
        assert!(capacity > 0, "registry capacity must be positive");
        SessionRegistry {
            inner: Mutex::new(Inner {
                parked: HashMap::new(),
                seq: 0,
            }),
            arrived: Condvar::new(),
            capacity,
        }
    }

    /// Park a session's context for later resume. Replaces any context
    /// already parked under the same token; evicts the oldest parked
    /// session when full.
    ///
    /// Returns the evicted `(token, context)` so the caller can release it
    /// through the same reclamation path as a worker exit — dropping it
    /// silently here would leak the evicted session's device allocations
    /// from every observer's point of view.
    #[must_use = "an evicted session's context must be reclaimed, not dropped silently"]
    pub fn park(&self, session: u64, ctx: GpuContext) -> Option<(u64, GpuContext)> {
        let mut inner = self.inner.lock().expect("registry lock");
        let mut evicted = None;
        if inner.parked.len() >= self.capacity && !inner.parked.contains_key(&session) {
            if let Some(oldest) = inner
                .parked
                .iter()
                .min_by_key(|(_, p)| p.parked_at)
                .map(|(k, _)| *k)
            {
                evicted = inner.parked.remove(&oldest).map(|p| (oldest, p.ctx));
            }
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.parked.insert(
            session,
            Parked {
                ctx,
                parked_at: seq,
            },
        );
        self.arrived.notify_all();
        evicted
    }

    /// Take a parked context out, if present.
    pub fn take(&self, session: u64) -> Option<GpuContext> {
        self.inner
            .lock()
            .expect("registry lock")
            .parked
            .remove(&session)
            .map(|p| p.ctx)
    }

    /// Take a parked context, waiting up to `timeout` for it to be parked.
    /// Closes the race where the reconnecting client's new worker runs
    /// before the old worker has noticed the disconnect.
    pub fn take_deadline(&self, session: u64, timeout: Duration) -> Option<GpuContext> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("registry lock");
        loop {
            if let Some(p) = inner.parked.remove(&session) {
                return Some(p.ctx);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timed_out) = self
                .arrived
                .wait_timeout(inner, deadline - now)
                .expect("registry lock");
            inner = guard;
            if timed_out.timed_out() {
                return inner.parked.remove(&session).map(|p| p.ctx);
            }
        }
    }

    /// Number of sessions currently parked.
    pub fn parked_count(&self) -> usize {
        self.inner.lock().expect("registry lock").parked.len()
    }

    /// Tokens of every currently parked session, in no particular order.
    /// A snapshot: a concurrent take or park may invalidate it immediately,
    /// so callers (the broker heartbeat, drain-time migration) must treat a
    /// later `take` returning `None` as "already resumed", not an error.
    pub fn parked_tokens(&self) -> Vec<u64> {
        self.inner
            .lock()
            .expect("registry lock")
            .parked
            .keys()
            .copied()
            .collect()
    }

    /// Empty the registry, returning every parked `(token, context)` for
    /// reclamation (daemon drain: nobody is coming back for them).
    pub fn drain_parked(&self) -> Vec<(u64, GpuContext)> {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.parked.drain().map(|(k, p)| (k, p.ctx)).collect()
    }
}

/// A hash-routed set of [`SessionRegistry`] shards.
///
/// The reactor daemon parks and resumes sessions from every shard thread;
/// routing tokens across independent registries keeps those threads off a
/// single park/take mutex. Routing is by token hash, so a session parked by
/// a connection on one reactor shard is found by its replacement connection
/// regardless of which reactor shard that lands on.
///
/// When a total capacity is configured it is distributed across the
/// registry shards (never below one slot each); the oldest-first eviction
/// guarantee then holds per shard rather than globally, which preserves the
/// bounded-occupancy contract admission control relies on.
pub struct ShardedRegistry {
    shards: Vec<SessionRegistry>,
}

impl ShardedRegistry {
    /// `shards` hash-routed registries with the default per-shard capacity.
    pub fn new(shards: usize) -> ShardedRegistry {
        let n = shards.max(1);
        ShardedRegistry {
            shards: (0..n).map(|_| SessionRegistry::new()).collect(),
        }
    }

    /// A sharded registry bounding **total** parked occupancy to
    /// `capacity`. Uses `min(shards, capacity)` registries so every shard
    /// keeps at least one slot.
    pub fn with_total_capacity(shards: usize, capacity: usize) -> ShardedRegistry {
        assert!(capacity > 0, "registry capacity must be positive");
        let n = shards.max(1).min(capacity);
        let base = capacity / n;
        let rem = capacity % n;
        ShardedRegistry {
            shards: (0..n)
                .map(|i| SessionRegistry::with_capacity(base + usize::from(i < rem)))
                .collect(),
        }
    }

    fn route(&self, session: u64) -> &SessionRegistry {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        session.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Number of registry shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Park `session`'s context on its shard; see [`SessionRegistry::park`].
    #[must_use = "an evicted session's context must be reclaimed, not dropped silently"]
    pub fn park(&self, session: u64, ctx: GpuContext) -> Option<(u64, GpuContext)> {
        self.route(session).park(session, ctx)
    }

    /// Take a parked context out, if present.
    pub fn take(&self, session: u64) -> Option<GpuContext> {
        self.route(session).take(session)
    }

    /// Take a parked context, waiting up to `timeout` for it to appear.
    pub fn take_deadline(&self, session: u64, timeout: Duration) -> Option<GpuContext> {
        self.route(session).take_deadline(session, timeout)
    }

    /// Sessions parked across all shards.
    pub fn parked_count(&self) -> usize {
        self.shards.iter().map(|s| s.parked_count()).sum()
    }

    /// Tokens parked across all shards (unordered snapshot).
    pub fn parked_tokens(&self) -> Vec<u64> {
        self.shards.iter().flat_map(|s| s.parked_tokens()).collect()
    }

    /// Empty every shard, returning all parked `(token, context)` pairs.
    pub fn drain_parked(&self) -> Vec<(u64, GpuContext)> {
        self.shards.iter().flat_map(|s| s.drain_parked()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::time::wall_clock;
    use rcuda_gpu::GpuDevice;
    use std::sync::Arc;

    fn ctx() -> GpuContext {
        GpuDevice::tesla_c1060_functional().create_context(wall_clock(), true)
    }

    #[test]
    fn park_then_take_round_trips() {
        let reg = SessionRegistry::new();
        assert!(reg.park(7, ctx()).is_none());
        assert_eq!(reg.parked_count(), 1);
        assert!(reg.take(7).is_some());
        assert!(reg.take(7).is_none(), "taking is consuming");
        assert_eq!(reg.parked_count(), 0);
    }

    #[test]
    fn take_deadline_waits_for_late_park() {
        let reg = Arc::new(SessionRegistry::new());
        let reg2 = Arc::clone(&reg);
        let parker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let _ = reg2.park(42, ctx());
        });
        // The taker arrives first; the timed wait bridges the gap.
        let got = reg.take_deadline(42, Duration::from_secs(2));
        assert!(got.is_some());
        parker.join().unwrap();
    }

    #[test]
    fn take_deadline_gives_up_cleanly() {
        let reg = SessionRegistry::new();
        let start = Instant::now();
        assert!(reg.take_deadline(99, Duration::from_millis(25)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert!(start.elapsed() < Duration::from_secs(2), "no hang");
    }

    #[test]
    fn capacity_evicts_oldest_and_hands_it_back() {
        let reg = SessionRegistry::with_capacity(2);
        assert!(reg.park(1, ctx()).is_none());
        assert!(reg.park(2, ctx()).is_none());
        let evicted = reg.park(3, ctx());
        assert_eq!(evicted.as_ref().map(|(t, _)| *t), Some(1), "oldest out");
        assert_eq!(reg.parked_count(), 2);
        assert!(reg.take(1).is_none(), "oldest was evicted");
        assert!(reg.take(2).is_some());
        assert!(reg.take(3).is_some());
    }

    #[test]
    fn reparking_same_token_replaces_not_evicts() {
        let reg = SessionRegistry::with_capacity(2);
        let _ = reg.park(1, ctx());
        let _ = reg.park(2, ctx());
        assert!(reg.park(2, ctx()).is_none(), "replacement, not eviction");
        assert_eq!(reg.parked_count(), 2);
        assert!(reg.take(1).is_some(), "1 must not have been evicted");
    }

    #[test]
    fn drain_parked_empties_the_registry() {
        let reg = SessionRegistry::new();
        let _ = reg.park(1, ctx());
        let _ = reg.park(2, ctx());
        let mut drained: Vec<u64> = reg.drain_parked().into_iter().map(|(t, _)| t).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2]);
        assert_eq!(reg.parked_count(), 0);
    }

    #[test]
    fn sharded_registry_routes_park_and_take_consistently() {
        let reg = ShardedRegistry::new(4);
        assert_eq!(reg.shard_count(), 4);
        for token in 0..32u64 {
            assert!(reg.park(token, ctx()).is_none());
        }
        assert_eq!(reg.parked_count(), 32);
        for token in 0..32u64 {
            assert!(reg.take(token).is_some(), "token {token} lost in routing");
        }
        assert_eq!(reg.parked_count(), 0);
    }

    #[test]
    fn sharded_registry_distributes_total_capacity() {
        let reg = ShardedRegistry::with_total_capacity(4, 6);
        // min(shards, capacity) registries, capacities 2,2,1,1.
        assert_eq!(reg.shard_count(), 4);
        // Capacity never exceeds the configured total, whatever the token
        // distribution.
        let mut evicted = 0;
        for token in 0..64u64 {
            if reg.park(token, ctx()).is_some() {
                evicted += 1;
            }
        }
        assert!(reg.parked_count() <= 6, "total occupancy bounded");
        assert_eq!(evicted + reg.parked_count(), 64);
    }

    #[test]
    fn sharded_registry_keeps_one_slot_per_shard_minimum() {
        let reg = ShardedRegistry::with_total_capacity(8, 3);
        assert_eq!(reg.shard_count(), 3, "shards collapse to the capacity");
        let reg = ShardedRegistry::new(0);
        assert_eq!(reg.shard_count(), 1, "zero shards clamps to one");
    }

    #[test]
    fn parked_tokens_snapshots_the_occupancy() {
        let reg = SessionRegistry::new();
        let _ = reg.park(3, ctx());
        let _ = reg.park(11, ctx());
        let mut tokens = reg.parked_tokens();
        tokens.sort_unstable();
        assert_eq!(tokens, vec![3, 11]);
        let _ = reg.take(3);
        assert_eq!(reg.parked_tokens(), vec![11]);

        let sharded = ShardedRegistry::new(4);
        for token in 0..16u64 {
            let _ = sharded.park(token, ctx());
        }
        let mut tokens = sharded.parked_tokens();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..16).collect::<Vec<_>>());
    }

    /// Two connections racing to resume the same token: exactly one wins.
    /// `take` under the registry mutex is consuming, so the loser sees
    /// `None` and is rejected cleanly — the context is never handed out
    /// twice (which would alias one GPU context across two workers).
    #[test]
    fn concurrent_resume_of_same_token_admits_exactly_one() {
        use std::sync::Barrier;
        for _ in 0..32 {
            let reg = Arc::new(SessionRegistry::new());
            let _ = reg.park(77, ctx());
            let barrier = Arc::new(Barrier::new(2));
            let takers: Vec<_> = (0..2)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        barrier.wait();
                        reg.take_deadline(77, Duration::from_millis(20)).is_some()
                    })
                })
                .collect();
            let wins: usize = takers
                .into_iter()
                .map(|t| usize::from(t.join().unwrap()))
                .sum();
            assert_eq!(wins, 1, "exactly one resume may win the parked context");
            assert_eq!(reg.parked_count(), 0);
        }
    }

    /// A resume racing the park itself (park happens between the two
    /// takes): still exactly one winner thanks to the condvar'd
    /// `take_deadline`, and nobody hangs.
    #[test]
    fn resume_racing_the_park_still_admits_exactly_one() {
        use std::sync::Barrier;
        for _ in 0..32 {
            let reg = Arc::new(SessionRegistry::new());
            let barrier = Arc::new(Barrier::new(3));
            let parker = {
                let reg = Arc::clone(&reg);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let _ = reg.park(5, ctx());
                })
            };
            let takers: Vec<_> = (0..2)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        barrier.wait();
                        reg.take_deadline(5, Duration::from_millis(200)).is_some()
                    })
                })
                .collect();
            parker.join().unwrap();
            let wins: usize = takers
                .into_iter()
                .map(|t| usize::from(t.join().unwrap()))
                .sum();
            assert_eq!(wins, 1, "park-racing resumes must admit exactly one");
        }
    }

    #[test]
    fn sharded_registry_drain_empties_every_shard() {
        let reg = ShardedRegistry::new(3);
        for token in 0..9u64 {
            let _ = reg.park(token, ctx());
        }
        let mut drained: Vec<u64> = reg.drain_parked().into_iter().map(|(t, _)| t).collect();
        drained.sort_unstable();
        assert_eq!(drained, (0..9).collect::<Vec<_>>());
        assert_eq!(reg.parked_count(), 0);
    }
}
