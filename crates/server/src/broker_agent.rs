//! The daemon's broker registration thread.
//!
//! When [`crate::DaemonBuilder::broker`] is configured, the daemon runs
//! one `rcuda-broker-agent` thread that registers with the cluster broker
//! over the authenticated control link ([`rcuda_broker::DaemonLink`]),
//! then heartbeats at a fixed cadence. Each heartbeat carries the
//! daemon's admission counters, device-memory headroom, `draining` flag,
//! and the full list of resumable session tokens it holds (live and
//! parked) — everything the broker's directory needs for health tracking,
//! placement, and orphan accounting. Heartbeat replies may carry
//! migration orders, which the agent executes inline via
//! [`crate::daemon::migrate_out_shared`].
//!
//! A lost broker link is survivable in both directions: the broker marks
//! the daemon Suspect/Down from its side, and the agent re-registers with
//! jittered backoff from this side (re-registration at the same address
//! keeps the daemon's directory identity). The daemon itself keeps
//! serving throughout — the broker is a placement service, not a
//! dependency of the data path.

use rcuda_broker::DaemonLink;
use rcuda_proto::broker::{BrokerCommand, Heartbeat};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use crate::daemon::migrate_out_shared;
use crate::pool::GpuPool;
use crate::reactor::Shared;

/// How the agent reaches and identifies itself to the broker.
pub(crate) struct BrokerAgentConfig {
    /// The broker's control address.
    pub(crate) broker: SocketAddr,
    /// The address advertised for clients to dial (usually the daemon's
    /// bound address).
    pub(crate) advertise: String,
    /// Heartbeat cadence.
    pub(crate) interval: Duration,
    /// Shared auth token for the control link (`None` MACs under the
    /// empty key, matching an open broker).
    pub(crate) token: Option<Vec<u8>>,
}

/// Handle to the running agent thread; stopping joins it.
pub(crate) struct BrokerAgent {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl BrokerAgent {
    pub(crate) fn start(
        cfg: BrokerAgentConfig,
        shared: Arc<Shared>,
        pool: Arc<GpuPool>,
    ) -> BrokerAgent {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("rcuda-broker-agent".into())
            .spawn(move || agent_loop(cfg, shared, pool, thread_stop))
            .expect("spawn broker agent");
        BrokerAgent {
            stop,
            thread: Some(thread),
        }
    }

    pub(crate) fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for BrokerAgent {
    fn drop(&mut self) {
        self.stop();
    }
}

fn agent_loop(cfg: BrokerAgentConfig, shared: Arc<Shared>, pool: Arc<GpuPool>, stop: AtomicStop) {
    let capacity: u64 = pool
        .devices()
        .iter()
        .map(|d| d.properties().total_global_mem.0)
        .sum();
    // Jitter state for reconnect backoff: any nonzero xorshift seed works;
    // wall time keeps a daemon fleet from thundering at a recovering
    // broker in lockstep.
    let mut rng = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0x9E37_79B9, |d| d.as_nanos() as u64)
        | 1;
    while !stop.load(Ordering::SeqCst) {
        if let Ok(mut link) =
            DaemonLink::connect(cfg.broker, cfg.token.as_deref(), &cfg.advertise, capacity)
        {
            let io_timeout = (cfg.interval * 4).max(Duration::from_secs(1));
            let _ = link.set_timeout(Some(io_timeout));
            while !stop.load(Ordering::SeqCst) {
                let hb = heartbeat_snapshot(&shared, &pool);
                let commands = match link.heartbeat(&hb) {
                    Ok(commands) => commands,
                    // Registration lost (broker restart, network fault):
                    // fall through to the re-register backoff.
                    Err(_) => break,
                };
                for command in commands {
                    match command {
                        BrokerCommand::MigrateOut { session, target } => {
                            // A failed ship re-parks the session locally;
                            // the broker keeps seeing it here in the next
                            // heartbeat and may re-order the move.
                            let _ = migrate_out_shared(&shared, session, &target);
                        }
                    }
                }
                sleep_interruptibly(cfg.interval, &stop);
            }
        }
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let backoff = cfg.interval + Duration::from_millis(rng % 64);
        sleep_interruptibly(backoff, &stop);
    }
}

type AtomicStop = Arc<AtomicBool>;

/// One heartbeat's worth of daemon state.
fn heartbeat_snapshot(shared: &Shared, pool: &GpuPool) -> Heartbeat {
    let c = &shared.counters;
    let mut sessions = shared.registry.parked_tokens();
    sessions.extend(shared.live_tokens.lock().iter().copied());
    sessions.sort_unstable();
    sessions.dedup();
    let free_bytes = pool
        .devices()
        .iter()
        .map(|d| {
            d.properties()
                .total_global_mem
                .0
                .saturating_sub(d.ledger().live_bytes())
        })
        .sum();
    Heartbeat {
        live_sessions: c.live.load(Ordering::SeqCst) as u32,
        parked: shared.registry.parked_count() as u32,
        free_bytes,
        served: shared.sessions_served.load(Ordering::SeqCst),
        draining: shared.draining.load(Ordering::SeqCst),
        sessions,
    }
}

/// Sleep in slices so a stop request is honored within ~5 ms.
fn sleep_interruptibly(total: Duration, stop: &AtomicBool) {
    let deadline = Instant::now() + total;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
    }
}
