//! Compute kernels for the two case studies (paper §IV-B).
//!
//! * **MM** — single-precision dense matrix-matrix product. The paper runs
//!   Intel MKL on the CPU (8 cores) and Volkov's SGEMM on the GPU; here both
//!   roles are served by real Rust implementations: a cache-blocked,
//!   multithreaded SGEMM ([`matrix::CpuSgemm`]) as the MKL stand-in, and a
//!   register-tiled single-threaded variant executed by the simulated GPU
//!   engine.
//! * **FFT** — batches of 512-point single-precision complex 1-D FFTs. The
//!   paper runs FFTW on the CPU and Volkov's FFT on the GPU; here an
//!   iterative radix-2 Cooley–Tukey transform serves both.
//!
//! Beyond the paper's two case studies, [`transformer`] adds the row-wise
//! softmax and layer-normalization primitives the AI-inference workload
//! suite (`rcuda-workloads`) interleaves between its GEMM chains, and
//! [`nbody`] a direct-summation gravity kernel.
//!
//! Numerical correctness is what matters for the middleware (remote results
//! must equal local results); wall-clock performance of these kernels is
//! *not* used to reproduce the paper's tables — timing there comes from the
//! calibrated cost models in `rcuda-model`.

pub mod complex;
pub mod fft;
pub mod matrix;
pub mod nbody;
pub mod transformer;
pub mod workload;

pub use complex::Complex32;
pub use fft::{dft_naive, fft_batch_512, fft_forward, fft_inverse, Fft};
pub use matrix::{sgemm_blocked, sgemm_naive, sgemm_tiled_gpu, CpuSgemm, Matrix};
pub use nbody::{nbody_accelerations, nbody_input, nbody_step};
pub use transformer::{layernorm_rows, softmax_rows};
pub use workload::{fft_input, matrix_pair, Workload};
