//! Single-precision dense matrix-matrix product (`C = A · B`).
//!
//! Three implementations with one contract:
//!
//! * [`sgemm_naive`] — triple loop; the oracle for tests.
//! * [`sgemm_blocked`] — cache-blocked ikj ordering; the building block.
//! * [`CpuSgemm`] — blocked + multithreaded over row panels; stands in for
//!   the paper's 8-core MKL runs.
//! * [`sgemm_tiled_gpu`] — the register-tiled variant the simulated GPU
//!   engine executes (the functional stand-in for Volkov's SGEMM kernel).
//!
//! All operate on row-major `f32` buffers and accumulate in `f32`, like the
//! single-precision BLAS they emulate; tests therefore compare with a
//! dimension-scaled tolerance.

use std::thread;

/// A row-major `rows × cols` single-precision matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wrap an existing buffer. Panics if the length does not match.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer/shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Max absolute element-wise difference against another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Oracle: naive `O(m·n·k)` triple loop. `a` is `m×k`, `b` is `k×n`,
/// `c` is `m×n`, all row-major; `c` is overwritten.
pub fn sgemm_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_shapes(m, n, k, a, b, c);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[i * k + l] * b[l * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Cache-block edge length. 64×64 f32 panels (16 KiB) keep three blocks
/// comfortably inside a typical L1/L2 working set.
const BLOCK: usize = 64;

/// Cache-blocked ikj SGEMM.
pub fn sgemm_blocked(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_shapes(m, n, k, a, b, c);
    c.fill(0.0);
    sgemm_blocked_accumulate(m, n, k, a, b, c);
}

/// Blocked kernel accumulating into a pre-initialized `c` (used by both the
/// sequential entry point and the threaded row panels).
fn sgemm_blocked_accumulate(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for ii in (0..m).step_by(BLOCK) {
        let i_end = (ii + BLOCK).min(m);
        for ll in (0..k).step_by(BLOCK) {
            let l_end = (ll + BLOCK).min(k);
            for jj in (0..n).step_by(BLOCK) {
                let j_end = (jj + BLOCK).min(n);
                for i in ii..i_end {
                    let a_row = &a[i * k..i * k + k];
                    let c_row = &mut c[i * n..i * n + n];
                    for l in ll..l_end {
                        let av = a_row[l];
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b[l * n..l * n + n];
                        for j in jj..j_end {
                            c_row[j] += av * b_row[j];
                        }
                    }
                }
            }
        }
    }
}

/// The MKL stand-in: blocked SGEMM parallelized over row panels.
pub struct CpuSgemm {
    threads: usize,
}

impl CpuSgemm {
    /// Use up to `threads` worker threads (the paper's CPU baseline uses 8).
    pub fn new(threads: usize) -> Self {
        CpuSgemm {
            threads: threads.max(1),
        }
    }

    /// Use all available parallelism.
    pub fn auto() -> Self {
        CpuSgemm::new(
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// `C = A · B` with `a: m×k`, `b: k×n`, `c: m×n` row-major.
    pub fn run(&self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        check_shapes(m, n, k, a, b, c);
        c.fill(0.0);
        let workers = self.threads.min(m).max(1);
        if workers == 1 {
            sgemm_blocked_accumulate(m, n, k, a, b, c);
            return;
        }
        // Split C (and A) into contiguous row panels, one per worker: each
        // thread owns a disjoint &mut of c, so no synchronization is needed.
        let rows_per = m.div_ceil(workers);
        thread::scope(|scope| {
            let mut c_rest = &mut c[..];
            let mut row = 0;
            while row < m {
                let panel_rows = rows_per.min(m - row);
                let (c_panel, rest) = c_rest.split_at_mut(panel_rows * n);
                c_rest = rest;
                let a_panel = &a[row * k..(row + panel_rows) * k];
                scope.spawn(move || {
                    sgemm_blocked_accumulate(panel_rows, n, k, a_panel, b, c_panel);
                });
                row += panel_rows;
            }
        });
    }
}

/// Register-tiled single-threaded SGEMM — the functional stand-in for the
/// Volkov GPU kernel that the simulated device executes. Computes 4×4 C
/// tiles in registers with k-unrolled inner products.
pub fn sgemm_tiled_gpu(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_shapes(m, n, k, a, b, c);
    c.fill(0.0);
    const T: usize = 4;
    let mut i = 0;
    while i < m {
        let ih = T.min(m - i);
        let mut j = 0;
        while j < n {
            let jw = T.min(n - j);
            let mut acc = [[0.0f32; T]; T];
            for l in 0..k {
                let mut a_col = [0.0f32; T];
                for (ti, av) in a_col.iter_mut().enumerate().take(ih) {
                    *av = a[(i + ti) * k + l];
                }
                let b_row = &b[l * n + j..l * n + j + jw];
                for ti in 0..ih {
                    let av = a_col[ti];
                    for tj in 0..jw {
                        acc[ti][tj] += av * b_row[tj];
                    }
                }
            }
            for ti in 0..ih {
                for tj in 0..jw {
                    c[(i + ti) * n + j + tj] = acc[ti][tj];
                }
            }
            j += T;
        }
        i += T;
    }
}

fn check_shapes(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &[f32]) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::matrix_pair;

    /// f32 accumulation over k terms: allow k·eps·scale.
    fn tol(k: usize) -> f32 {
        k as f32 * 1e-6 * 4.0
    }

    fn oracle(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        sgemm_naive(m, n, k, a, b, &mut c);
        c
    }

    #[test]
    fn identity_is_neutral() {
        let (a, _) = matrix_pair(16, 1);
        let i = Matrix::identity(16);
        let mut c = vec![0.0; 256];
        sgemm_blocked(16, 16, 16, a.as_slice(), i.as_slice(), &mut c);
        assert_eq!(c, a.as_slice());
        sgemm_tiled_gpu(16, 16, 16, i.as_slice(), a.as_slice(), &mut c);
        assert_eq!(c, a.as_slice());
    }

    #[test]
    fn blocked_matches_naive_square() {
        for m in [1usize, 3, 17, 64, 100, 130] {
            let (a, b) = matrix_pair(m, 7);
            let expect = oracle(m, m, m, a.as_slice(), b.as_slice());
            let mut c = vec![0.0; m * m];
            sgemm_blocked(m, m, m, a.as_slice(), b.as_slice(), &mut c);
            let diff = c
                .iter()
                .zip(&expect)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(diff <= tol(m), "m={m}: diff {diff}");
        }
    }

    #[test]
    fn tiled_gpu_matches_naive_rectangular() {
        // Exercise all tile-edge remainders.
        for (m, n, k) in [(5, 7, 9), (8, 8, 8), (13, 4, 21), (1, 1, 1), (4, 9, 2)] {
            let (a, _) = matrix_pair(32, 3);
            let a = &a.as_slice()[..m * k];
            let (b, _) = matrix_pair(32, 4);
            let b = &b.as_slice()[..k * n];
            let expect = oracle(m, n, k, a, b);
            let mut c = vec![0.0; m * n];
            sgemm_tiled_gpu(m, n, k, a, b, &mut c);
            let diff = c
                .iter()
                .zip(&expect)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(diff <= tol(k), "({m},{n},{k}): diff {diff}");
        }
    }

    #[test]
    fn threaded_matches_blocked() {
        let m = 97; // deliberately not a multiple of thread count or block
        let (a, b) = matrix_pair(m, 11);
        let mut seq = vec![0.0; m * m];
        sgemm_blocked(m, m, m, a.as_slice(), b.as_slice(), &mut seq);
        for threads in [1, 2, 3, 8, 97, 200] {
            let mut par = vec![0.0; m * m];
            CpuSgemm::new(threads).run(m, m, m, a.as_slice(), b.as_slice(), &mut par);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn zero_sized_edges() {
        // m = 0 produces an empty C without panicking.
        let mut c: Vec<f32> = vec![];
        sgemm_blocked(0, 0, 0, &[], &[], &mut c);
        CpuSgemm::new(4).run(0, 0, 0, &[], &[], &mut c);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "m×k")]
    fn shape_mismatch_panics() {
        let mut c = vec![0.0; 4];
        sgemm_naive(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c);
    }

    #[test]
    fn matrix_accessors() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        let v = m.clone().into_vec();
        assert_eq!(v.len(), 6);
        let m2 = Matrix::from_vec(2, 3, v);
        assert_eq!(m2.max_abs_diff(&m), 0.0);
    }
}
