//! Iterative radix-2 complex FFT, and the paper's batched 512-point case.
//!
//! The plan ([`Fft`]) precomputes bit-reversal and twiddle tables once —
//! like FFTW's planning stage — and then transforms any number of
//! `n`-point signals in place. [`fft_batch_512`] is the case-study entry
//! point: `batch` independent 512-point transforms over one contiguous
//! buffer, the exact workload the paper offloads ("we compute 512 points on
//! each FFT operation", §IV-B).

use crate::complex::Complex32;

/// A reusable FFT plan for power-of-two sizes.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// Bit-reversal permutation indices.
    rev: Vec<u32>,
    /// Twiddles for the forward transform, grouped per butterfly stage:
    /// stage s (half-size h = 2^s) uses `twiddles[h + j]` for j in 0..h.
    twiddles: Vec<Complex32>,
}

impl Fft {
    /// Plan an `n`-point transform. Panics unless `n` is a power of two ≥ 1.
    pub fn plan(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT size must be a power of two");
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        // Twiddle layout: a flat table where the stage with half-size h
        // occupies [h, 2h). Total size 2n (h = 1, 2, ..., n/2).
        let mut twiddles = vec![Complex32::ZERO; n.max(2)];
        let mut h = 1;
        while h < n {
            for j in 0..h {
                let theta = -std::f32::consts::PI * j as f32 / h as f32;
                twiddles[h + j] = Complex32::cis(theta);
            }
            h *= 2;
        }
        Fft { n, rev, twiddles }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT of one `n`-point signal.
    pub fn forward(&self, data: &mut [Complex32]) {
        self.transform(data, false);
    }

    /// In-place inverse DFT (including the `1/n` normalization).
    pub fn inverse(&self, data: &mut [Complex32]) {
        self.transform(data, true);
        let scale = 1.0 / self.n as f32;
        for v in data.iter_mut() {
            *v = v.scale(scale);
        }
    }

    /// In-place forward transform of `batch` signals laid out back-to-back
    /// in one buffer — the case-study memory layout.
    pub fn forward_batch(&self, data: &mut [Complex32]) {
        assert_eq!(
            data.len() % self.n,
            0,
            "batch buffer must be a multiple of the transform size"
        );
        for chunk in data.chunks_exact_mut(self.n) {
            self.forward(chunk);
        }
    }

    fn transform(&self, data: &mut [Complex32], inverse: bool) {
        assert_eq!(data.len(), self.n, "buffer length must equal plan size");
        let n = self.n;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative butterflies.
        let mut h = 1;
        while h < n {
            for start in (0..n).step_by(2 * h) {
                for j in 0..h {
                    let w = if inverse {
                        self.twiddles[h + j].conj()
                    } else {
                        self.twiddles[h + j]
                    };
                    let u = data[start + j];
                    let t = w * data[start + j + h];
                    data[start + j] = u + t;
                    data[start + j + h] = u - t;
                }
            }
            h *= 2;
        }
    }
}

/// Convenience: forward-transform one signal (planning internally).
pub fn fft_forward(data: &mut [Complex32]) {
    Fft::plan(data.len()).forward(data);
}

/// Convenience: inverse-transform one signal (planning internally).
pub fn fft_inverse(data: &mut [Complex32]) {
    Fft::plan(data.len()).inverse(data);
}

/// The case-study kernel: `batch` independent 512-point forward FFTs over a
/// contiguous buffer of `512·batch` points.
pub fn fft_batch_512(data: &mut [Complex32]) {
    assert_eq!(data.len() % 512, 0, "buffer must hold whole 512-pt signals");
    Fft::plan(512).forward_batch(data);
}

/// Oracle: the O(n²) direct DFT definition.
pub fn dft_naive(input: &[Complex32]) -> Vec<Complex32> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex32::ZERO;
            for (j, &x) in input.iter().enumerate() {
                // Accumulate angles in f64 to keep the oracle itself honest.
                let theta = -2.0 * std::f64::consts::PI * (k as f64) * (j as f64) / n as f64;
                acc += x * Complex32::cis(theta as f32);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::fft_input;

    fn max_err(a: &[Complex32], b: &[Complex32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn impulse_transforms_to_all_ones() {
        let mut data = vec![Complex32::ZERO; 8];
        data[0] = Complex32::ONE;
        fft_forward(&mut data);
        for v in &data {
            assert!((v.re - 1.0).abs() < 1e-6 && v.im.abs() < 1e-6, "{v}");
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let mut data = vec![Complex32::ONE; 16];
        fft_forward(&mut data);
        assert!((data[0].re - 16.0).abs() < 1e-4);
        for v in &data[1..] {
            assert!(v.abs() < 1e-4, "{v}");
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let mut data: Vec<Complex32> = (0..n)
            .map(|j| Complex32::cis(std::f32::consts::TAU * (k * j) as f32 / n as f32))
            .collect();
        fft_forward(&mut data);
        assert!((data[k].re - n as f32).abs() < 1e-2, "{}", data[k]);
        for (i, v) in data.iter().enumerate() {
            if i != k {
                assert!(v.abs() < 1e-2, "bin {i}: {v}");
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 32, 128, 512] {
            let input = fft_input(n / 512 + 1, 42)[..n].to_vec();
            let expect = dft_naive(&input);
            let mut data = input.clone();
            fft_forward(&mut data);
            let err = max_err(&data, &expect);
            assert!(err < n as f32 * 1e-4, "n={n}: err {err}");
        }
    }

    #[test]
    fn inverse_round_trips() {
        let input = fft_input(1, 7); // one 512-point signal
        let mut data = input.clone();
        fft_forward(&mut data);
        fft_inverse(&mut data);
        let err = max_err(&data, &input);
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let input = fft_input(1, 3);
        let time_energy: f64 = input.iter().map(|c| c.norm_sqr() as f64).sum();
        let mut data = input;
        fft_forward(&mut data);
        let freq_energy: f64 = data.iter().map(|c| c.norm_sqr() as f64).sum::<f64>() / 512.0;
        let rel = (time_energy - freq_energy).abs() / time_energy;
        assert!(rel < 1e-5, "rel energy error {rel}");
    }

    #[test]
    fn batch_equals_per_signal_transforms() {
        let batch = 5;
        let input = fft_input(batch, 9);
        let mut batched = input.clone();
        fft_batch_512(&mut batched);
        for (i, chunk) in input.chunks_exact(512).enumerate() {
            let mut single = chunk.to_vec();
            fft_forward(&mut single);
            let err = max_err(&single, &batched[i * 512..(i + 1) * 512]);
            assert!(err == 0.0, "signal {i}: err {err}");
        }
    }

    #[test]
    fn plan_reuse_is_deterministic() {
        let plan = Fft::plan(512);
        let input = fft_input(1, 11);
        let mut a = input.clone();
        let mut b = input;
        plan.forward(&mut a);
        plan.forward(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn size_one_is_identity() {
        let mut data = vec![Complex32::new(3.0, -1.0)];
        fft_forward(&mut data);
        assert_eq!(data[0], Complex32::new(3.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Fft::plan(100);
    }

    #[test]
    #[should_panic(expected = "whole 512")]
    fn ragged_batch_rejected() {
        let mut data = vec![Complex32::ZERO; 700];
        fft_batch_512(&mut data);
    }
}
