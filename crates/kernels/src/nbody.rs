//! Direct-summation N-body gravity — a third workload family, beyond the
//! paper's two case studies.
//!
//! The paper's future work wants the study extended "over a wide range of
//! applications" (§VII). N-body is the interesting middle ground: O(n²)
//! compute over O(n) data, so it is even more transfer-friendly than MM —
//! the planner should find it profitable to remote on every network.
//!
//! Layout: bodies are packed as 4 `f32`s (`x, y, z, mass`), accelerations
//! as 3 `f32`s — the classic GPU-gems layout, 16 B in / 12 B out per body.

/// `f32`s per body in the input layout.
pub const BODY_STRIDE: usize = 4;

/// `f32`s per body in the acceleration output.
pub const ACCEL_STRIDE: usize = 3;

/// Compute gravitational accelerations by direct summation.
///
/// `bodies` holds `n` packed bodies, `accel` receives `n` packed
/// accelerations. `softening` is the usual Plummer softening length that
/// keeps close encounters finite (must be positive).
pub fn nbody_accelerations(bodies: &[f32], accel: &mut [f32], softening: f32) {
    assert!(softening > 0.0, "softening must be positive");
    assert_eq!(bodies.len() % BODY_STRIDE, 0, "ragged body buffer");
    let n = bodies.len() / BODY_STRIDE;
    assert_eq!(accel.len(), n * ACCEL_STRIDE, "accel buffer must hold 3·n");
    let eps2 = softening * softening;

    for i in 0..n {
        let (xi, yi, zi) = (
            bodies[i * BODY_STRIDE],
            bodies[i * BODY_STRIDE + 1],
            bodies[i * BODY_STRIDE + 2],
        );
        // f64 accumulation: n² tiny contributions would otherwise lose
        // the far field entirely in f32.
        let (mut ax, mut ay, mut az) = (0.0f64, 0.0f64, 0.0f64);
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = bodies[j * BODY_STRIDE] - xi;
            let dy = bodies[j * BODY_STRIDE + 1] - yi;
            let dz = bodies[j * BODY_STRIDE + 2] - zi;
            let m = bodies[j * BODY_STRIDE + 3];
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            let inv_r = 1.0 / r2.sqrt();
            let s = m * inv_r * inv_r * inv_r;
            ax += (s * dx) as f64;
            ay += (s * dy) as f64;
            az += (s * dz) as f64;
        }
        accel[i * ACCEL_STRIDE] = ax as f32;
        accel[i * ACCEL_STRIDE + 1] = ay as f32;
        accel[i * ACCEL_STRIDE + 2] = az as f32;
    }
}

/// One leapfrog (kick-drift) integration step over packed position and
/// velocity buffers — used by tests to check energy behavior, and by the
/// examples to animate a plummer sphere.
pub fn nbody_step(bodies: &mut [f32], velocities: &mut [f32], dt: f32, softening: f32) {
    let n = bodies.len() / BODY_STRIDE;
    assert_eq!(velocities.len(), n * ACCEL_STRIDE);
    let mut accel = vec![0.0f32; n * ACCEL_STRIDE];
    nbody_accelerations(bodies, &mut accel, softening);
    for i in 0..n {
        for d in 0..3 {
            velocities[i * ACCEL_STRIDE + d] += accel[i * ACCEL_STRIDE + d] * dt;
            bodies[i * BODY_STRIDE + d] += velocities[i * ACCEL_STRIDE + d] * dt;
        }
    }
}

/// Deterministic body generator: positions in the unit cube, masses in
/// `[0.5, 1.5)`.
pub fn nbody_input(n: usize, seed: u64) -> Vec<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6e62_6f64);
    let mut out = Vec::with_capacity(n * BODY_STRIDE);
    for _ in 0..n {
        out.push(rng.gen_range(-1.0f32..1.0));
        out.push(rng.gen_range(-1.0f32..1.0));
        out.push(rng.gen_range(-1.0f32..1.0));
        out.push(rng.gen_range(0.5f32..1.5));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bodies_attract_along_their_axis() {
        // Unit masses at x = ±1: each accelerates toward the other with
        // |a| = m / (d² + ε²)^{3/2} · d.
        let bodies = vec![
            -1.0, 0.0, 0.0, 1.0, //
            1.0, 0.0, 0.0, 1.0,
        ];
        let mut accel = vec![0.0; 6];
        let eps = 1e-3;
        nbody_accelerations(&bodies, &mut accel, eps);
        let expect = 2.0 / (4.0f32 + eps * eps).powf(1.5);
        assert!((accel[0] - expect).abs() < 1e-5, "{} vs {expect}", accel[0]);
        assert!((accel[3] + expect).abs() < 1e-5);
        // No off-axis components.
        for &a in &[accel[1], accel[2], accel[4], accel[5]] {
            assert_eq!(a, 0.0);
        }
    }

    #[test]
    fn newtons_third_law_conserves_momentum() {
        // Σ mᵢ·aᵢ = 0 for any configuration.
        let bodies = nbody_input(64, 3);
        let mut accel = vec![0.0; 64 * ACCEL_STRIDE];
        nbody_accelerations(&bodies, &mut accel, 0.01);
        for d in 0..3 {
            let total: f64 = (0..64)
                .map(|i| (bodies[i * 4 + 3] * accel[i * 3 + d]) as f64)
                .sum();
            assert!(total.abs() < 1e-3, "axis {d}: Σm·a = {total}");
        }
    }

    #[test]
    fn softening_bounds_close_encounters() {
        // Two coincident bodies: acceleration must stay finite.
        let bodies = vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let mut accel = vec![0.0; 6];
        nbody_accelerations(&bodies, &mut accel, 0.1);
        assert!(accel.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn step_moves_bodies_toward_each_other() {
        let mut bodies = vec![-1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0];
        let mut vel = vec![0.0; 6];
        let before = bodies[4] - bodies[0]; // separation
        for _ in 0..10 {
            nbody_step(&mut bodies, &mut vel, 0.01, 1e-3);
        }
        let after = bodies[4] - bodies[0];
        assert!(after < before, "gravity must contract: {before} -> {after}");
    }

    #[test]
    fn generator_is_deterministic_and_shaped() {
        let a = nbody_input(10, 7);
        assert_eq!(a.len(), 40);
        assert_eq!(a, nbody_input(10, 7));
        assert_ne!(a, nbody_input(10, 8));
        for chunk in a.chunks_exact(4) {
            assert!((0.5..1.5).contains(&chunk[3]), "mass in range");
        }
    }

    #[test]
    #[should_panic(expected = "softening")]
    fn zero_softening_rejected() {
        let mut accel = vec![0.0; 3];
        nbody_accelerations(&[0.0, 0.0, 0.0, 1.0], &mut accel, 0.0);
    }
}
