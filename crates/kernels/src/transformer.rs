//! Transformer-block primitives: row-wise softmax and layer normalization.
//!
//! These are the two kernels modern inference graphs interleave between
//! their GEMMs (arXiv 2401.13354 characterizes exactly this traffic for GPU
//! API remoting); the paper's own case studies never exercise them. Both
//! operate in place on row-major `rows × cols` f32 buffers and are written
//! as straight sequential loops so that the simulated GPU backend and the
//! CPU reference execute the *same* code path — conformance tests compare
//! the two bit-for-bit, including denormal inputs and degenerate 1×1
//! shapes.
//!
//! Determinism notes:
//!
//! * [`softmax_rows`] subtracts the row maximum before exponentiating (the
//!   standard overflow guard), accumulates in f32 left-to-right, and divides
//!   each element by the row sum — no reassociation, no FMA contraction.
//! * [`layernorm_rows`] uses the two-pass mean/variance formulation with an
//!   explicit epsilon inside the square root, again accumulating
//!   left-to-right in f32.

/// In-place row-wise softmax over a row-major `rows × cols` buffer.
///
/// Each row becomes `exp(x − max(row)) / Σ exp(x − max(row))`. A row of
/// identical values (including all-denormal rows) maps to the uniform
/// distribution `1/cols`. Panics if the buffer length is not `rows·cols`.
pub fn softmax_rows(rows: usize, cols: usize, data: &mut [f32]) {
    assert_eq!(data.len(), rows * cols, "buffer must be rows×cols");
    for row in data.chunks_exact_mut(cols.max(1)) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// In-place row-wise layer normalization with learned scale and shift.
///
/// Each row becomes `γ · (x − μ) / √(σ² + ε) + β`, with `μ`/`σ²` the row
/// mean and (biased) variance. `gamma` and `beta` hold one value per
/// column. Panics on shape mismatches or a non-positive `eps`.
pub fn layernorm_rows(
    rows: usize,
    cols: usize,
    data: &mut [f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) {
    assert_eq!(data.len(), rows * cols, "buffer must be rows×cols");
    assert_eq!(gamma.len(), cols, "gamma must have one value per column");
    assert_eq!(beta.len(), cols, "beta must have one value per column");
    assert!(eps > 0.0, "eps must be positive");
    for row in data.chunks_exact_mut(cols.max(1)) {
        let n = cols as f32;
        let mut mean = 0.0f32;
        for v in row.iter() {
            mean += *v;
        }
        mean /= n;
        let mut var = 0.0f32;
        for v in row.iter() {
            let d = *v - mean;
            var += d * d;
        }
        var /= n;
        let inv = 1.0 / (var + eps).sqrt();
        for (v, (g, b)) in row.iter_mut().zip(gamma.iter().zip(beta)) {
            *v = g * ((*v - mean) * inv) + b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = vec![0.5, -1.0, 2.0, 3.0, 0.0, -2.5];
        softmax_rows(2, 3, &mut x);
        for row in x.chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row sums to {sum}");
            assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_ordered() {
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![101.0, 102.0, 103.0];
        softmax_rows(1, 3, &mut a);
        softmax_rows(1, 3, &mut b);
        assert_eq!(a, b, "max subtraction makes shifts exact no-ops");
        assert!(a[0] < a[1] && a[1] < a[2]);
    }

    #[test]
    fn softmax_uniform_and_degenerate_rows() {
        let mut x = vec![7.25; 4];
        softmax_rows(1, 4, &mut x);
        assert_eq!(x, vec![0.25; 4]);
        // 1×1: the only element is the whole distribution.
        let mut one = vec![-3.5];
        softmax_rows(1, 1, &mut one);
        assert_eq!(one, vec![1.0]);
        // Denormals: max subtraction keeps everything finite.
        let mut d = vec![f32::MIN_POSITIVE / 4.0, 0.0, f32::MIN_POSITIVE / 2.0];
        softmax_rows(1, 3, &mut d);
        assert!(d.iter().all(|v| v.is_finite()));
        let sum: f32 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn layernorm_normalizes_each_row() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0];
        let gamma = vec![1.0; 4];
        let beta = vec![0.0; 4];
        layernorm_rows(2, 4, &mut x, &gamma, &beta, 1e-5);
        for row in x.chunks(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "normalized mean ≈ 0, got {mean}");
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!((var - 1.0).abs() < 1e-2, "normalized var ≈ 1, got {var}");
        }
    }

    #[test]
    fn layernorm_applies_gamma_and_beta() {
        let mut x = vec![-1.0, 1.0];
        layernorm_rows(1, 2, &mut x, &[2.0, 2.0], &[5.0, 5.0], 1e-5);
        assert!((x[0] - 3.0).abs() < 1e-2, "{}", x[0]);
        assert!((x[1] - 7.0).abs() < 1e-2, "{}", x[1]);
    }

    #[test]
    fn layernorm_constant_row_maps_to_beta() {
        // Variance 0: the epsilon keeps the division finite and the output
        // collapses to beta.
        let mut x = vec![4.0; 3];
        layernorm_rows(1, 3, &mut x, &[1.5; 3], &[0.25; 3], 1e-5);
        assert!(x.iter().all(|v| (v - 0.25).abs() < 1e-5), "{x:?}");
    }

    #[test]
    #[should_panic(expected = "rows×cols")]
    fn softmax_shape_mismatch_panics() {
        softmax_rows(2, 3, &mut [0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "per column")]
    fn layernorm_shape_mismatch_panics() {
        layernorm_rows(1, 3, &mut [0.0; 3], &[1.0; 2], &[0.0; 3], 1e-5);
    }
}
