//! Single-precision complex numbers (the FFT case study's element type:
//! "single precision floating-point complex points", 8 bytes each).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A single-precision complex number; exactly 8 bytes, matching the paper's
/// `(8 × 512)·n` byte accounting for the FFT payload.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex32 {
    pub re: f32,
    pub im: f32,
}

impl Complex32 {
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };
    pub const I: Complex32 = Complex32 { re: 0.0, im: 1.0 };

    pub const fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// `e^{iθ}` — the twiddle-factor constructor.
    pub fn cis(theta: f32) -> Self {
        Complex32 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    pub fn conj(self) -> Self {
        Complex32 {
            re: self.re,
            im: -self.im,
        }
    }

    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f32) -> Self {
        Complex32 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex32 {
    fn add_assign(&mut self, rhs: Complex32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    fn neg(self) -> Complex32 {
        Complex32 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl fmt::Display for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// View a complex slice as its byte payload (for memcpy over the wire).
pub fn complex_to_bytes(data: &[Complex32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 8);
    for c in data {
        out.extend_from_slice(&c.re.to_le_bytes());
        out.extend_from_slice(&c.im.to_le_bytes());
    }
    out
}

/// Rebuild a complex slice from its byte payload.
pub fn bytes_to_complex(bytes: &[u8]) -> Option<Vec<Complex32>> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| {
                Complex32::new(
                    f32::from_le_bytes(c[0..4].try_into().unwrap()),
                    f32::from_le_bytes(c[4..8].try_into().unwrap()),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_is_8_bytes() {
        // Table II: FFT payload is (8 × 512)·n bytes.
        assert_eq!(std::mem::size_of::<Complex32>(), 8);
    }

    #[test]
    fn field_arithmetic() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(3.0, -1.0);
        assert_eq!(a + b, Complex32::new(4.0, 1.0));
        assert_eq!(a - b, Complex32::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex32::new(5.0, 5.0));
        assert_eq!(-a, Complex32::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex32::new(1.0, -2.0));
        assert_eq!(a.norm_sqr(), 5.0);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex32::I * Complex32::I, -Complex32::ONE);
    }

    #[test]
    fn cis_lies_on_the_unit_circle() {
        for k in 0..16 {
            let theta = k as f32 * std::f32::consts::TAU / 16.0;
            let c = Complex32::cis(theta);
            assert!((c.abs() - 1.0).abs() < 1e-6);
        }
        let c = Complex32::cis(std::f32::consts::FRAC_PI_2);
        assert!((c.re).abs() < 1e-6 && (c.im - 1.0).abs() < 1e-6);
    }

    #[test]
    fn byte_round_trip() {
        let data = vec![
            Complex32::new(1.0, -2.0),
            Complex32::new(0.5, 3.25),
            Complex32::ZERO,
        ];
        let bytes = complex_to_bytes(&data);
        assert_eq!(bytes.len(), 24);
        assert_eq!(bytes_to_complex(&bytes).unwrap(), data);
        assert!(bytes_to_complex(&bytes[..20]).is_none());
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex32::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex32::new(1.0, -2.0).to_string(), "1-2i");
    }
}
