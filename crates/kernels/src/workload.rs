//! Deterministic workload generation for the case studies.
//!
//! The paper's fixed time includes "random data generation" (§V); here the
//! generators are seeded so that a remote execution and its local reference
//! can be compared bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcuda_core::CaseStudy;

use crate::complex::Complex32;
use crate::matrix::Matrix;

/// Generate the two input matrices of an `m×m` MM case study.
pub fn matrix_pair(m: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = |_| {
        let data: Vec<f32> = (0..m * m).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        Matrix::from_vec(m, m, data)
    };
    (gen(0), gen(1))
}

/// Generate a batch of `batch` 512-point complex input signals.
pub fn fft_input(batch: usize, seed: u64) -> Vec<Complex32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0f_f7_0f_ff);
    (0..batch * 512)
        .map(|_| Complex32::new(rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)))
        .collect()
}

/// A concrete, generated case-study instance ready to run.
#[derive(Debug, Clone)]
pub enum Workload {
    MatMul {
        m: usize,
        a: Matrix,
        b: Matrix,
    },
    Fft {
        batch: usize,
        input: Vec<Complex32>,
    },
    /// The extension workload (not in the paper's case studies): `n`
    /// packed bodies for direct-summation gravity.
    NBody {
        n: usize,
        bodies: Vec<f32>,
    },
}

impl Workload {
    /// Generate data for a [`CaseStudy`] with a seed.
    pub fn generate(case: CaseStudy, seed: u64) -> Self {
        match case {
            CaseStudy::MatMul { dim } => {
                let (a, b) = matrix_pair(dim as usize, seed);
                Workload::MatMul {
                    m: dim as usize,
                    a,
                    b,
                }
            }
            CaseStudy::Fft { batch } => Workload::Fft {
                batch: batch as usize,
                input: fft_input(batch as usize, seed),
            },
        }
    }

    /// Generate the extension N-body workload.
    pub fn generate_nbody(n: usize, seed: u64) -> Self {
        Workload::NBody {
            n,
            bodies: crate::nbody::nbody_input(n, seed),
        }
    }

    /// The case-study descriptor this workload realizes (`None` for
    /// workloads outside the paper's two case studies).
    pub fn case(&self) -> Option<CaseStudy> {
        match self {
            Workload::MatMul { m, .. } => Some(CaseStudy::MatMul { dim: *m as u32 }),
            Workload::Fft { batch, .. } => Some(CaseStudy::Fft {
                batch: *batch as u32,
            }),
            Workload::NBody { .. } => None,
        }
    }

    /// Total bytes this workload moves over the interconnect per execution.
    pub fn transfer_bytes(&self) -> u64 {
        match self {
            Workload::MatMul { m, .. } => 3 * 4 * (*m as u64) * (*m as u64),
            Workload::Fft { batch, .. } => 2 * 4096 * *batch as u64,
            // 16 B/body in, 12 B/body out.
            Workload::NBody { n, .. } => 28 * *n as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_pair_is_seed_deterministic() {
        let (a1, b1) = matrix_pair(8, 5);
        let (a2, b2) = matrix_pair(8, 5);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        let (a3, _) = matrix_pair(8, 6);
        assert_ne!(a1, a3);
    }

    #[test]
    fn matrices_are_distinct_and_bounded() {
        let (a, b) = matrix_pair(16, 1);
        assert_ne!(a, b, "A and B must differ");
        assert!(a.as_slice().iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn fft_input_shape_and_determinism() {
        let x = fft_input(3, 2);
        assert_eq!(x.len(), 3 * 512);
        assert_eq!(x, fft_input(3, 2));
        assert_ne!(x, fft_input(3, 3));
    }

    #[test]
    fn workload_round_trips_case() {
        let w = Workload::generate(CaseStudy::MatMul { dim: 8 }, 1);
        assert_eq!(w.case(), Some(CaseStudy::MatMul { dim: 8 }));
        assert_eq!(w.transfer_bytes(), 3 * 4 * 64);
        let w = Workload::generate(CaseStudy::Fft { batch: 2 }, 1);
        assert_eq!(w.case(), Some(CaseStudy::Fft { batch: 2 }));
        assert_eq!(w.transfer_bytes(), 2 * 4096 * 2);
        if let Workload::Fft { input, .. } = w {
            assert_eq!(input.len(), 1024);
        }
    }

    #[test]
    fn nbody_workload_is_outside_the_paper_grid() {
        let w = Workload::generate_nbody(100, 4);
        assert_eq!(w.case(), None);
        assert_eq!(w.transfer_bytes(), 2800);
        if let Workload::NBody { bodies, .. } = w {
            assert_eq!(bodies.len(), 400);
        }
    }
}
