//! Property tests on the compute kernels' mathematical invariants.

use proptest::prelude::*;
use rcuda_kernels::complex::Complex32;
use rcuda_kernels::fft::{fft_forward, fft_inverse, Fft};
use rcuda_kernels::matrix::{sgemm_blocked, sgemm_naive, sgemm_tiled_gpu, CpuSgemm, Matrix};

fn arb_signal(n: usize) -> impl Strategy<Value = Vec<Complex32>> {
    proptest::collection::vec(
        (-100.0f32..100.0, -100.0f32..100.0).prop_map(|(re, im)| Complex32::new(re, im)),
        n..=n,
    )
}

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols..=rows * cols)
}

fn max_err(a: &[Complex32], b: &[Complex32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f32::max)
}

proptest! {
    /// FFT is linear: FFT(αx + y) = α·FFT(x) + FFT(y).
    #[test]
    fn fft_is_linear(x in arb_signal(128), y in arb_signal(128), alpha in -4.0f32..4.0) {
        let mut combo: Vec<Complex32> = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| xi.scale(alpha) + *yi)
            .collect();
        fft_forward(&mut combo);

        let mut fx = x;
        fft_forward(&mut fx);
        let mut fy = y;
        fft_forward(&mut fy);
        let expect: Vec<Complex32> = fx
            .iter()
            .zip(&fy)
            .map(|(a, b)| a.scale(alpha) + *b)
            .collect();
        prop_assert!(max_err(&combo, &expect) < 0.3, "err {}", max_err(&combo, &expect));
    }

    /// Inverse undoes forward for arbitrary signals.
    #[test]
    fn fft_inverse_round_trip(x in arb_signal(256)) {
        let mut data = x.clone();
        fft_forward(&mut data);
        fft_inverse(&mut data);
        prop_assert!(max_err(&data, &x) < 0.05);
    }

    /// Parseval: energy preserved up to the 1/n convention.
    #[test]
    fn fft_parseval(x in arb_signal(64)) {
        let time: f64 = x.iter().map(|c| c.norm_sqr() as f64).sum();
        let mut data = x;
        fft_forward(&mut data);
        let freq: f64 = data.iter().map(|c| c.norm_sqr() as f64).sum::<f64>() / 64.0;
        // Allow tiny relative error; handle the all-zero signal.
        prop_assert!((time - freq).abs() <= 1e-3 * time.max(1.0));
    }

    /// Circular time shift multiplies the spectrum by a unit-modulus phase:
    /// magnitudes are invariant.
    #[test]
    fn fft_shift_preserves_magnitudes(x in arb_signal(64), shift in 0usize..64) {
        let mut orig = x.clone();
        fft_forward(&mut orig);
        let mut shifted: Vec<Complex32> = (0..64).map(|i| x[(i + shift) % 64]).collect();
        fft_forward(&mut shifted);
        for (a, b) in orig.iter().zip(&shifted) {
            prop_assert!((a.abs() - b.abs()).abs() < 0.2, "{} vs {}", a.abs(), b.abs());
        }
    }

    /// Batched transform of one plan equals independent transforms.
    #[test]
    fn batch_decomposes(x in arb_signal(3 * 64)) {
        let plan = Fft::plan(64);
        let mut batched = x.clone();
        plan.forward_batch(&mut batched);
        for (i, chunk) in x.chunks_exact(64).enumerate() {
            let mut single = chunk.to_vec();
            plan.forward(&mut single);
            prop_assert_eq!(&single[..], &batched[i * 64..(i + 1) * 64]);
        }
    }

    /// All SGEMM implementations agree on arbitrary rectangular shapes.
    #[test]
    fn sgemm_variants_agree(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..24,
        seed in any::<u64>(),
    ) {
        // Deterministic data from the seed keeps the case shrinkable.
        let a: Vec<f32> = (0..m * k)
            .map(|i| (((seed.wrapping_mul(i as u64 + 1)) % 1000) as f32 - 500.0) / 250.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| (((seed.wrapping_mul(2 * i as u64 + 3)) % 1000) as f32 - 500.0) / 250.0)
            .collect();
        let mut naive = vec![0.0f32; m * n];
        sgemm_naive(m, n, k, &a, &b, &mut naive);
        let mut blocked = vec![0.0f32; m * n];
        sgemm_blocked(m, n, k, &a, &b, &mut blocked);
        let mut tiled = vec![0.0f32; m * n];
        sgemm_tiled_gpu(m, n, k, &a, &b, &mut tiled);
        let tol = k as f32 * 1e-5 * 8.0;
        for i in 0..m * n {
            prop_assert!((naive[i] - blocked[i]).abs() <= tol);
            prop_assert!((naive[i] - tiled[i]).abs() <= tol);
        }
    }

    /// C = A·B distributes over matrix addition in B:
    /// A(B1 + B2) = A·B1 + A·B2.
    #[test]
    fn sgemm_distributes(
        m in 1usize..12,
        b1 in arb_matrix(12, 12),
        b2 in arb_matrix(12, 12),
        a in arb_matrix(12, 12),
    ) {
        let k = 12;
        let n = 12;
        let a = &a[..m * k];
        let sum: Vec<f32> = b1.iter().zip(&b2).map(|(x, y)| x + y).collect();
        let mut left = vec![0.0f32; m * n];
        sgemm_naive(m, n, k, a, &sum, &mut left);
        let mut c1 = vec![0.0f32; m * n];
        sgemm_naive(m, n, k, a, &b1, &mut c1);
        let mut c2 = vec![0.0f32; m * n];
        sgemm_naive(m, n, k, a, &b2, &mut c2);
        for i in 0..m * n {
            prop_assert!((left[i] - (c1[i] + c2[i])).abs() < 0.05);
        }
    }

    /// Threaded SGEMM is bit-identical to the sequential blocked kernel
    /// regardless of thread count (determinism under parallelism).
    #[test]
    fn threaded_sgemm_is_deterministic(
        m in 1usize..40,
        threads in 1usize..9,
        seed in any::<u64>(),
    ) {
        let data: Vec<f32> = (0..m * m)
            .map(|i| ((seed.wrapping_add(i as u64) % 997) as f32) / 997.0)
            .collect();
        let a = Matrix::from_vec(m, m, data.clone());
        let b = Matrix::from_vec(m, m, data);
        let mut seq = vec![0.0f32; m * m];
        sgemm_blocked(m, m, m, a.as_slice(), b.as_slice(), &mut seq);
        let mut par = vec![0.0f32; m * m];
        CpuSgemm::new(threads).run(m, m, m, a.as_slice(), b.as_slice(), &mut par);
        prop_assert_eq!(seq, par);
    }
}
