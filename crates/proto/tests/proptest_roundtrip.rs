//! Property tests: every message encodes/decodes losslessly and its encoded
//! length equals its accounting.

use proptest::prelude::*;
use std::io::{Cursor, Read, Write};

use rcuda_core::{CudaError, Dim3};
use rcuda_proto::batch::BATCH_HEADER_BYTES;
use rcuda_proto::ids::MemcpyKind;
use rcuda_proto::{
    Batch, BatchResponse, BufferPool, Frame, LaunchConfig, Request, Response, SessionHello,
};

/// A reader that delivers its data in caller-chosen chunk sizes — the
/// transport-level shape of partial reads. Once the schedule is exhausted it
/// keeps serving one byte at a time, then EOF.
struct ChunkedReader<'a> {
    data: &'a [u8],
    pos: usize,
    chunks: Vec<usize>,
    next: usize,
}

impl<'a> ChunkedReader<'a> {
    fn new(data: &'a [u8], chunks: Vec<usize>) -> ChunkedReader<'a> {
        ChunkedReader {
            data,
            pos: 0,
            chunks,
            next: 0,
        }
    }
}

impl Read for ChunkedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let chunk = self.chunks.get(self.next).copied().unwrap_or(1).max(1);
        self.next += 1;
        let n = buf.len().min(chunk).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A writer that accepts at most `cap` bytes per `write` call — the
/// transport-level shape of partial writes (exercises `write_all` loops).
struct CappedWriter {
    buf: Vec<u8>,
    cap: usize,
}

impl Write for CappedWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let n = data.len().min(self.cap);
        self.buf.extend_from_slice(&data[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn arb_hello() -> impl Strategy<Value = SessionHello> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..2048)
            .prop_map(|module| SessionHello::Fresh { module }),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(session, module)| SessionHello::Resumable { session, module }),
        any::<u64>().prop_map(|session| SessionHello::Reconnect { session }),
    ]
}

fn arb_dim3() -> impl Strategy<Value = Dim3> {
    (1u32..=1024, 1u32..=1024).prop_map(|(x, y)| Dim3::xy(x, y))
}

fn arb_launch_config() -> impl Strategy<Value = LaunchConfig> {
    (arb_dim3(), arb_dim3(), 0u32..=49152, 0u32..=8).prop_map(|(block, grid, shared, stream)| {
        LaunchConfig {
            texture_offset: 0,
            parameters_offset: 0,
            num_textures: 0,
            block,
            grid,
            shared_bytes: shared,
            stream,
        }
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..4096).prop_map(|module| Request::Init { module }),
        (1u32..=1 << 28).prop_map(|size| Request::Malloc { size }),
        any::<u32>().prop_map(|p| Request::Free {
            ptr: rcuda_core::DevicePtr::new(p)
        }),
        (
            any::<u32>(),
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(dst, src, data)| Request::Memcpy {
                dst,
                src,
                size: data.len() as u32,
                kind: MemcpyKind::HostToDevice,
                data: Some(data.into()),
            }),
        (any::<u32>(), any::<u32>(), 0u32..=1 << 20).prop_map(|(dst, src, size)| {
            Request::Memcpy {
                dst,
                src,
                size,
                kind: MemcpyKind::DeviceToHost,
                data: None,
            }
        }),
        (
            "[a-zA-Z_][a-zA-Z0-9_]{0,30}",
            proptest::collection::vec(any::<u8>(), 0..64),
            arb_launch_config()
        )
            .prop_map(|(name, params, cfg)| Request::launch(&name, &params, cfg)),
        Just(Request::ThreadSynchronize),
        Just(Request::DeviceProps),
        Just(Request::StreamCreate),
        any::<u32>().prop_map(|stream| Request::StreamSynchronize { stream }),
        any::<u32>().prop_map(|stream| Request::StreamDestroy { stream }),
        Just(Request::Quit),
    ]
}

/// Any request that may appear inside a batch: everything but `Init`, which
/// has no selector (it is identified by protocol position in the handshake).
fn arb_batchable_request() -> impl Strategy<Value = Request> {
    arb_request().prop_filter("Init is not batchable", |r| r.function_id().is_some())
}

/// A matching response for `req`, shaped the way the server would answer it;
/// `seed`/`val` pick between success and failure and fill the payload.
fn response_for(req: &Request, seed: u8, val: u32) -> Response {
    let err = CudaError::ALL[seed as usize % CudaError::ALL.len()];
    let fail = seed.is_multiple_of(4);
    match req {
        Request::Malloc { .. } if fail => Response::Malloc(Err(CudaError::MemoryAllocation)),
        Request::Malloc { .. } => Response::Malloc(Ok(rcuda_core::DevicePtr::new(val))),
        Request::Memcpy {
            kind: MemcpyKind::DeviceToHost,
            size,
            ..
        } => {
            if fail {
                Response::MemcpyToHost(Err(CudaError::InvalidDevicePointer))
            } else {
                Response::MemcpyToHost(Ok(vec![seed; *size as usize].into()))
            }
        }
        Request::DeviceProps => Response::DeviceProps(Ok(val.to_le_bytes().to_vec())),
        Request::StreamCreate if fail => Response::StreamCreate(Err(err)),
        Request::StreamCreate => Response::StreamCreate(Ok(val)),
        _ if fail => Response::Ack(Err(err)),
        _ => Response::Ack(Ok(())),
    }
}

proptest! {
    #[test]
    fn batch_round_trip(reqs in proptest::collection::vec(arb_batchable_request(), 0..12)) {
        let batch = Batch::new(reqs.clone()).unwrap();

        // Batching is pure framing: wire size is the 8-byte header plus the
        // sum of the elements' own wire sizes.
        let parts: u64 = reqs.iter().map(Request::wire_bytes).sum();
        prop_assert_eq!(batch.wire_bytes(), BATCH_HEADER_BYTES + parts);

        let mut buf = Vec::new();
        batch.write(&mut buf).unwrap();
        prop_assert_eq!(buf.len() as u64, batch.wire_bytes());

        match Frame::read(&mut Cursor::new(&buf)).unwrap() {
            Frame::Batch(decoded) => prop_assert_eq!(decoded.into_requests(), reqs),
            other => prop_assert!(false, "expected batch frame, got {:?}", other),
        }
    }

    #[test]
    fn batch_response_round_trip(
        elements in proptest::collection::vec(
            (arb_batchable_request(), any::<u8>(), any::<u32>()),
            0..12,
        )
    ) {
        let responses: Vec<Response> = elements
            .iter()
            .map(|(req, seed, val)| response_for(req, *seed, *val))
            .collect();
        let batch =
            Batch::new(elements.into_iter().map(|(req, _, _)| req).collect()).unwrap();
        let resp = BatchResponse { responses };
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();
        prop_assert_eq!(buf.len() as u64, resp.wire_bytes());
        let decoded = BatchResponse::read(&mut Cursor::new(&buf), &batch).unwrap();
        prop_assert_eq!(decoded, resp);
    }

    #[test]
    fn batch_frame_interleaves_with_singles(
        before in arb_batchable_request(),
        packed in proptest::collection::vec(arb_batchable_request(), 1..6),
        after in arb_batchable_request(),
    ) {
        // A stream mixing single and batch frames parses unambiguously.
        let batch = Batch::new(packed).unwrap();
        let mut buf = Vec::new();
        before.write(&mut buf).unwrap();
        batch.write(&mut buf).unwrap();
        after.write(&mut buf).unwrap();

        let mut cursor = Cursor::new(&buf);
        prop_assert_eq!(Frame::read(&mut cursor).unwrap(), Frame::Single(before));
        prop_assert_eq!(Frame::read(&mut cursor).unwrap(), Frame::Batch(batch));
        prop_assert_eq!(Frame::read(&mut cursor).unwrap(), Frame::Single(after));
        prop_assert_eq!(cursor.position() as usize, buf.len());
    }
}

proptest! {
    #[test]
    fn request_round_trip(req in arb_request()) {
        let mut buf = Vec::new();
        req.write(&mut buf).unwrap();
        prop_assert_eq!(buf.len() as u64, req.wire_bytes());
        let decoded = match &req {
            Request::Init { .. } => Request::read_init(&mut Cursor::new(&buf)).unwrap(),
            _ => Request::read(&mut Cursor::new(&buf)).unwrap(),
        };
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn back_to_back_requests_decode_in_order(
        reqs in proptest::collection::vec(arb_request(), 1..8)
    ) {
        // The protocol has no framing: messages must self-delimit so that a
        // stream of them parses unambiguously.
        let mut buf = Vec::new();
        for r in &reqs {
            r.write(&mut buf).unwrap();
        }
        let mut cursor = Cursor::new(&buf);
        for r in &reqs {
            let decoded = match r {
                Request::Init { .. } => Request::read_init(&mut cursor).unwrap(),
                _ => Request::read(&mut cursor).unwrap(),
            };
            prop_assert_eq!(&decoded, r);
        }
        prop_assert_eq!(cursor.position() as usize, buf.len());
    }

    #[test]
    fn ack_response_round_trip(code in prop_oneof![
        Just(Ok(())),
        proptest::sample::select(CudaError::ALL.to_vec()).prop_map(Err)
    ]) {
        let req = Request::ThreadSynchronize;
        let resp = Response::Ack(code);
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();
        prop_assert_eq!(buf.len() as u64, resp.wire_bytes());
        prop_assert_eq!(Response::read(&mut Cursor::new(&buf), &req).unwrap(), resp);
    }

    #[test]
    fn d2h_response_round_trip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let req = Request::Memcpy {
            dst: 0,
            src: 64,
            size: data.len() as u32,
            kind: MemcpyKind::DeviceToHost,
            data: None,
        };
        let resp = Response::MemcpyToHost(Ok(data.into()));
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();
        prop_assert_eq!(buf.len() as u64, resp.wire_bytes());
        prop_assert_eq!(Response::read(&mut Cursor::new(&buf), &req).unwrap(), resp);
    }

    #[test]
    fn hello_round_trips_under_arbitrary_read_splits(
        hello in arb_hello(),
        chunks in proptest::collection::vec(1usize..7, 0..64),
    ) {
        let mut buf = Vec::new();
        hello.write(&mut buf).unwrap();
        prop_assert_eq!(buf.len() as u64, hello.wire_bytes());
        let mut r = ChunkedReader::new(&buf, chunks);
        prop_assert_eq!(SessionHello::read(&mut r).unwrap(), hello);
    }

    #[test]
    fn hello_round_trips_under_partial_writes(hello in arb_hello(), cap in 1usize..9) {
        let mut w = CappedWriter { buf: Vec::new(), cap };
        hello.write(&mut w).unwrap();
        prop_assert_eq!(w.buf.len() as u64, hello.wire_bytes());
        prop_assert_eq!(SessionHello::read(&mut Cursor::new(&w.buf)).unwrap(), hello);
    }

    #[test]
    fn batch_round_trips_under_arbitrary_read_splits(
        reqs in proptest::collection::vec(arb_batchable_request(), 0..8),
        chunks in proptest::collection::vec(1usize..7, 0..128),
        cap in 1usize..9,
    ) {
        let batch = Batch::new(reqs.clone()).unwrap();
        let mut w = CappedWriter { buf: Vec::new(), cap };
        batch.write(&mut w).unwrap();
        let mut r = ChunkedReader::new(&w.buf, chunks);
        match Frame::read(&mut r).unwrap() {
            Frame::Batch(decoded) => prop_assert_eq!(decoded.into_requests(), reqs),
            other => prop_assert!(false, "expected batch frame, got {:?}", other),
        }
    }

    #[test]
    fn corrupted_or_truncated_hello_never_panics(
        hello in arb_hello(),
        flip in any::<usize>(),
        xor in 1u8..=255,
        cut in any::<usize>(),
    ) {
        let mut buf = Vec::new();
        hello.write(&mut buf).unwrap();
        // One byte flipped anywhere — a header byte included — must decode
        // to *something* or to an error, never panic or over-allocate.
        let mut corrupted = buf.clone();
        let i = flip % corrupted.len();
        corrupted[i] ^= xor;
        let _ = SessionHello::read(&mut Cursor::new(&corrupted));
        // Any truncation point: an error, never a panic.
        let keep = cut % buf.len();
        prop_assert!(SessionHello::read(&mut Cursor::new(&buf[..keep])).is_err());
    }

    #[test]
    fn corrupted_or_truncated_batch_never_panics(
        reqs in proptest::collection::vec(arb_batchable_request(), 1..6),
        flip in any::<usize>(),
        xor in 1u8..=255,
        cut in any::<usize>(),
    ) {
        let batch = Batch::new(reqs).unwrap();
        let mut buf = Vec::new();
        batch.write(&mut buf).unwrap();
        let mut corrupted = buf.clone();
        let i = flip % corrupted.len();
        corrupted[i] ^= xor;
        let _ = Frame::read(&mut Cursor::new(&corrupted));
        let keep = cut % buf.len();
        prop_assert!(Frame::read(&mut Cursor::new(&buf[..keep])).is_err());
    }

    #[test]
    fn corrupted_batch_response_count_is_invalid_data(
        reqs in proptest::collection::vec(arb_batchable_request(), 1..6),
        bogus_extra in 1u32..64,
    ) {
        // A response frame whose element count disagrees with the batch must
        // be rejected as a protocol violation, not mis-parsed.
        let batch = Batch::new(reqs.clone()).unwrap();
        let responses: Vec<Response> =
            reqs.iter().map(|r| response_for(r, 1, 0)).collect();
        let resp = BatchResponse { responses };
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();
        buf[..4].copy_from_slice(&(reqs.len() as u32 + bogus_extra).to_le_bytes());
        let err = BatchResponse::read(&mut Cursor::new(&buf), &batch).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn pooled_frame_decode_matches_owned_decode(
        reqs in proptest::collection::vec(arb_batchable_request(), 1..8),
        chunks in proptest::collection::vec(1usize..7, 0..128),
        as_batch in any::<bool>(),
    ) {
        // Pooled decode is an allocation strategy, not a format: for any
        // payload and any read-split schedule it must produce frames
        // byte-identical to the owned-Vec decode. Decoding the same stream
        // twice through one pool also covers recycled (previously dirty)
        // buffers, which must come back fully overwritten.
        let mut buf = Vec::new();
        if as_batch {
            Batch::new(reqs.clone()).unwrap().write(&mut buf).unwrap();
        } else {
            for r in &reqs {
                r.write(&mut buf).unwrap();
            }
        }
        let frames = if as_batch { 1 } else { reqs.len() };

        let mut owned = Cursor::new(&buf);
        let pool = BufferPool::new();
        for round in 0..2 {
            owned.set_position(0);
            let mut pooled = ChunkedReader::new(&buf, chunks.clone());
            for _ in 0..frames {
                let expect = Frame::read(&mut owned).unwrap();
                let got = Frame::read_pooled(&mut pooled, Some(&pool)).unwrap();
                // Payload equality is byte-wise, so Pooled == Owned holds
                // exactly when the recycled buffer was refilled correctly.
                prop_assert_eq!(got, expect, "round {}", round);
            }
        }
    }

    #[test]
    fn pooled_d2h_response_decode_matches_owned(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        chunks in proptest::collection::vec(1usize..7, 0..64),
    ) {
        let req = Request::Memcpy {
            dst: 0,
            src: 64,
            size: data.len() as u32,
            kind: MemcpyKind::DeviceToHost,
            data: None,
        };
        let resp = Response::MemcpyToHost(Ok(data.into()));
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();

        let pool = BufferPool::new();
        for _ in 0..2 {
            let mut r = ChunkedReader::new(&buf, chunks.clone());
            let got = Response::read_pooled(&mut r, &req, Some(&pool)).unwrap();
            prop_assert_eq!(&got, &resp);
            // The pooled payload round-trips through re-encode bit-exactly:
            // the wire format is unchanged by where the bytes live.
            let mut reencoded = Vec::new();
            got.write(&mut reencoded).unwrap();
            prop_assert_eq!(&reencoded, &buf);
        }
    }

    #[test]
    fn launch_name_and_params_survive(
        name in "[a-zA-Z_][a-zA-Z0-9_]{0,30}",
        params in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let req = Request::launch(&name, &params, LaunchConfig::default());
        if let Request::Launch { config, region } = &req {
            prop_assert_eq!(Request::kernel_name(region, config).unwrap(), name);
            prop_assert_eq!(Request::kernel_params(region, config).unwrap(), &params[..]);
        } else {
            panic!("not a launch");
        }
    }
}
