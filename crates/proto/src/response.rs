//! Response messages (server → client).
//!
//! "The server always sends a 32-bit result code of the operation, and
//! possibly more data depending on each particular function" (paper §III).
//! The result code always comes first; on error no further payload follows.

use std::io::{self, Read, Write};

use rcuda_core::{error::result_code, CudaError, CudaResult, DevicePtr};

use crate::codec::Codec;
use crate::ids::MemcpyKind;
use crate::payload::{BufferPool, Payload};
use crate::request::Request;
use crate::wire::{get_bytes, get_u32, put_bytes, put_u32, read_payload};

/// A server reply. Which variant is legal is determined by the request that
/// elicited it; [`Response::read`] is therefore keyed on the request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Bare result code (Init, H2D memcpy, launch, free, synchronize, ...).
    Ack(CudaResult<()>),
    /// `cudaMalloc`: result code + device pointer.
    Malloc(CudaResult<DevicePtr>),
    /// Device→host `cudaMemcpy`: result code + payload.
    MemcpyToHost(CudaResult<Payload>),
    /// `cudaGetDeviceProperties`: result code + length-prefixed blob.
    DeviceProps(CudaResult<Vec<u8>>),
    /// `cudaStreamCreate`: result code + stream handle.
    StreamCreate(CudaResult<u32>),
    /// `cudaEventCreate`: result code + event handle.
    EventCreate(CudaResult<u32>),
    /// `cudaEventElapsedTime`: result code + elapsed milliseconds (f32, as
    /// the CUDA API returns it).
    EventElapsed(CudaResult<f32>),
}

impl Response {
    /// Exact number of bytes [`Response::write`] puts on the wire.
    ///
    /// For Table I operations this reproduces the Receive column (error
    /// branchs excluded): Malloc `8`, Memcpy-to-host `x+4`, everything
    /// ack-only `4`.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Response::Ack(_) => 4,
            Response::Malloc(Ok(_)) => 8,
            Response::Malloc(Err(_)) => 4,
            Response::MemcpyToHost(Ok(d)) => 4 + d.len() as u64,
            Response::MemcpyToHost(Err(_)) => 4,
            Response::DeviceProps(Ok(d)) => 8 + d.len() as u64,
            Response::DeviceProps(Err(_)) => 4,
            Response::StreamCreate(Ok(_)) => 8,
            Response::StreamCreate(Err(_)) => 4,
            Response::EventCreate(Ok(_)) => 8,
            Response::EventCreate(Err(_)) => 4,
            Response::EventElapsed(Ok(_)) => 8,
            Response::EventElapsed(Err(_)) => 4,
        }
    }

    /// Serialize onto the wire: result code, then success payload if any
    /// (legacy framing: payloads travel raw).
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.write_codec(w, None)
    }

    /// Serialize onto the wire. With a codec, the device→host payload — the
    /// one bulk response — gains the codec's `[enc_len][bytes]` framing
    /// after the status word; every other variant is byte-identical to the
    /// legacy framing.
    pub fn write_codec<W: Write>(&self, w: &mut W, codec: Option<&Codec>) -> io::Result<()> {
        match self {
            Response::Ack(r) => put_u32(w, result_code(r)),
            Response::Malloc(r) => match r {
                Ok(ptr) => {
                    put_u32(w, 0)?;
                    put_u32(w, ptr.addr())
                }
                Err(e) => put_u32(w, e.code()),
            },
            Response::MemcpyToHost(r) => match r {
                Ok(data) => {
                    put_u32(w, 0)?;
                    match codec {
                        Some(c) => c.write_block(w, data).map(|_| ()),
                        None => put_bytes(w, data),
                    }
                }
                Err(e) => put_u32(w, e.code()),
            },
            Response::DeviceProps(r) => match r {
                Ok(blob) => {
                    put_u32(w, 0)?;
                    put_u32(w, blob.len() as u32)?;
                    put_bytes(w, blob)
                }
                Err(e) => put_u32(w, e.code()),
            },
            Response::StreamCreate(r) => match r {
                Ok(stream) => {
                    put_u32(w, 0)?;
                    put_u32(w, *stream)
                }
                Err(e) => put_u32(w, e.code()),
            },
            Response::EventCreate(r) => match r {
                Ok(event) => {
                    put_u32(w, 0)?;
                    put_u32(w, *event)
                }
                Err(e) => put_u32(w, e.code()),
            },
            Response::EventElapsed(r) => match r {
                Ok(ms) => {
                    put_u32(w, 0)?;
                    put_u32(w, ms.to_bits())
                }
                Err(e) => put_u32(w, e.code()),
            },
        }
    }

    /// Read the response appropriate for `req`.
    ///
    /// The device→host payload length is known from the request's `size`
    /// field, exactly as in the paper's protocol (the receiver knows how many
    /// bytes it asked for).
    pub fn read<R: Read>(r: &mut R, req: &Request) -> io::Result<Response> {
        Self::read_pooled(r, req, None)
    }

    /// Like [`Response::read`], but landing device→host payload bytes in a
    /// buffer recycled from `pool` when one is given.
    pub fn read_pooled<R: Read>(
        r: &mut R,
        req: &Request,
        pool: Option<&BufferPool>,
    ) -> io::Result<Response> {
        Self::read_codec(r, req, pool, None)
    }

    /// Like [`Response::read_pooled`], additionally decoding the codec's
    /// `[enc_len][bytes]` framing on the device→host payload when a codec
    /// was negotiated. The returned response always holds *decompressed*
    /// payloads.
    pub fn read_codec<R: Read>(
        r: &mut R,
        req: &Request,
        pool: Option<&BufferPool>,
        codec: Option<&Codec>,
    ) -> io::Result<Response> {
        let status = CudaError::from_code(get_u32(r)?);
        Ok(match req {
            Request::Malloc { .. } => match status {
                Ok(()) => Response::Malloc(Ok(DevicePtr::new(get_u32(r)?))),
                Err(e) => Response::Malloc(Err(e)),
            },
            // Only device→host copies carry a payload back; H2D and D2D
            // are plain acknowledgements.
            Request::Memcpy { size, kind, .. } | Request::MemcpyAsync { size, kind, .. }
                if matches!(kind, MemcpyKind::DeviceToHost) =>
            {
                match status {
                    Ok(()) => Response::MemcpyToHost(Ok(match codec {
                        Some(c) => c.read_block(r, *size as usize)?,
                        None => read_payload(r, *size as usize, pool)?,
                    })),
                    Err(e) => Response::MemcpyToHost(Err(e)),
                }
            }
            Request::DeviceProps => match status {
                Ok(()) => {
                    let len = get_u32(r)? as usize;
                    Response::DeviceProps(Ok(get_bytes(r, len)?))
                }
                Err(e) => Response::DeviceProps(Err(e)),
            },
            Request::StreamCreate => match status {
                Ok(()) => Response::StreamCreate(Ok(get_u32(r)?)),
                Err(e) => Response::StreamCreate(Err(e)),
            },
            Request::EventCreate => match status {
                Ok(()) => Response::EventCreate(Ok(get_u32(r)?)),
                Err(e) => Response::EventCreate(Err(e)),
            },
            Request::EventElapsed { .. } => match status {
                Ok(()) => Response::EventElapsed(Ok(f32::from_bits(get_u32(r)?))),
                Err(e) => Response::EventElapsed(Err(e)),
            },
            _ => Response::Ack(status),
        })
    }

    /// The result code carried by any variant, by reference — the batch
    /// drain's "did anything fail" check without cloning payloads.
    pub fn status(&self) -> CudaResult<()> {
        let failed = match self {
            Response::Ack(r) => r.as_ref().err(),
            Response::Malloc(r) => r.as_ref().err(),
            Response::MemcpyToHost(r) => r.as_ref().err(),
            Response::DeviceProps(r) => r.as_ref().err(),
            Response::StreamCreate(r) => r.as_ref().err(),
            Response::EventCreate(r) => r.as_ref().err(),
            Response::EventElapsed(r) => r.as_ref().err(),
        };
        match failed {
            Some(e) => Err(*e),
            None => Ok(()),
        }
    }

    /// Unwrap as a bare acknowledgement.
    pub fn into_ack(self) -> CudaResult<()> {
        match self {
            Response::Ack(r) => r,
            other => unexpected(other),
        }
    }

    /// Unwrap as a `cudaMalloc` reply.
    pub fn into_malloc(self) -> CudaResult<DevicePtr> {
        match self {
            Response::Malloc(r) => r,
            other => unexpected(other),
        }
    }

    /// Unwrap as a device→host memcpy reply, materializing an owned `Vec`
    /// (free when the payload is owned, one copy when pooled).
    pub fn into_memcpy_to_host(self) -> CudaResult<Vec<u8>> {
        self.into_memcpy_payload().map(Payload::into_vec)
    }

    /// Unwrap as a device→host memcpy reply without forcing a `Vec`.
    pub fn into_memcpy_payload(self) -> CudaResult<Payload> {
        match self {
            Response::MemcpyToHost(r) => r,
            other => unexpected(other),
        }
    }
}

fn unexpected<T>(resp: Response) -> CudaResult<T> {
    debug_assert!(false, "protocol desync: unexpected response {resp:?}");
    Err(CudaError::Unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MemcpyKind;
    use std::io::Cursor;

    fn round_trip(resp: &Response, req: &Request) -> Response {
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();
        assert_eq!(buf.len() as u64, resp.wire_bytes(), "{resp:?}");
        Response::read(&mut Cursor::new(&buf), req).unwrap()
    }

    #[test]
    fn ack_round_trip_and_size() {
        let req = Request::Free {
            ptr: DevicePtr::new(8),
        };
        let ok = Response::Ack(Ok(()));
        assert_eq!(round_trip(&ok, &req), ok);
        assert_eq!(ok.wire_bytes(), 4); // Table I: cudaFree receive = 4

        let err = Response::Ack(Err(CudaError::InvalidDevicePointer));
        assert_eq!(round_trip(&err, &req), err);
    }

    #[test]
    fn malloc_round_trip_and_size() {
        let req = Request::Malloc { size: 16 };
        let ok = Response::Malloc(Ok(DevicePtr::new(0x40)));
        assert_eq!(round_trip(&ok, &req), ok);
        assert_eq!(ok.wire_bytes(), 8); // Table I: cudaMalloc receive = 8

        let err = Response::Malloc(Err(CudaError::MemoryAllocation));
        assert_eq!(round_trip(&err, &req), err);
        assert_eq!(err.wire_bytes(), 4);
    }

    #[test]
    fn memcpy_to_host_round_trip_and_size() {
        let req = Request::Memcpy {
            dst: 0,
            src: 0x40,
            size: 6,
            kind: MemcpyKind::DeviceToHost,
            data: None,
        };
        let ok = Response::MemcpyToHost(Ok(vec![1, 2, 3, 4, 5, 6].into()));
        assert_eq!(round_trip(&ok, &req), ok);
        assert_eq!(ok.wire_bytes(), 10); // x + 4

        let err = Response::MemcpyToHost(Err(CudaError::InvalidDevicePointer));
        assert_eq!(round_trip(&err, &req), err);
    }

    #[test]
    fn codec_framing_round_trips_d2h_payload() {
        use crate::codec::{Codec, CodecMode};
        use crate::payload::BufferPool;
        let pool = BufferPool::new();
        let codec = Codec::with_mode(pool.clone(), CodecMode::Always);
        let data = vec![3u8; 200_000]; // compressible
        let req = Request::Memcpy {
            dst: 0,
            src: 0x40,
            size: data.len() as u32,
            kind: MemcpyKind::DeviceToHost,
            data: None,
        };
        let resp = Response::MemcpyToHost(Ok(data.into()));
        let mut wire = Vec::new();
        resp.write_codec(&mut wire, Some(&codec)).unwrap();
        assert!(
            (wire.len() as u64) < resp.wire_bytes(),
            "compressible D2H shrinks on the wire"
        );
        let back =
            Response::read_codec(&mut Cursor::new(&wire), &req, Some(&pool), Some(&codec)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn h2d_memcpy_gets_plain_ack() {
        let req = Request::Memcpy {
            dst: 0x40,
            src: 0,
            size: 2,
            kind: MemcpyKind::HostToDevice,
            data: Some(vec![1, 2].into()),
        };
        let ok = Response::Ack(Ok(()));
        assert_eq!(round_trip(&ok, &req), ok); // Table I: to-device receive = 4
    }

    #[test]
    fn device_props_round_trip() {
        let req = Request::DeviceProps;
        let ok = Response::DeviceProps(Ok(b"props-blob".to_vec()));
        assert_eq!(round_trip(&ok, &req), ok);
        let err = Response::DeviceProps(Err(CudaError::NoDevice));
        assert_eq!(round_trip(&err, &req), err);
    }

    #[test]
    fn event_create_round_trip() {
        let req = Request::EventCreate;
        let ok = Response::EventCreate(Ok(3));
        assert_eq!(round_trip(&ok, &req), ok);
        assert_eq!(ok.wire_bytes(), 8);
        let err = Response::EventCreate(Err(CudaError::Unknown));
        assert_eq!(round_trip(&err, &req), err);
    }

    #[test]
    fn event_elapsed_round_trip_preserves_f32_bits() {
        let req = Request::EventElapsed { start: 1, end: 2 };
        for ms in [0.0f32, 1.5, 1234.567, f32::MIN_POSITIVE] {
            let ok = Response::EventElapsed(Ok(ms));
            assert_eq!(round_trip(&ok, &req), ok, "{ms}");
        }
        let err = Response::EventElapsed(Err(CudaError::NotReady));
        assert_eq!(round_trip(&err, &req), err);
    }

    #[test]
    fn stream_create_round_trip() {
        let req = Request::StreamCreate;
        let ok = Response::StreamCreate(Ok(42));
        assert_eq!(round_trip(&ok, &req), ok);
        let err = Response::StreamCreate(Err(CudaError::InitializationError));
        assert_eq!(round_trip(&err, &req), err);
    }

    #[test]
    fn async_d2h_reads_payload() {
        let req = Request::MemcpyAsync {
            dst: 0,
            src: 0x40,
            size: 3,
            kind: MemcpyKind::DeviceToHost,
            stream: 1,
            data: None,
        };
        let ok = Response::MemcpyToHost(Ok(vec![7, 8, 9].into()));
        assert_eq!(round_trip(&ok, &req), ok);
    }

    #[test]
    fn unwrap_helpers() {
        assert!(Response::Ack(Ok(())).into_ack().is_ok());
        assert_eq!(
            Response::Malloc(Ok(DevicePtr::new(1))).into_malloc(),
            Ok(DevicePtr::new(1))
        );
        assert_eq!(
            Response::MemcpyToHost(Ok(vec![1].into())).into_memcpy_to_host(),
            Ok(vec![1])
        );
    }
}
