//! Request messages (client → server), field-for-field per Table I.

use std::io::{self, Read, Write};

use rcuda_core::{CudaError, DevicePtr};

use crate::codec::Codec;
use crate::ids::{FunctionId, MemcpyKind};
use crate::launch::{LaunchConfig, LAUNCH_FIXED_BYTES};
use crate::payload::{BufferPool, Payload};
use crate::wire::{get_array, get_bytes, get_u32, put_bytes, put_u32, read_payload};

/// A remote CUDA call as it travels client → server.
///
/// `Init` is the only message without a leading function id: it is the first
/// (and only) thing the client sends during the initialization handshake, so
/// no selector is needed (Table I's Initialization row counts `x + 4` sent
/// bytes — size + module only).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Initialization stage: ship the GPU module (kernels + statically
    /// allocated variables).
    Init { module: Vec<u8> },
    /// `cudaMalloc(size)`.
    Malloc { size: u32 },
    /// `cudaFree(ptr)`.
    Free { ptr: DevicePtr },
    /// `cudaMemcpy`. For host→device, `data` carries the payload and `size`
    /// equals its length. For device→host, `data` is `None` and `size` is
    /// the number of bytes requested back.
    Memcpy {
        /// Destination address (device pointer for H2D, host cookie for D2H).
        dst: u32,
        /// Source address (host cookie for H2D, device pointer for D2H).
        src: u32,
        /// Transfer size in bytes.
        size: u32,
        /// Direction.
        kind: MemcpyKind,
        /// Payload (present only when the data flows client → server).
        data: Option<Payload>,
    },
    /// `cudaLaunch`. `region` is Table I's `x`: the NUL-terminated kernel
    /// name followed by the packed argument block at
    /// `config.parameters_offset`.
    Launch {
        config: LaunchConfig,
        region: Payload,
    },
    /// `cudaThreadSynchronize`.
    ThreadSynchronize,
    /// `cudaGetDeviceProperties` (extension).
    DeviceProps,
    /// `cudaStreamCreate` (extension).
    StreamCreate,
    /// `cudaStreamSynchronize` (extension).
    StreamSynchronize { stream: u32 },
    /// `cudaStreamDestroy` (extension).
    StreamDestroy { stream: u32 },
    /// `cudaMemcpyAsync` (extension; adds a stream field to `Memcpy`).
    MemcpyAsync {
        dst: u32,
        src: u32,
        size: u32,
        kind: MemcpyKind,
        stream: u32,
        data: Option<Payload>,
    },
    /// `cudaMemset(dst, value, size)` (extension; `value` is the byte
    /// pattern, carried in a 4-byte field like every other scalar).
    Memset { dst: u32, value: u32, size: u32 },
    /// `cudaEventCreate` (extension).
    EventCreate,
    /// `cudaEventRecord(event, stream)` (extension).
    EventRecord { event: u32, stream: u32 },
    /// `cudaEventSynchronize(event)` (extension).
    EventSynchronize { event: u32 },
    /// `cudaEventElapsedTime(start, end)` (extension).
    EventElapsed { start: u32, end: u32 },
    /// `cudaEventDestroy(event)` (extension).
    EventDestroy { event: u32 },
    /// Finalization stage: orderly connection shutdown.
    Quit,
}

impl Request {
    /// Build a `cudaLaunch` request from a kernel name and packed argument
    /// bytes, filling in the name-region offsets.
    pub fn launch(name: &str, params: &[u8], mut config: LaunchConfig) -> Request {
        let mut region = Vec::with_capacity(name.len() + 1 + params.len());
        region.extend_from_slice(name.as_bytes());
        if !name.ends_with('\0') {
            region.push(0);
        }
        config.parameters_offset = region.len() as u32;
        region.extend_from_slice(params);
        Request::Launch {
            config,
            region: region.into(),
        }
    }

    /// Like [`Request::launch`] but staging the name region in a pooled
    /// buffer, so a steady-state launch loop allocates nothing.
    pub fn launch_pooled(
        name: &str,
        params: &[u8],
        mut config: LaunchConfig,
        pool: &BufferPool,
    ) -> Request {
        let nul = usize::from(!name.ends_with('\0'));
        let mut region = pool.get(name.len() + nul + params.len());
        region[..name.len()].copy_from_slice(name.as_bytes());
        if nul == 1 {
            region[name.len()] = 0;
        }
        config.parameters_offset = (name.len() + nul) as u32;
        region[name.len() + nul..].copy_from_slice(params);
        Request::Launch {
            config,
            region: region.into(),
        }
    }

    /// The kernel name carried by a `Launch` request (up to the first NUL),
    /// borrowed straight out of the region — no allocation.
    pub fn kernel_name_str<'a>(
        region: &'a [u8],
        config: &LaunchConfig,
    ) -> Result<&'a str, CudaError> {
        let name_end = region
            .iter()
            .take(config.parameters_offset as usize)
            .position(|&b| b == 0)
            .unwrap_or(config.parameters_offset as usize);
        std::str::from_utf8(&region[..name_end]).map_err(|_| CudaError::InvalidValue)
    }

    /// The kernel name carried by a `Launch` request, as an owned `String`.
    pub fn kernel_name(region: &[u8], config: &LaunchConfig) -> Result<String, CudaError> {
        Self::kernel_name_str(region, config).map(str::to_owned)
    }

    /// The packed argument bytes carried by a `Launch` request.
    pub fn kernel_params<'a>(
        region: &'a [u8],
        config: &LaunchConfig,
    ) -> Result<&'a [u8], CudaError> {
        region
            .get(config.parameters_offset as usize..)
            .ok_or(CudaError::InvalidValue)
    }

    /// The function id this request carries on the wire (`None` for `Init`,
    /// which is identified by protocol position, not by a selector).
    pub fn function_id(&self) -> Option<FunctionId> {
        Some(match self {
            Request::Init { .. } => return None,
            Request::Malloc { .. } => FunctionId::Malloc,
            Request::Free { .. } => FunctionId::Free,
            Request::Memcpy { .. } => FunctionId::Memcpy,
            Request::Launch { .. } => FunctionId::Launch,
            Request::ThreadSynchronize => FunctionId::ThreadSynchronize,
            Request::DeviceProps => FunctionId::DeviceProps,
            Request::StreamCreate => FunctionId::StreamCreate,
            Request::StreamSynchronize { .. } => FunctionId::StreamSynchronize,
            Request::StreamDestroy { .. } => FunctionId::StreamDestroy,
            Request::MemcpyAsync { .. } => FunctionId::MemcpyAsync,
            Request::Memset { .. } => FunctionId::Memset,
            Request::EventCreate => FunctionId::EventCreate,
            Request::EventRecord { .. } => FunctionId::EventRecord,
            Request::EventSynchronize { .. } => FunctionId::EventSynchronize,
            Request::EventElapsed { .. } => FunctionId::EventElapsed,
            Request::EventDestroy { .. } => FunctionId::EventDestroy,
            Request::Quit => FunctionId::Quit,
        })
    }

    /// The observability label for this request — the same names the client
    /// runtime stamps on its call spans, so client and server spans for one
    /// call aggregate into the same group. Memcpy variants are split by
    /// direction (their Table I byte accounting differs per direction).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Init { .. } => "initialization",
            Request::Malloc { .. } => "cudaMalloc",
            Request::Free { .. } => "cudaFree",
            Request::Memcpy { kind, .. } => match kind {
                MemcpyKind::HostToDevice => "cudaMemcpyH2D",
                MemcpyKind::DeviceToHost => "cudaMemcpyD2H",
                MemcpyKind::DeviceToDevice => "cudaMemcpyD2D",
                MemcpyKind::HostToHost => "cudaMemcpyH2H",
            },
            Request::Launch { .. } => "cudaLaunch",
            Request::ThreadSynchronize => "cudaThreadSynchronize",
            Request::DeviceProps => "cudaGetDeviceProperties",
            Request::StreamCreate => "cudaStreamCreate",
            Request::StreamSynchronize { .. } => "cudaStreamSynchronize",
            Request::StreamDestroy { .. } => "cudaStreamDestroy",
            Request::MemcpyAsync { kind, .. } => match kind {
                MemcpyKind::HostToDevice => "cudaMemcpyAsyncH2D",
                MemcpyKind::DeviceToHost => "cudaMemcpyAsyncD2H",
                MemcpyKind::DeviceToDevice => "cudaMemcpyAsyncD2D",
                MemcpyKind::HostToHost => "cudaMemcpyAsyncH2H",
            },
            Request::Memset { .. } => "cudaMemset",
            Request::EventCreate => "cudaEventCreate",
            Request::EventRecord { .. } => "cudaEventRecord",
            Request::EventSynchronize { .. } => "cudaEventSynchronize",
            Request::EventElapsed { .. } => "cudaEventElapsedTime",
            Request::EventDestroy { .. } => "cudaEventDestroy",
            Request::Quit => "finalization",
        }
    }

    /// Exact number of bytes [`Request::write`] puts on the wire.
    ///
    /// For the Table I operations this reproduces the paper's Send column —
    /// Init `x+4`, Malloc `8`, Memcpy-to-device `x+20`, Memcpy-to-host `20`,
    /// Free `8` — with one deviation: our `Launch` realization prefixes the
    /// name region with a 4-byte length (so `x+48` instead of `x+44`),
    /// because unlike the original C implementation we do not parse the
    /// region incrementally off the socket. The canonical `x+44` accounting
    /// used to regenerate Table I lives in [`crate::sizes`].
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Request::Init { module } => 4 + module.len() as u64,
            Request::Malloc { .. } => 8,
            Request::Free { .. } => 8,
            Request::Memcpy { data, .. } => 20 + data.as_ref().map_or(0, |d| d.len() as u64),
            Request::Launch { region, .. } => 4 + LAUNCH_FIXED_BYTES + 4 + region.len() as u64,
            Request::ThreadSynchronize => 4,
            Request::DeviceProps => 4,
            Request::StreamCreate => 4,
            Request::StreamSynchronize { .. } => 8,
            Request::StreamDestroy { .. } => 8,
            Request::MemcpyAsync { data, .. } => 24 + data.as_ref().map_or(0, |d| d.len() as u64),
            Request::Memset { .. } => 16,
            Request::EventCreate => 4,
            Request::EventRecord { .. } => 12,
            Request::EventSynchronize { .. } => 8,
            Request::EventElapsed { .. } => 12,
            Request::EventDestroy { .. } => 8,
            Request::Quit => 4,
        }
    }

    /// Serialize onto the wire (legacy framing: payloads travel raw).
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.write_codec(w, None)
    }

    /// Serialize onto the wire. With a codec, bulk payloads (memcpy data,
    /// launch regions) gain the codec's `[enc_len][bytes]` framing and are
    /// compressed when the adaptive policy says so; everything else —
    /// selectors, scalar fields, the module upload — is byte-identical to
    /// the legacy framing. Compression happens here, at write time, never
    /// earlier: deferred/batched requests hold raw payloads, so
    /// [`Request::wire_bytes`] keeps its logical Table I accounting.
    pub fn write_codec<W: Write>(&self, w: &mut W, codec: Option<&Codec>) -> io::Result<()> {
        if let Some(id) = self.function_id() {
            put_u32(w, id.as_u32())?;
        }
        match self {
            Request::Init { module } => {
                put_u32(w, module.len() as u32)?;
                put_bytes(w, module)?;
            }
            Request::Malloc { size } => put_u32(w, *size)?,
            Request::Free { ptr } => put_u32(w, ptr.addr())?,
            Request::Memcpy {
                dst,
                src,
                size,
                kind,
                data,
            } => {
                put_u32(w, *dst)?;
                put_u32(w, *src)?;
                put_u32(w, *size)?;
                put_u32(w, kind.as_u32())?;
                if let Some(d) = data {
                    debug_assert_eq!(d.len() as u32, *size);
                    match codec {
                        Some(c) => {
                            c.write_block(w, d)?;
                        }
                        None => put_bytes(w, d)?,
                    }
                }
            }
            Request::Launch { config, region } => {
                put_bytes(w, &config.to_wire())?;
                put_u32(w, region.len() as u32)?;
                match codec {
                    Some(c) => {
                        c.write_block(w, region)?;
                    }
                    None => put_bytes(w, region)?,
                }
            }
            Request::ThreadSynchronize
            | Request::DeviceProps
            | Request::StreamCreate
            | Request::EventCreate
            | Request::Quit => {}
            Request::StreamSynchronize { stream } | Request::StreamDestroy { stream } => {
                put_u32(w, *stream)?;
            }
            Request::Memset { dst, value, size } => {
                put_u32(w, *dst)?;
                put_u32(w, *value)?;
                put_u32(w, *size)?;
            }
            Request::EventRecord { event, stream } => {
                put_u32(w, *event)?;
                put_u32(w, *stream)?;
            }
            Request::EventSynchronize { event } | Request::EventDestroy { event } => {
                put_u32(w, *event)?;
            }
            Request::EventElapsed { start, end } => {
                put_u32(w, *start)?;
                put_u32(w, *end)?;
            }
            Request::MemcpyAsync {
                dst,
                src,
                size,
                kind,
                stream,
                data,
            } => {
                put_u32(w, *dst)?;
                put_u32(w, *src)?;
                put_u32(w, *size)?;
                put_u32(w, kind.as_u32())?;
                put_u32(w, *stream)?;
                if let Some(d) = data {
                    debug_assert_eq!(d.len() as u32, *size);
                    match codec {
                        Some(c) => {
                            c.write_block(w, d)?;
                        }
                        None => put_bytes(w, d)?,
                    }
                }
            }
        }
        Ok(())
    }

    /// Read the initialization request (the one message with no selector).
    pub fn read_init<R: Read>(r: &mut R) -> io::Result<Request> {
        let size = get_u32(r)? as usize;
        let module = get_bytes(r, size)?;
        Ok(Request::Init { module })
    }

    /// Read any post-initialization request (selector first).
    pub fn read<R: Read>(r: &mut R) -> io::Result<Request> {
        let raw = get_u32(r)?;
        let id =
            FunctionId::from_u32(raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Self::read_with_id(id, r)
    }

    /// Read the body of a request whose selector has already been consumed
    /// (used by [`crate::batch::Frame::read`], which peeks at the selector to
    /// decide between a single request and a batch).
    pub fn read_with_id<R: Read>(id: FunctionId, r: &mut R) -> io::Result<Request> {
        Self::read_with_id_pooled(id, r, None)
    }

    /// Like [`Request::read_with_id`], but landing payload bytes (memcpy
    /// data, launch regions) in buffers recycled from `pool` when one is
    /// given — the server worker's zero-allocation receive path.
    pub fn read_with_id_pooled<R: Read>(
        id: FunctionId,
        r: &mut R,
        pool: Option<&BufferPool>,
    ) -> io::Result<Request> {
        Self::read_with_id_codec(id, r, pool, None)
    }

    /// Like [`Request::read_with_id_pooled`], additionally decoding the
    /// codec's `[enc_len][bytes]` payload framing when a codec was
    /// negotiated. The returned request always holds *decompressed*
    /// payloads — dispatch and GPU code never see a compressed variant.
    pub fn read_with_id_codec<R: Read>(
        id: FunctionId,
        r: &mut R,
        pool: Option<&BufferPool>,
        codec: Option<&Codec>,
    ) -> io::Result<Request> {
        Ok(match id {
            FunctionId::Batch => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "batch frames cannot appear inside a batch",
                ))
            }
            FunctionId::Hello
            | FunctionId::Reconnect
            | FunctionId::MuxHello
            | FunctionId::Migrate
            | FunctionId::Codec => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "handshake selectors are only valid as the first post-connect message",
                ))
            }
            FunctionId::Busy => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "Busy is a server-to-client hello marker, never a request",
                ))
            }
            FunctionId::Malloc => Request::Malloc { size: get_u32(r)? },
            FunctionId::Free => Request::Free {
                ptr: DevicePtr::new(get_u32(r)?),
            },
            FunctionId::Memcpy => {
                let dst = get_u32(r)?;
                let src = get_u32(r)?;
                let size = get_u32(r)?;
                let kind = MemcpyKind::from_u32(get_u32(r)?)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                let data = if wire_carries_payload(kind) {
                    Some(read_block_or_payload(r, size as usize, pool, codec)?)
                } else {
                    None
                };
                Request::Memcpy {
                    dst,
                    src,
                    size,
                    kind,
                    data,
                }
            }
            FunctionId::Launch => {
                let fixed: [u8; LAUNCH_FIXED_BYTES as usize] = get_array(r)?;
                let config = LaunchConfig::from_wire(fixed);
                let region_len = get_u32(r)? as usize;
                let region = read_block_or_payload(r, region_len, pool, codec)?;
                Request::Launch { config, region }
            }
            FunctionId::ThreadSynchronize => Request::ThreadSynchronize,
            FunctionId::DeviceProps => Request::DeviceProps,
            FunctionId::StreamCreate => Request::StreamCreate,
            FunctionId::StreamSynchronize => Request::StreamSynchronize {
                stream: get_u32(r)?,
            },
            FunctionId::StreamDestroy => Request::StreamDestroy {
                stream: get_u32(r)?,
            },
            FunctionId::MemcpyAsync => {
                let dst = get_u32(r)?;
                let src = get_u32(r)?;
                let size = get_u32(r)?;
                let kind = MemcpyKind::from_u32(get_u32(r)?)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                let stream = get_u32(r)?;
                let data = if wire_carries_payload(kind) {
                    Some(read_block_or_payload(r, size as usize, pool, codec)?)
                } else {
                    None
                };
                Request::MemcpyAsync {
                    dst,
                    src,
                    size,
                    kind,
                    stream,
                    data,
                }
            }
            FunctionId::Memset => Request::Memset {
                dst: get_u32(r)?,
                value: get_u32(r)?,
                size: get_u32(r)?,
            },
            FunctionId::EventCreate => Request::EventCreate,
            FunctionId::EventRecord => Request::EventRecord {
                event: get_u32(r)?,
                stream: get_u32(r)?,
            },
            FunctionId::EventSynchronize => Request::EventSynchronize { event: get_u32(r)? },
            FunctionId::EventElapsed => Request::EventElapsed {
                start: get_u32(r)?,
                end: get_u32(r)?,
            },
            FunctionId::EventDestroy => Request::EventDestroy { event: get_u32(r)? },
            FunctionId::Quit => Request::Quit,
        })
    }
}

/// Whether a memcpy of this kind carries its payload in the *request*
/// (client → server) direction.
pub fn wire_carries_payload(kind: MemcpyKind) -> bool {
    matches!(kind, MemcpyKind::HostToDevice | MemcpyKind::HostToHost)
}

/// Read one bulk payload of logical length `raw_len`: through the codec's
/// `[enc_len][bytes]` framing on codec sessions, straight off the wire on
/// legacy ones.
fn read_block_or_payload<R: Read>(
    r: &mut R,
    raw_len: usize,
    pool: Option<&BufferPool>,
    codec: Option<&Codec>,
) -> io::Result<Payload> {
    match codec {
        Some(c) => c.read_block(r, raw_len),
        None => read_payload(r, raw_len, pool),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::Dim3;
    use std::io::Cursor;

    fn round_trip(req: &Request) -> Request {
        let mut buf = Vec::new();
        req.write(&mut buf).unwrap();
        match req {
            Request::Init { .. } => Request::read_init(&mut Cursor::new(&buf)).unwrap(),
            _ => Request::read(&mut Cursor::new(&buf)).unwrap(),
        }
    }

    #[test]
    fn malloc_round_trip_and_size() {
        let req = Request::Malloc { size: 1 << 20 };
        assert_eq!(round_trip(&req), req);
        assert_eq!(req.wire_bytes(), 8); // Table I: cudaMalloc send = 8
    }

    #[test]
    fn free_round_trip_and_size() {
        let req = Request::Free {
            ptr: DevicePtr::new(0x1000),
        };
        assert_eq!(round_trip(&req), req);
        assert_eq!(req.wire_bytes(), 8); // Table I: cudaFree send = 8
    }

    #[test]
    fn memcpy_h2d_round_trip_and_size() {
        let data = vec![7u8; 100];
        let req = Request::Memcpy {
            dst: 0x2000,
            src: 0,
            size: 100,
            kind: MemcpyKind::HostToDevice,
            data: Some(data.into()),
        };
        assert_eq!(round_trip(&req), req);
        assert_eq!(req.wire_bytes(), 120); // x + 20
    }

    #[test]
    fn codec_framing_round_trips_memcpy_and_launch() {
        use crate::codec::{Codec, CodecMode};
        let pool = BufferPool::new();
        let codec = Codec::with_mode(pool.clone(), CodecMode::Always);

        let data = vec![0xEEu8; 100_000]; // compressible
        let req = Request::Memcpy {
            dst: 0x2000,
            src: 0,
            size: data.len() as u32,
            kind: MemcpyKind::HostToDevice,
            data: Some(data.into()),
        };
        let mut wire = Vec::new();
        req.write_codec(&mut wire, Some(&codec)).unwrap();
        assert!(
            (wire.len() as u64) < req.wire_bytes(),
            "compressible memcpy shrinks on the wire"
        );
        let back = Request::read_with_id_codec(
            FunctionId::Memcpy,
            &mut Cursor::new(&wire[4..]),
            Some(&pool),
            Some(&codec),
        )
        .unwrap();
        assert_eq!(back, req, "decode restores the raw payload");

        let launch = Request::launch("kern", &vec![0u8; 50_000], LaunchConfig::simple(1, 32));
        let mut wire = Vec::new();
        launch.write_codec(&mut wire, Some(&codec)).unwrap();
        assert!((wire.len() as u64) < launch.wire_bytes());
        let back = Request::read_with_id_codec(
            FunctionId::Launch,
            &mut Cursor::new(&wire[4..]),
            Some(&pool),
            Some(&codec),
        )
        .unwrap();
        assert_eq!(back, launch);
    }

    #[test]
    fn memcpy_d2h_round_trip_and_size() {
        let req = Request::Memcpy {
            dst: 0,
            src: 0x2000,
            size: 4096,
            kind: MemcpyKind::DeviceToHost,
            data: None,
        };
        assert_eq!(round_trip(&req), req);
        assert_eq!(req.wire_bytes(), 20); // Table I: to-host send = 20
    }

    #[test]
    fn init_round_trip_and_size() {
        let req = Request::Init {
            module: vec![0xAB; 21_486],
        };
        assert_eq!(round_trip(&req), req);
        assert_eq!(req.wire_bytes(), 21_490); // x + 4, MM module
    }

    #[test]
    fn launch_round_trip_and_helpers() {
        let cfg = LaunchConfig {
            block: Dim3::new(16, 16, 1),
            grid: Dim3::xy(256, 256),
            shared_bytes: 2048,
            ..Default::default()
        };
        let params = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let req = Request::launch("sgemmNN", &params, cfg);
        let rt = round_trip(&req);
        assert_eq!(rt, req);
        if let Request::Launch { config, region } = &rt {
            assert_eq!(Request::kernel_name(region, config).unwrap(), "sgemmNN");
            assert_eq!(Request::kernel_params(region, config).unwrap(), &params);
        } else {
            panic!("not a launch");
        }
    }

    #[test]
    fn launch_wire_bytes_is_region_plus_44_plus_len_prefix() {
        // The in-memory accounting view (`x + 44`, Table I) counts the
        // region and the 44 fixed bytes; our realization adds a 4-byte
        // region-length prefix which `wire_bytes` must include so the
        // accounting matches what actually hits the wire.
        let req = Request::launch("k", &[], LaunchConfig::default());
        let mut buf = Vec::new();
        req.write(&mut buf).unwrap();
        assert_eq!(buf.len() as u64, req.wire_bytes());
    }

    #[test]
    fn wire_bytes_matches_encoded_length_for_all_variants() {
        let reqs = vec![
            Request::Init {
                module: vec![1, 2, 3],
            },
            Request::Malloc { size: 64 },
            Request::Free {
                ptr: DevicePtr::new(4),
            },
            Request::Memcpy {
                dst: 1,
                src: 2,
                size: 3,
                kind: MemcpyKind::HostToDevice,
                data: Some(vec![9, 9, 9].into()),
            },
            Request::Memcpy {
                dst: 1,
                src: 2,
                size: 3,
                kind: MemcpyKind::DeviceToHost,
                data: None,
            },
            Request::launch("fft512_batch", &[0; 12], LaunchConfig::default()),
            Request::ThreadSynchronize,
            Request::DeviceProps,
            Request::StreamCreate,
            Request::StreamSynchronize { stream: 1 },
            Request::StreamDestroy { stream: 1 },
            Request::MemcpyAsync {
                dst: 1,
                src: 2,
                size: 2,
                kind: MemcpyKind::HostToDevice,
                stream: 3,
                data: Some(vec![1, 2].into()),
            },
            Request::Memset {
                dst: 1,
                value: 0xAB,
                size: 64,
            },
            Request::EventCreate,
            Request::EventRecord {
                event: 1,
                stream: 0,
            },
            Request::EventSynchronize { event: 1 },
            Request::EventElapsed { start: 1, end: 2 },
            Request::EventDestroy { event: 1 },
            Request::Quit,
        ];
        for req in reqs {
            let mut buf = Vec::new();
            req.write(&mut buf).unwrap();
            assert_eq!(buf.len() as u64, req.wire_bytes(), "{req:?}");
        }
    }

    #[test]
    fn op_names_match_client_labels_and_split_by_direction() {
        assert_eq!(Request::Init { module: vec![] }.op_name(), "initialization");
        assert_eq!(Request::Malloc { size: 1 }.op_name(), "cudaMalloc");
        assert_eq!(Request::Quit.op_name(), "finalization");
        let h2d = Request::Memcpy {
            dst: 0,
            src: 0,
            size: 0,
            kind: MemcpyKind::HostToDevice,
            data: Some(vec![].into()),
        };
        assert_eq!(h2d.op_name(), "cudaMemcpyH2D");
        let d2h = Request::Memcpy {
            dst: 0,
            src: 0,
            size: 0,
            kind: MemcpyKind::DeviceToHost,
            data: None,
        };
        assert_eq!(d2h.op_name(), "cudaMemcpyD2H");
    }

    #[test]
    fn bad_function_id_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 9999).unwrap();
        assert!(Request::read(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn bad_memcpy_kind_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, FunctionId::Memcpy.as_u32()).unwrap();
        for v in [0u32, 0, 4, 77] {
            put_u32(&mut buf, v).unwrap();
        }
        assert!(Request::read(&mut Cursor::new(&buf)).is_err());
    }
}
