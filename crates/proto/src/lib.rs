//! The rCUDA wire protocol.
//!
//! The paper (§III, Table I) describes a synchronous request/response
//! protocol: for every CUDA Runtime call the client sends one message whose
//! first 32 bits identify the function, followed by function-dependent
//! fields; the server always answers with a 32-bit CUDA result code,
//! possibly followed by more data.
//!
//! This crate implements:
//!
//! * the exact field layouts of Table I ([`request`], [`response`]),
//! * streaming encode/decode over any `Read`/`Write` pair ([`wire`]),
//! * the message-size accounting that reproduces Table I ([`sizes`]),
//! * the launch-configuration record carried by `cudaLaunch` ([`launch`]),
//! * pooled payload buffers for the copy-minimal data plane ([`payload`]).
//!
//! ## Framing
//!
//! There is none — exactly as in the paper. Every field either has a fixed
//! size or is preceded by a size field, so the receiver always knows how many
//! bytes to read next. Table I therefore accounts for *all* bytes on the
//! wire.
//!
//! One extension departs from the paper's strict one-call-per-round-trip
//! model: the [`batch`] module packs N consecutive requests into a single
//! message (and their N responses into a single reply), eliminating the
//! per-call network round trips that sink the FFT case study on Gigabit
//! Ethernet. Servers read via [`batch::Frame`], which accepts both framings.
//!
//! ## The initialization handshake
//!
//! Initialization is the one asymmetric exchange (Fig. 2): upon accepting a
//! connection the server immediately sends the device's 8-byte compute
//! capability; the client then ships the GPU module (4-byte size + blob) and
//! the server acknowledges with a 4-byte result code. Send `x+4`, receive
//! `8 + 4 = 12` bytes — Table I's Initialization row.

pub mod batch;
pub mod broker;
pub mod codec;
pub mod decode;
pub mod handshake;
pub mod ids;
pub mod launch;
pub mod mux;
pub mod payload;
pub mod request;
pub mod response;
pub mod secure;
pub mod sizes;
pub mod wire;

pub use batch::{Batch, BatchResponse, Frame};
pub use codec::{Codec, CodecHello, CodecMode, CodecStats, CAP_LZ4};
pub use decode::{scan_frame, scan_frame_codec, scan_hello, ClientHello, Scan, StreamDecoder};
pub use handshake::SessionHello;
pub use ids::FunctionId;
pub use launch::LaunchConfig;
pub use payload::{BufferPool, Payload, PooledBuf};
pub use request::Request;
pub use response::Response;
pub use sizes::{OpKind, OpSizes};
