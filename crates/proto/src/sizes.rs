//! Canonical message-size accounting — regenerates paper Table I.
//!
//! This module is the single source of truth for how many bytes each remote
//! API call moves in each direction, with the variable-size field `x` kept
//! symbolic. The estimation model (`rcuda-model`) builds Table II on top of
//! these numbers.

use std::fmt;

/// Size of a wire field: fixed bytes, or the operation's variable payload
/// (`x` in Table I), or the payload plus a fixed part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldSize {
    Fixed(u64),
    /// The operation-dependent size, `x`.
    Var,
    /// `x + fixed`.
    VarPlus(u64),
}

impl FieldSize {
    /// Resolve against a concrete payload size.
    pub fn resolve(self, x: u64) -> u64 {
        match self {
            FieldSize::Fixed(n) => n,
            FieldSize::Var => x,
            FieldSize::VarPlus(n) => x + n,
        }
    }
}

impl fmt::Display for FieldSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldSize::Fixed(n) => write!(f, "{n}"),
            FieldSize::Var => write!(f, "x"),
            FieldSize::VarPlus(n) => write!(f, "x + {n}"),
        }
    }
}

/// One row of Table I: a field with its size in the send and/or receive
/// direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldRow {
    pub field: &'static str,
    pub send: Option<FieldSize>,
    pub recv: Option<FieldSize>,
}

const fn send(field: &'static str, size: FieldSize) -> FieldRow {
    FieldRow {
        field,
        send: Some(size),
        recv: None,
    }
}

const fn recv(field: &'static str, size: FieldSize) -> FieldRow {
    FieldRow {
        field,
        send: None,
        recv: Some(size),
    }
}

/// The operations broken down in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Initialization stage (module upload + compute-capability handshake).
    Initialization,
    /// `cudaMalloc`.
    Malloc,
    /// `cudaMemcpy`, host → device.
    MemcpyToDevice,
    /// `cudaMemcpy`, device → host.
    MemcpyToHost,
    /// `cudaLaunch`.
    Launch,
    /// `cudaFree`.
    Free,
}

impl OpKind {
    /// Table I order.
    pub const ALL: [OpKind; 6] = [
        OpKind::Initialization,
        OpKind::Malloc,
        OpKind::MemcpyToDevice,
        OpKind::MemcpyToHost,
        OpKind::Launch,
        OpKind::Free,
    ];

    /// The operation's display name as printed in Table I.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Initialization => "Initialization",
            OpKind::Malloc => "cudaMalloc",
            OpKind::MemcpyToDevice => "cudaMemcpy (to device)",
            OpKind::MemcpyToHost => "cudaMemcpy (to host)",
            OpKind::Launch => "cudaLaunch",
            OpKind::Free => "cudaFree",
        }
    }

    /// The per-field breakdown, exactly as Table I prints it.
    pub fn fields(self) -> Vec<FieldRow> {
        use FieldSize::*;
        match self {
            OpKind::Initialization => vec![
                recv("Compute capability", Fixed(8)),
                send("Size", Fixed(4)),
                send("Module", Var),
                recv("CUDA error", Fixed(4)),
            ],
            OpKind::Malloc => vec![
                send("Function id.", Fixed(4)),
                send("Size", Fixed(4)),
                recv("CUDA error", Fixed(4)),
                recv("Device pointer", Fixed(4)),
            ],
            OpKind::MemcpyToDevice => vec![
                send("Function id.", Fixed(4)),
                send("Destination", Fixed(4)),
                send("Source", Fixed(4)),
                send("Size", Fixed(4)),
                send("Kind", Fixed(4)),
                send("Data", Var),
                recv("CUDA error", Fixed(4)),
            ],
            OpKind::MemcpyToHost => vec![
                send("Function id.", Fixed(4)),
                send("Destination", Fixed(4)),
                send("Source", Fixed(4)),
                send("Size", Fixed(4)),
                send("Kind", Fixed(4)),
                recv("CUDA error", Fixed(4)),
                recv("Data", Var),
            ],
            OpKind::Launch => vec![
                send("Function id.", Fixed(4)),
                send("Texture offset", Fixed(4)),
                send("Parameters offset", Fixed(4)),
                send("Number of textures", Fixed(4)),
                send("Block dimension", Fixed(12)),
                send("Grid dimension", Fixed(8)),
                send("Shared size", Fixed(4)),
                send("Stream", Fixed(4)),
                send("Kernel name", Var),
                recv("CUDA error", Fixed(4)),
            ],
            OpKind::Free => vec![
                send("Function id.", Fixed(4)),
                send("Device pointer", Fixed(4)),
                recv("CUDA error", Fixed(4)),
            ],
        }
    }

    /// Total sizes for this op (the Table I "Total" row), `x` symbolic.
    pub fn totals(self) -> OpSizes {
        let mut send_fixed = 0;
        let mut send_var = false;
        let mut recv_fixed = 0;
        let mut recv_var = false;
        for row in self.fields() {
            if let Some(s) = row.send {
                match s {
                    FieldSize::Fixed(n) => send_fixed += n,
                    FieldSize::Var => send_var = true,
                    FieldSize::VarPlus(n) => {
                        send_fixed += n;
                        send_var = true;
                    }
                }
            }
            if let Some(s) = row.recv {
                match s {
                    FieldSize::Fixed(n) => recv_fixed += n,
                    FieldSize::Var => recv_var = true,
                    FieldSize::VarPlus(n) => {
                        recv_fixed += n;
                        recv_var = true;
                    }
                }
            }
        }
        OpSizes {
            op: self,
            send: if send_var {
                FieldSize::VarPlus(send_fixed)
            } else {
                FieldSize::Fixed(send_fixed)
            },
            recv: if recv_var {
                FieldSize::VarPlus(recv_fixed)
            } else {
                FieldSize::Fixed(recv_fixed)
            },
        }
    }
}

/// Total send/receive sizes of one operation (Table I "Total" rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSizes {
    pub op: OpKind,
    pub send: FieldSize,
    pub recv: FieldSize,
}

impl OpSizes {
    /// Concrete byte counts for a given variable payload size.
    pub fn resolve(&self, x: u64) -> (u64, u64) {
        (self.send.resolve(x), self.recv.resolve(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Total rows of Table I, verbatim.
    #[test]
    fn totals_match_table1() {
        use FieldSize::*;
        let expect = [
            (OpKind::Initialization, VarPlus(4), Fixed(12)),
            (OpKind::Malloc, Fixed(8), Fixed(8)),
            (OpKind::MemcpyToDevice, VarPlus(20), Fixed(4)),
            (OpKind::MemcpyToHost, Fixed(20), VarPlus(4)),
            (OpKind::Launch, VarPlus(44), Fixed(4)),
            (OpKind::Free, Fixed(8), Fixed(4)),
        ];
        for (op, send, recv) in expect {
            let t = op.totals();
            assert_eq!(t.send, send, "{op:?} send");
            assert_eq!(t.recv, recv, "{op:?} recv");
        }
    }

    #[test]
    fn resolve_concrete_sizes_from_table2() {
        // Table II, MM row: Initialization sends 21490 = 21486 + 4 bytes.
        let init = OpKind::Initialization.totals();
        assert_eq!(init.resolve(21_486), (21_490, 12));
        // FFT initialization: 7856 = 7852 + 4.
        assert_eq!(init.resolve(7_852), (7_856, 12));
        // MM cudaLaunch sends 52 bytes (8-byte kernel name).
        assert_eq!(OpKind::Launch.totals().resolve(8), (52, 4));
        // FFT cudaLaunch sends 58 bytes (14-byte kernel name).
        assert_eq!(OpKind::Launch.totals().resolve(14), (58, 4));
        // MM memcpy to device at m = 4096: 4·m² + 20.
        let m = 4096u64;
        assert_eq!(
            OpKind::MemcpyToDevice.totals().resolve(4 * m * m).0,
            4 * m * m + 20
        );
    }

    #[test]
    fn field_rows_sum_to_totals() {
        for op in OpKind::ALL {
            let t = op.totals();
            let x = 1000;
            let send_sum: u64 = op
                .fields()
                .iter()
                .filter_map(|r| r.send)
                .map(|s| s.resolve(x))
                .sum();
            let recv_sum: u64 = op
                .fields()
                .iter()
                .filter_map(|r| r.recv)
                .map(|s| s.resolve(x))
                .sum();
            assert_eq!(send_sum, t.send.resolve(x), "{op:?}");
            assert_eq!(recv_sum, t.recv.resolve(x), "{op:?}");
        }
    }

    #[test]
    fn field_size_display() {
        assert_eq!(FieldSize::Fixed(4).to_string(), "4");
        assert_eq!(FieldSize::Var.to_string(), "x");
        assert_eq!(FieldSize::VarPlus(20).to_string(), "x + 20");
    }
}
