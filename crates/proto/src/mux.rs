//! Stream-multiplexing wire layer: frame headers, flow-control constants and
//! the secure upgrade handshake.
//!
//! A multiplexed connection ("trunk") carries many independent sub-streams
//! over one ordered byte transport. Each frame is:
//!
//! ```text
//! +----------------+--------+----------------+=================+
//! | stream_id: u32 | kind:u8|   len: u32     |  len payload    |
//! +----------------+--------+----------------+=================+
//!        LE                        LE           (DATA only)
//! ```
//!
//! Frame kinds:
//!
//! * `DATA` — `len` payload bytes for the stream. The `0x80` bit marks the
//!   end of a protocol message (accounting only — streams are byte queues).
//! * `OPEN` — the sender is opening the stream (client → server).
//! * `CLOSE` — no more data will be sent on the stream. On the reserved
//!   trunk stream 0 this is a GOAWAY for the whole connection.
//! * `CREDIT` — flow control: `len` is a byte grant raising the peer's send
//!   window for the stream. No payload.
//!
//! Bulk payloads are chopped into [`CHUNK`]-sized DATA frames, so a 16 MiB
//! memcpy becomes 256 interleaved frames and a small call queued behind it
//! waits for at most one chunk's serialization — the head-of-line-blocking
//! fix the ISSUE's FFT/smallcalls regime needs. Every stream starts with
//! [`INITIAL_WINDOW`] bytes of send credit; receivers re-grant as the
//! application drains ([`CREDIT_REFRESH`]).
//!
//! ## The upgrade handshake
//!
//! After the server's ordinary 8-byte [`crate::handshake::ServerHello`], a
//! mux-aware client sends [`MuxHello`] (selector
//! [`FunctionId::MuxHello`] — an impossible module length, so legacy
//! servers cannot misparse it). The server answers [`MuxChallenge`] with a
//! nonce; the client proves possession of the shared token with an
//! HMAC-SHA256 over both nonces ([`MuxAuth`]); the server accepts or
//! rejects with [`MuxAccept`]. Framing starts immediately after. See
//! [`crate::secure`] for the MAC and the negotiated cipher.

use std::io::{self, Read, Write};

use crate::ids::FunctionId;
use crate::secure::CipherSuiteKind;
use crate::wire::{get_u32, put_u32};

/// Maximum DATA payload per frame. Bulk transfers are chopped at this size
/// so small control frames interleave between chunks.
pub const CHUNK: usize = 64 * 1024;

/// Initial per-stream send credit, granted implicitly at OPEN.
pub const INITIAL_WINDOW: u32 = 1024 * 1024;

/// Receivers send a CREDIT grant once consumed bytes reach this threshold.
pub const CREDIT_REFRESH: u32 = INITIAL_WINDOW / 2;

/// The reserved trunk stream id: CLOSE on it is a connection GOAWAY.
pub const TRUNK_STREAM: u32 = 0;

/// Wire size of a frame header.
pub const FRAME_HEADER_BYTES: usize = 9;

/// Mux protocol version carried in [`MuxHello`].
pub const MUX_VERSION: u32 = 1;

/// [`MuxHello::flags`] bit: the client requests payload encryption.
pub const FLAG_CIPHER: u32 = 1;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Payload bytes; `end_of_message` marks a protocol-message boundary.
    Data {
        /// True when this frame ends a protocol message (flush boundary).
        end_of_message: bool,
    },
    /// Stream open announcement.
    Open,
    /// Stream half-close (or trunk GOAWAY on stream 0).
    Close,
    /// Flow-control byte grant; the header `len` is the grant.
    Credit,
}

const KIND_DATA: u8 = 0;
const KIND_OPEN: u8 = 1;
const KIND_CLOSE: u8 = 2;
const KIND_CREDIT: u8 = 3;
const DATA_END_FLAG: u8 = 0x80;

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The sub-stream this frame belongs to.
    pub stream_id: u32,
    /// Frame kind (and message-end flag for DATA).
    pub kind: FrameKind,
    /// DATA: payload byte count. CREDIT: the byte grant. Others: 0.
    pub len: u32,
}

impl FrameHeader {
    /// Encode into the 9-byte wire form.
    pub fn to_wire(self) -> [u8; FRAME_HEADER_BYTES] {
        let kind_byte = match self.kind {
            FrameKind::Data { end_of_message } => {
                KIND_DATA | if end_of_message { DATA_END_FLAG } else { 0 }
            }
            FrameKind::Open => KIND_OPEN,
            FrameKind::Close => KIND_CLOSE,
            FrameKind::Credit => KIND_CREDIT,
        };
        let mut buf = [0u8; FRAME_HEADER_BYTES];
        buf[..4].copy_from_slice(&self.stream_id.to_le_bytes());
        buf[4] = kind_byte;
        buf[5..].copy_from_slice(&self.len.to_le_bytes());
        buf
    }

    /// Decode the 9-byte wire form. Unknown kind bytes are a protocol error.
    pub fn from_wire(buf: [u8; FRAME_HEADER_BYTES]) -> io::Result<FrameHeader> {
        let stream_id = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(buf[5..].try_into().expect("4 bytes"));
        let kind = match buf[4] {
            b if b & !DATA_END_FLAG == KIND_DATA => FrameKind::Data {
                end_of_message: b & DATA_END_FLAG != 0,
            },
            KIND_OPEN => FrameKind::Open,
            KIND_CLOSE => FrameKind::Close,
            KIND_CREDIT => FrameKind::Credit,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown mux frame kind byte {other:#04x}"),
                ))
            }
        };
        if !matches!(kind, FrameKind::Data { .. } | FrameKind::Credit) && len != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("mux {kind:?} frame with nonzero len {len}"),
            ));
        }
        if matches!(kind, FrameKind::Data { .. }) && len as usize > CHUNK {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("mux DATA frame of {len} bytes exceeds the {CHUNK}-byte chunk limit"),
            ));
        }
        Ok(FrameHeader {
            stream_id,
            kind,
            len,
        })
    }

    /// Read a header from the wire.
    pub fn read<R: Read>(r: &mut R) -> io::Result<FrameHeader> {
        let mut buf = [0u8; FRAME_HEADER_BYTES];
        r.read_exact(&mut buf)?;
        Self::from_wire(buf)
    }
}

/// Client → server: request a mux upgrade (selector + version + flags +
/// 16-byte client nonce; 28 bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MuxHello {
    /// Protocol version the client speaks ([`MUX_VERSION`]).
    pub version: u32,
    /// Option bits ([`FLAG_CIPHER`]).
    pub flags: u32,
    /// The client's random half of the handshake transcript.
    pub client_nonce: [u8; 16],
}

impl MuxHello {
    /// Bytes after the 4-byte selector.
    pub const BODY_BYTES: usize = 24;

    /// Serialize (selector included).
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        put_u32(w, FunctionId::MuxHello.as_u32())?;
        put_u32(w, self.version)?;
        put_u32(w, self.flags)?;
        w.write_all(&self.client_nonce)
    }

    /// Read the body (the caller has already consumed the selector word).
    pub fn read_body<R: Read>(r: &mut R) -> io::Result<MuxHello> {
        let version = get_u32(r)?;
        let flags = get_u32(r)?;
        let mut client_nonce = [0u8; 16];
        r.read_exact(&mut client_nonce)?;
        Ok(MuxHello {
            version,
            flags,
            client_nonce,
        })
    }

    /// Whether the client asked for payload encryption.
    pub fn wants_cipher(&self) -> bool {
        self.flags & FLAG_CIPHER != 0
    }
}

/// Server → client: the challenge half of the handshake (24 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MuxChallenge {
    /// Negotiated option bits (the server may clear bits it refuses).
    pub flags: u32,
    /// Negotiated cipher suite wire id (see [`CipherSuiteKind`]).
    pub cipher: u32,
    /// The server's random half of the handshake transcript.
    pub server_nonce: [u8; 16],
}

impl MuxChallenge {
    /// Wire size.
    pub const WIRE_BYTES: usize = 24;

    /// Serialize.
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        put_u32(w, self.flags)?;
        put_u32(w, self.cipher)?;
        w.write_all(&self.server_nonce)
    }

    /// Deserialize.
    pub fn read<R: Read>(r: &mut R) -> io::Result<MuxChallenge> {
        let flags = get_u32(r)?;
        let cipher = get_u32(r)?;
        let mut server_nonce = [0u8; 16];
        r.read_exact(&mut server_nonce)?;
        Ok(MuxChallenge {
            flags,
            cipher,
            server_nonce,
        })
    }

    /// The negotiated cipher suite.
    pub fn cipher_kind(&self) -> CipherSuiteKind {
        CipherSuiteKind::from_u32(self.cipher)
    }
}

/// Client → server: the 32-byte HMAC-SHA256 auth proof (always sent; with
/// no token configured it is the MAC under the empty key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MuxAuth {
    /// `HMAC-SHA256(token, label || client_nonce || server_nonce)`.
    pub mac: [u8; 32],
}

impl MuxAuth {
    /// Wire size.
    pub const WIRE_BYTES: usize = 32;

    /// Serialize.
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.mac)
    }

    /// Deserialize.
    pub fn read<R: Read>(r: &mut R) -> io::Result<MuxAuth> {
        let mut mac = [0u8; 32];
        r.read_exact(&mut mac)?;
        Ok(MuxAuth { mac })
    }
}

/// Server → client: handshake verdict — a 4-byte CUDA result code (`0`
/// accepts; `rcudaErrorAuthFailed` rejects). Framing starts right after an
/// accept; the server closes the trunk after a reject.
pub fn write_mux_accept<W: Write>(w: &mut W, code: u32) -> io::Result<()> {
    put_u32(w, code)
}

/// Read the server's handshake verdict.
pub fn read_mux_accept<R: Read>(r: &mut R) -> io::Result<u32> {
    get_u32(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_headers_round_trip() {
        for h in [
            FrameHeader {
                stream_id: 1,
                kind: FrameKind::Data {
                    end_of_message: false,
                },
                len: CHUNK as u32,
            },
            FrameHeader {
                stream_id: 7,
                kind: FrameKind::Data {
                    end_of_message: true,
                },
                len: 13,
            },
            FrameHeader {
                stream_id: 2,
                kind: FrameKind::Open,
                len: 0,
            },
            FrameHeader {
                stream_id: TRUNK_STREAM,
                kind: FrameKind::Close,
                len: 0,
            },
            FrameHeader {
                stream_id: 3,
                kind: FrameKind::Credit,
                len: CREDIT_REFRESH,
            },
        ] {
            assert_eq!(FrameHeader::from_wire(h.to_wire()).unwrap(), h);
        }
    }

    #[test]
    fn bad_headers_are_rejected() {
        // Unknown kind byte.
        let mut wire = FrameHeader {
            stream_id: 1,
            kind: FrameKind::Open,
            len: 0,
        }
        .to_wire();
        wire[4] = 0x55;
        assert!(FrameHeader::from_wire(wire).is_err());
        // Oversized DATA.
        let wire = FrameHeader {
            stream_id: 1,
            kind: FrameKind::Data {
                end_of_message: false,
            },
            len: CHUNK as u32 + 1,
        }
        .to_wire();
        assert!(FrameHeader::from_wire(wire).is_err());
        // OPEN with payload length.
        let mut wire = FrameHeader {
            stream_id: 1,
            kind: FrameKind::Open,
            len: 0,
        }
        .to_wire();
        wire[5] = 9;
        assert!(FrameHeader::from_wire(wire).is_err());
    }

    #[test]
    fn hello_selector_is_an_impossible_module_length() {
        assert!(FunctionId::MuxHello.as_u32() > u32::MAX - 4);
    }

    #[test]
    fn handshake_messages_round_trip() {
        let hello = MuxHello {
            version: MUX_VERSION,
            flags: FLAG_CIPHER,
            client_nonce: [7u8; 16],
        };
        let mut buf = Vec::new();
        hello.write(&mut buf).unwrap();
        assert_eq!(buf.len(), 4 + MuxHello::BODY_BYTES);
        let mut cur = Cursor::new(&buf[4..]);
        let back = MuxHello::read_body(&mut cur).unwrap();
        assert_eq!(back, hello);
        assert!(back.wants_cipher());

        let ch = MuxChallenge {
            flags: FLAG_CIPHER,
            cipher: CipherSuiteKind::ChaCha20.as_u32(),
            server_nonce: [9u8; 16],
        };
        let mut buf = Vec::new();
        ch.write(&mut buf).unwrap();
        assert_eq!(buf.len(), MuxChallenge::WIRE_BYTES);
        let back = MuxChallenge::read(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, ch);
        assert_eq!(back.cipher_kind(), CipherSuiteKind::ChaCha20);

        let auth = MuxAuth { mac: [0xAB; 32] };
        let mut buf = Vec::new();
        auth.write(&mut buf).unwrap();
        assert_eq!(buf.len(), MuxAuth::WIRE_BYTES);
        assert_eq!(MuxAuth::read(&mut Cursor::new(&buf)).unwrap(), auth);

        let mut buf = Vec::new();
        write_mux_accept(&mut buf, 10005).unwrap();
        assert_eq!(read_mux_accept(&mut Cursor::new(&buf)).unwrap(), 10005);
    }
}
